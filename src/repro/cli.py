"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the available synthetic benchmark datasets with their statistics.
``run``
    Run one algorithm over one dataset stream and print the PC progress,
    summary, and optionally export the curve as JSON/CSV.
``compare``
    Run several algorithms over the same stream and print the comparison
    tables (a small interactive version of the Figure 7 benchmark).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.api import EngineOptions, ERSession
from repro.blocking.substrate import BLOCKING_SUBSTRATES
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.experiments import SYSTEM_NAMES
from repro.evaluation.io import run_result_to_json, write_curve_csv
from repro.evaluation.reporting import format_table, pc_over_time_table, summary_table
from repro.matching.similarity import ED_KERNELS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Progressive Entity Resolution over Incremental Data (EDBT 2023) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list available datasets")

    def add_stream_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", default="dblp_acm", choices=available_datasets())
        sub.add_argument("--scale", type=float, default=1.0, help="dataset size multiplier")
        sub.add_argument(
            "--increments", "--n-increments", dest="n_increments", type=int,
            default=100, metavar="N",
            help="number of increments the dataset is split into (Python "
                 "API name: n_increments); batch baselines "
                 "(PPS/PBS/BATCH/…-PSN) in the static setting (no --rate) "
                 "ignore this and receive the whole dataset as a single "
                 "increment, matching how the paper runs them",
        )
        sub.add_argument(
            "--rate", type=float, default=None,
            help="increment arrival rate in dD/s (omit for the static setting)",
        )
        sub.add_argument("--matcher", default="JS", choices=["JS", "ED"])
        sub.add_argument("--budget", type=float, default=120.0, help="virtual time budget [s]")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--pipelined", action="store_true",
            help="use the two-stage pipelined engine instead of the serial one",
        )
        sub.add_argument(
            "--scalar-matching", action="store_true",
            help="force pair-at-a-time matcher evaluation instead of the "
                 "batched kernel (bit-identical results; for debugging and "
                 "benchmarking)",
        )
        sub.add_argument(
            "--per-pair-weighting", action="store_true",
            help="force one meta-blocking weight() call per candidate pair "
                 "instead of the single-sweep weighting kernel "
                 "(bit-identical results; for debugging and benchmarking)",
        )
        sub.add_argument(
            "--ed-kernel", default="auto", choices=list(ED_KERNELS),
            help="edit-distance kernel for the ED matcher: 'auto' (Myers "
                 "bit-parallel), 'myers', 'banded' (band-limited DP), or "
                 "'full' (unbounded DP); all kernels compute identical "
                 "distances (escape hatch for debugging and benchmarking)",
        )
        sub.add_argument(
            "--blocking", default="token", choices=list(BLOCKING_SUBSTRATES),
            help="candidate-generation substrate: 'token' (the paper's "
                 "token blocking, default), 'lsh' (incremental MinHash-LSH "
                 "— signature buckets become the blocks), or "
                 "'lsh-prefilter' (token blocks, but candidate pairs whose "
                 "MinHash signatures share no bucket are pruned before "
                 "weighting); unlike the other engine flags, 'lsh' and "
                 "'lsh-prefilter' change which comparisons are generated",
        )
        sub.add_argument(
            "--lsh-bands", dest="lsh_bands", type=int, default=16, metavar="B",
            help="MinHash-LSH bands (with --blocking lsh/lsh-prefilter); "
                 "candidate threshold is ~(1/B)**(1/R)",
        )
        sub.add_argument(
            "--lsh-rows", dest="lsh_rows", type=int, default=2, metavar="R",
            help="MinHash-LSH rows per band (signature length is B*R)",
        )
        sub.add_argument(
            "--lsh-seed", dest="lsh_seed", type=int, default=0, metavar="SEED",
            help="seed of the MinHash permutation family (results are "
                 "deterministic per seed, independent of host or "
                 "PYTHONHASHSEED)",
        )
        sub.add_argument(
            "--faults", type=int, default=None, metavar="SEED",
            help="inject seeded chaos: perturb the stream plan (drops, "
                 "redeliveries, reorders, bursts, corruption) and wrap the "
                 "matcher with transient failures and latency spikes",
        )
        sub.add_argument(
            "--checkpoint-every", type=float, default=None, metavar="SECONDS",
            help="checkpoint engine state every SECONDS of virtual time",
        )
        sub.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="shard matcher evaluation (run) and comparison cells "
                 "(compare) across N worker processes; results are "
                 "bit-identical for every N (--workers 1 is the serial "
                 "escape hatch)",
        )
        sub.add_argument(
            "--reply-timeout", dest="reply_timeout_s", type=float,
            default=None, metavar="SECONDS",
            help="fleet-wide wall-clock deadline for each worker scatter "
                 "round; a worker silent past it is evicted, its chunk "
                 "re-scored in-process, and the slot respawned (default: "
                 "$REPRO_REPLY_TIMEOUT_S or 60; 0 disables)",
        )
        sub.add_argument(
            "--handshake-timeout", dest="handshake_timeout_s", type=float,
            default=None, metavar="SECONDS",
            help="fleet-wide deadline for the worker startup/respawn "
                 "handshake (default: $REPRO_HANDSHAKE_TIMEOUT_S or 30)",
        )
        sub.add_argument(
            "--max-respawns", type=int, default=None, metavar="N",
            help="respawn attempts per worker slot before the slot is "
                 "terminally dead; a fleet of only dead slots degrades to "
                 "in-process scoring for good (default: 3)",
        )
        sub.add_argument(
            "--worker-faults", type=int, default=None, metavar="SEED",
            help="inject seeded process-level chaos into the worker fleet "
                 "(SIGKILL mid-round, hangs past the reply deadline, "
                 "corrupt replies); supervision absorbs them — results "
                 "stay bit-identical",
        )

    run_parser = subparsers.add_parser("run", help="run one algorithm over a stream")
    run_parser.add_argument("--algorithm", default="I-PES", choices=list(SYSTEM_NAMES))
    add_stream_arguments(run_parser)
    run_parser.add_argument("--json", metavar="PATH", help="write the run result as JSON")
    run_parser.add_argument("--csv", metavar="PATH", help="write the PC curve as CSV")
    run_parser.add_argument(
        "--metrics", metavar="PATH",
        help="write the observability snapshot (counters, phase timers, "
             "per-round gauges) as JSON",
    )

    compare_parser = subparsers.add_parser("compare", help="compare algorithms on one stream")
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["I-PES", "I-PCS", "I-PBS", "I-BASE"],
        choices=list(SYSTEM_NAMES),
    )
    add_stream_arguments(compare_parser)

    return parser


def _session(args, systems) -> ERSession:
    """The one place CLI arguments become an :class:`ERSession`."""
    return ERSession(
        args.dataset,
        systems=systems,
        matcher=args.matcher,
        engine=EngineOptions(
            pipelined=args.pipelined,
            scalar_matching=args.scalar_matching,
            per_pair_weighting=args.per_pair_weighting,
            workers=args.workers,
            ed_kernel=args.ed_kernel,
            reply_timeout_s=args.reply_timeout_s,
            handshake_timeout_s=args.handshake_timeout_s,
            max_respawns=args.max_respawns,
            blocking=args.blocking,
            lsh_bands=args.lsh_bands,
            lsh_rows=args.lsh_rows,
            lsh_seed=args.lsh_seed,
        ),
        scale=args.scale,
        n_increments=args.n_increments,
        rate=args.rate,
        budget=args.budget,
        seed=args.seed,
        faults=args.faults,
        worker_faults=args.worker_faults,
        checkpoint_every=args.checkpoint_every,
    )


def _print_fault_reports(session: ERSession) -> None:
    for report in session.fault_reports:
        print(report.summary(), file=sys.stderr)


def _command_datasets() -> int:
    rows = []
    for name in available_datasets():
        dataset = load_dataset(name, scale=1.0)
        description = dataset.describe()
        rows.append(
            [
                name,
                description["kind"],
                description["profiles"],
                description["matches"],
            ]
        )
    print(format_table(["dataset", "kind", "#profiles", "#matches"], rows))
    return 0


def _command_run(args) -> int:
    with _session(args, (args.algorithm,)) as session:
        result = session.run()
        _print_fault_reports(session)
    times = [args.budget * f for f in (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)]
    print(pc_over_time_table({args.algorithm: result}, times))
    print()
    print(summary_table({args.algorithm: result}))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(run_result_to_json(result))
        print(f"\nwrote {args.json}")
    if args.csv:
        write_curve_csv(result, args.csv)
        print(f"wrote {args.csv}")
    if args.metrics:
        snapshot = result.details.get("metrics", {})
        with open(args.metrics, "w") as handle:
            json.dump(snapshot, handle, indent=2)
        print(f"wrote {args.metrics}")
    return 0


def _command_compare(args) -> int:
    with _session(args, tuple(args.algorithms)) as session:
        results = session.compare()
        _print_fault_reports(session)
    times = [args.budget * f for f in (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)]
    print(pc_over_time_table(results, times))
    print()
    print(summary_table(results))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
