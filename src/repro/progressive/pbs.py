"""PBS: Progressive Block Scheduling (batch baseline, Simonini et al.).

Initialization merely sorts the blocks by size (smallest first) — which is
why PBS starts emitting far earlier than PPS on large datasets.  Blocks are
then *opened* lazily during emission: opening a block weighs its
non-redundant comparisons with the CBS scheme and emits them in descending
weight order before moving to the next (larger) block.
"""

from __future__ import annotations

from repro.metablocking.sweep import partner_weights
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme
from repro.progressive.base import BatchProgressiveSystem

__all__ = ["PBSSystem"]


class PBSSystem(BatchProgressiveSystem):
    """Progressive Block Scheduling packaged as an ERSystem.

    Opening a block weighs its non-redundant comparisons through the
    single-sweep kernel, one aggregate sweep per distinct left profile
    (``per_pair_weighting=True`` restores the legacy per-pair calls;
    results are bit-identical).
    """

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        scheme: WeightingScheme | None = None,
        scope: str = "all",
        per_pair_weighting: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(
            clean_clean=clean_clean, max_block_size=max_block_size, scope=scope, **kwargs
        )
        self.scheme = scheme or CommonBlocksScheme()
        self.per_pair_weighting = per_pair_weighting
        self._block_order: list[str] = []
        self._block_cursor = 0
        self._buffer: list[tuple[int, int]] = []
        self._seen: set[tuple[int, int]] = set()
        self.name = "PBS" if scope == "all" else "PBS-LOCAL"

    # ------------------------------------------------------------------
    def _estimate_init_cost(self) -> float:
        return len(self.collection) * self.costs.per_block_open

    def _initialize(self) -> float:
        blocks = sorted(self.collection, key=len)
        self._block_order = [block.key for block in blocks]
        self._block_cursor = 0
        self._buffer = []
        self._seen = set()
        return len(blocks) * self.costs.per_block_open

    def _next_pairs(self, n: int) -> tuple[list[tuple[int, int]], float]:
        cost = 0.0
        while len(self._buffer) < n and self._block_cursor < len(self._block_order):
            cost += self._open_next_block()
        pairs = self._buffer[:n]
        del self._buffer[:n]
        return pairs, cost + len(pairs) * self.costs.per_enqueue

    def _open_next_block(self) -> float:
        """Weigh and enqueue the comparisons of the next-smallest block."""
        key = self._block_order[self._block_cursor]
        self._block_cursor += 1
        block = self.collection.get(key)
        cost = self.costs.per_block_open
        if block is None:
            return cost
        fresh: list[tuple[int, int]] = []
        for pid_x, pid_y in block.pairs(self.collection.clean_clean):
            pair = (min(pid_x, pid_y), max(pid_x, pid_y))
            if pair in self._seen or not self.valid_pair(*pair):
                continue
            self._seen.add(pair)
            fresh.append(pair)
            cost += self.costs.per_weight
        if self.per_pair_weighting:
            weighted = [
                (self.scheme.weight(self.collection, *pair), pair) for pair in fresh
            ]
        else:
            by_left: dict[int, list[int]] = {}
            for left, right in fresh:
                by_left.setdefault(left, []).append(right)
            weights = {
                left: partner_weights(self.collection, left, rights, self.scheme)
                for left, rights in by_left.items()
            }
            weighted = [(weights[pair[0]][pair[1]], pair) for pair in fresh]
        weighted.sort(key=lambda item: -item[0])
        self._buffer.extend(pair for _, pair in weighted)
        return cost
