"""Shared machinery for the batch progressive ER baselines.

PPS and PBS (Simonini et al., TKDE 2019) are *batch* algorithms: they run an
initialization phase over the full dataset (blocking + building of the
prioritization structures) and then an emission phase.  To compare them
against PIER under one simulation loop, they are packaged as
:class:`ERSystem` objects with *lazy* initialization:

* ``ingest`` indexes the increment's profiles and marks the prioritization
  state dirty;
* the next ``emit`` first (re)runs initialization — charging its full
  virtual cost, which produces the flat start of the PC curve — and only
  then emits comparison batches.

The same classes double as the paper's naive incremental adaptations:

* ``scope="all"`` re-initializes over *all* data seen so far on every
  increment (PPS-GLOBAL / PBS-GLOBAL) — correct but increasingly expensive;
* ``scope="last"`` resets state and considers only the newest increment
  (PPS-LOCAL) — cheap but blind to inter-increment matches.

When the estimated cost of a pending (re)initialization already exceeds the
remaining virtual budget, the system burns the remaining budget without
performing the (useless) work — behaviorally identical and keeps wall-clock
time bounded in the collapse regimes of Figures 2 and 7.
"""

from __future__ import annotations

from repro.blocking.substrate import BlockingConfig, make_collection
from repro.core.increments import Increment
from repro.core.profile import EntityProfile
from repro.execution.store import ComparisonStore
from repro.streaming.system import EmitResult, ERSystem, PipelineCosts, PipelineStats

__all__ = ["BatchProgressiveSystem"]


class BatchProgressiveSystem(ERSystem):
    """Base class of PPS / PBS and their GLOBAL / LOCAL stream adaptations.

    Subclasses implement :meth:`_initialize` (build the prioritization
    state, return its virtual cost) and :meth:`_next_pairs` (produce up to
    ``n`` prioritized pairs, return them with their cost).
    """

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        costs: PipelineCosts | None = None,
        scope: str = "all",
        chunk_size: int = 64,
        blocking: BlockingConfig | None = None,
    ) -> None:
        if scope not in ("all", "last"):
            raise ValueError("scope must be 'all' or 'last'")
        self.costs = costs or PipelineCosts()
        self.clean_clean = clean_clean
        self.max_block_size = max_block_size
        self.scope = scope
        self.chunk_size = chunk_size
        self.blocking = blocking
        self.collection = make_collection(
            blocking, clean_clean=clean_clean, max_block_size=max_block_size
        )
        self._profiles: dict[int, EntityProfile] = {}
        self._dirty = False
        self.store = ComparisonStore()
        self._pending_init_cost = 0.0
        self.initializations = 0

    # ------------------------------------------------------------------
    # ERSystem interface
    # ------------------------------------------------------------------
    def ingest(self, increment: Increment) -> float:
        if increment.is_empty:
            return self.costs.per_round
        if self.scope == "last":
            self.collection = make_collection(
                self.blocking,
                clean_clean=self.clean_clean,
                max_block_size=self.max_block_size,
            )
            self._profiles.clear()
        cost = 0.0
        for profile in increment:
            self.collection.add_profile(profile)
            self._profiles[profile.pid] = profile
            cost += self.costs.per_profile + self.costs.per_token * len(profile.tokens())
        self._flush_blocking_metrics(self.collection)
        self._dirty = True
        # The batch algorithms reassess their prioritization for *every* new
        # increment (the paper's central criticism of the naive GLOBAL
        # adaptations).  Each increment therefore owes one full
        # (re)initialization at the current data size; the owed cost
        # accumulates and is charged when emission next runs.  Only the last
        # rebuild's structure is kept (intermediate ones are obsolete by
        # construction), so wall-clock work stays at one real build.
        self._pending_init_cost += self._estimate_init_cost()
        return cost

    def emit(self, stats: PipelineStats) -> EmitResult:
        result = self._emit(stats)
        # Initialization/emission consult the substrate (the LSH prefilter
        # prunes inside valid_pair), so drain its telemetry every round.
        self._flush_blocking_metrics(self.collection)
        return result

    def _emit(self, stats: PipelineStats) -> EmitResult:
        if self._dirty:
            owed = max(self._pending_init_cost, self._estimate_init_cost())
            remaining = stats.remaining_budget
            if remaining is not None and owed > remaining:
                # (Re)initialization cannot finish within the budget: charge
                # the rest of the budget and skip the pointless work.
                self.metrics.count("batch.initializations_over_budget")
                return EmitResult(batch=(), cost=owed)
            cost = max(self._initialize(), owed)
            self._pending_init_cost = 0.0
            self._dirty = False
            self.initializations += 1
            self.metrics.count("batch.initializations")
            self.metrics.count("batch.initialization_cost_s", cost)
            return EmitResult(batch=(), cost=cost)
        pairs, cost = self._next_pairs(self.chunk_size)
        store = self.store
        fresh: list[tuple[int, int]] = []
        for pair in pairs:
            if store.mark_executed(pair):
                fresh.append(pair)
        store.record_emission(len(fresh), len(pairs) - len(fresh))
        return EmitResult(batch=tuple(fresh), cost=cost + self.costs.per_round)

    def profile(self, pid: int) -> EntityProfile:
        return self._profiles[pid]

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _initialize(self) -> float:
        raise NotImplementedError

    def _next_pairs(self, n: int) -> tuple[list[tuple[int, int]], float]:
        raise NotImplementedError

    def _estimate_init_cost(self) -> float:
        """Cheap upper-bound estimate of the pending initialization cost."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def valid_pair(self, pid_x: int, pid_y: int) -> bool:
        if pid_x == pid_y:
            return False
        collection = self.collection
        if collection.prunes_candidates and not collection.allows_pair(pid_x, pid_y):
            return False
        if not self.clean_clean:
            return True
        return self._profiles[pid_x].source != self._profiles[pid_y].source

    def was_executed(self, pid_x: int, pid_y: int) -> bool:
        return self.store.was_executed(pid_x, pid_y)

    def gauges(self) -> dict[str, float]:
        return {
            "initializations": self.initializations,
            "profiles_indexed": len(self._profiles),
        }

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "scope": self.scope,
            "profiles": len(self._profiles),
            "initializations": self.initializations,
        }
