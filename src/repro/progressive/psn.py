"""Schema-agnostic Progressive Sorted Neighborhood: LS-PSN and GS-PSN.

The other two progressive methods of Simonini et al. (TKDE 2019), included
as extensions (the paper's evaluation uses PPS and PBS, its related-work
section describes these).  Both build the *sorted profile array*: tokens are
sorted alphabetically and each token contributes the profiles of its block,
so profiles sharing tokens end up close together.

* **LS-PSN** (local): emit pairs at window distance ``w = 1, 2, 3, ...`` —
  for each ``w``, scan the array and emit ``(array[i], array[i+w])``.
  Neighbors at small distances are most likely matches.
* **GS-PSN** (global): for a maximum window ``W``, count how often each pair
  co-occurs within distance ``W`` across the array, then emit pairs in
  descending co-occurrence frequency — a better global order at the price of
  a heavier initialization.
"""

from __future__ import annotations

from collections import Counter

from repro.progressive.base import BatchProgressiveSystem

__all__ = ["LSPSNSystem", "GSPSNSystem"]


def _sorted_profile_array(collection) -> list[int]:
    array: list[int] = []
    for key in sorted(collection.keys()):
        block = collection.get(key)
        if block is not None:
            array.extend(block)
    return array


class LSPSNSystem(BatchProgressiveSystem):
    """Local Schema-Agnostic Progressive Sorted Neighborhood."""

    name = "LS-PSN"

    def __init__(self, max_window: int = 64, **kwargs) -> None:
        super().__init__(**kwargs)
        if max_window < 1:
            raise ValueError("max_window must be >= 1")
        self.max_window = max_window
        self._array: list[int] = []
        self._window = 1
        self._position = 0
        self._seen: set[tuple[int, int]] = set()

    def _estimate_init_cost(self) -> float:
        return len(self.collection) * self.costs.per_block_open

    def _initialize(self) -> float:
        self._array = _sorted_profile_array(self.collection)
        self._window = 1
        self._position = 0
        self._seen = set()
        return len(self._array) * self.costs.per_enqueue

    def _next_pairs(self, n: int) -> tuple[list[tuple[int, int]], float]:
        pairs: list[tuple[int, int]] = []
        cost = 0.0
        array = self._array
        while len(pairs) < n and self._window <= self.max_window:
            if self._position + self._window >= len(array):
                self._window += 1
                self._position = 0
                continue
            pid_x = array[self._position]
            pid_y = array[self._position + self._window]
            self._position += 1
            cost += self.costs.per_enqueue
            if pid_x == pid_y:
                continue
            pair = (min(pid_x, pid_y), max(pid_x, pid_y))
            if pair in self._seen or not self.valid_pair(*pair):
                continue
            self._seen.add(pair)
            pairs.append(pair)
        return pairs, cost


class GSPSNSystem(BatchProgressiveSystem):
    """Global Schema-Agnostic Progressive Sorted Neighborhood."""

    name = "GS-PSN"

    def __init__(self, max_window: int = 16, **kwargs) -> None:
        super().__init__(**kwargs)
        if max_window < 1:
            raise ValueError("max_window must be >= 1")
        self.max_window = max_window
        self._emission: list[tuple[int, int]] = []
        self._cursor = 0

    def _estimate_init_cost(self) -> float:
        # Counting pass: W positions per array slot.
        array_length = sum(len(block) for block in self.collection)
        return array_length * self.max_window * self.costs.per_edge_enumeration

    def _initialize(self) -> float:
        array = _sorted_profile_array(self.collection)
        frequencies: Counter[tuple[int, int]] = Counter()
        operations = 0
        for i, pid_x in enumerate(array):
            for w in range(1, self.max_window + 1):
                if i + w >= len(array):
                    break
                pid_y = array[i + w]
                operations += 1
                if pid_x == pid_y:
                    continue
                pair = (min(pid_x, pid_y), max(pid_x, pid_y))
                if self.valid_pair(*pair):
                    frequencies[pair] += 1
        self._emission = [pair for pair, _ in frequencies.most_common()]
        self._cursor = 0
        return (
            operations * self.costs.per_edge_enumeration
            + len(self._emission) * self.costs.per_enqueue
        )

    def _next_pairs(self, n: int) -> tuple[list[tuple[int, int]], float]:
        end = min(self._cursor + n, len(self._emission))
        pairs = self._emission[self._cursor : end]
        self._cursor = end
        return pairs, len(pairs) * self.costs.per_enqueue
