"""PPS: Progressive Profile Scheduling (batch baseline, Simonini et al.).

Initialization builds the meta-blocking block graph, ranks profiles by
duplication likelihood (average incident edge weight), and prepares the
emission order:

1. the global *comparison list* — each profile's single best comparison,
   sorted by weight (emitted first);
2. then, profile by profile in likelihood order, each profile's ``top_k``
   best non-redundant comparisons.

The graph build enumerates every block pair, which is why PPS pays a long
initialization on large datasets (invisible start of its PC curve in
Figure 4, multi-hour pre-analysis on D_dbpedia in the paper).
"""

from __future__ import annotations

from repro.metablocking.block_graph import BlockGraph
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme
from repro.progressive.base import BatchProgressiveSystem

__all__ = ["PPSSystem"]


class PPSSystem(BatchProgressiveSystem):
    """Progressive Profile Scheduling packaged as an ERSystem.

    Parameters
    ----------
    top_k:
        Comparisons emitted per profile during the per-profile phase.
    scope:
        ``"all"`` (static / PPS-GLOBAL) or ``"last"`` (PPS-LOCAL).
    per_pair_weighting:
        Build the block graph with the legacy per-edge ``weight()`` calls
        instead of the single-sweep kernel (bit-identical; for bisection).
    """

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        scheme: WeightingScheme | None = None,
        top_k: int = 10,
        scope: str = "all",
        per_pair_weighting: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(
            clean_clean=clean_clean, max_block_size=max_block_size, scope=scope, **kwargs
        )
        self.scheme = scheme or CommonBlocksScheme()
        self.per_pair_weighting = per_pair_weighting
        self.top_k = top_k
        self._emission: list[tuple[int, int]] = []
        self._cursor = 0
        self.name = {"all": "PPS", "last": "PPS-LOCAL"}[scope]
        if scope == "all":
            self.name = "PPS"

    # ------------------------------------------------------------------
    def _estimate_init_cost(self) -> float:
        enumerations = self.collection.total_comparisons()
        return enumerations * (self.costs.per_edge_enumeration + self.costs.per_weight)

    def _initialize(self) -> float:
        graph = BlockGraph(
            self.collection, self.valid_pair, self.scheme, per_pair=self.per_pair_weighting
        )
        cost = graph.edge_enumerations * self.costs.per_edge_enumeration
        cost += len(graph.edges) * self.costs.per_weight

        # Rank profiles by duplication likelihood (descending).
        profiles = graph.profiles()
        profiles.sort(key=graph.duplication_likelihood, reverse=True)
        cost += len(profiles) * self.costs.per_enqueue

        emission: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()

        # Phase 1: the global comparison list — each profile's best edge.
        best_per_profile: list[tuple[float, tuple[int, int]]] = []
        for pid in profiles:
            neighbors = graph.neighbors(pid)
            if not neighbors:
                continue
            partner, weight = neighbors[0]
            pair = (min(pid, partner), max(pid, partner))
            best_per_profile.append((weight, pair))
        best_per_profile.sort(key=lambda item: -item[0])
        for _, pair in best_per_profile:
            if pair not in seen:
                seen.add(pair)
                emission.append(pair)

        # Phase 2: per-profile top-k comparisons in likelihood order.
        for pid in profiles:
            emitted_for_profile = 0
            for partner, _ in graph.neighbors(pid):
                if emitted_for_profile >= self.top_k:
                    break
                pair = (min(pid, partner), max(pid, partner))
                if pair in seen:
                    continue
                seen.add(pair)
                emission.append(pair)
                emitted_for_profile += 1
        cost += len(emission) * self.costs.per_enqueue

        self._emission = emission
        self._cursor = 0
        return cost

    def _next_pairs(self, n: int) -> tuple[list[tuple[int, int]], float]:
        end = min(self._cursor + n, len(self._emission))
        pairs = self._emission[self._cursor : end]
        self._cursor = end
        return pairs, len(pairs) * self.costs.per_enqueue
