"""Batch progressive ER baselines: PPS, PBS, and plain batch ER."""

from repro.progressive.base import BatchProgressiveSystem
from repro.progressive.batch import BatchERSystem
from repro.progressive.pbs import PBSSystem
from repro.progressive.pps import PPSSystem
from repro.progressive.psn import GSPSNSystem, LSPSNSystem

__all__ = [
    "BatchERSystem",
    "BatchProgressiveSystem",
    "GSPSNSystem",
    "LSPSNSystem",
    "PBSSystem",
    "PPSSystem",
]
