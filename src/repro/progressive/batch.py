"""Plain batch ER (no prioritization) — the Figure 1 reference behaviour.

Batch ER performs blocking and then executes all block comparisons in
arbitrary (block insertion) order.  Matches surface uniformly over the run
rather than early; the run finishes when every block comparison has been
executed.  Used by the Figure 1 sketch benchmark and as the reference for
Definition 1/3 comparisons.
"""

from __future__ import annotations

from repro.progressive.base import BatchProgressiveSystem

__all__ = ["BatchERSystem"]


class BatchERSystem(BatchProgressiveSystem):
    """Unprioritized batch ER over token blocking."""

    name = "BATCH"

    def __init__(self, clean_clean: bool = False, max_block_size: int | None = 200, **kwargs):
        super().__init__(
            clean_clean=clean_clean, max_block_size=max_block_size, scope="all", **kwargs
        )
        self._block_order: list[str] = []
        self._block_cursor = 0
        self._buffer: list[tuple[int, int]] = []
        self._seen: set[tuple[int, int]] = set()

    def _estimate_init_cost(self) -> float:
        return len(self.collection) * self.costs.per_enqueue

    def _initialize(self) -> float:
        # No prioritization work at all: just snapshot the block order.
        self._block_order = [block.key for block in self.collection]
        self._block_cursor = 0
        self._buffer = []
        self._seen = set()
        return len(self._block_order) * self.costs.per_enqueue

    def _next_pairs(self, n: int) -> tuple[list[tuple[int, int]], float]:
        cost = 0.0
        while len(self._buffer) < n and self._block_cursor < len(self._block_order):
            key = self._block_order[self._block_cursor]
            self._block_cursor += 1
            block = self.collection.get(key)
            cost += self.costs.per_block_open
            if block is None:
                continue
            for pid_x, pid_y in block.pairs(self.collection.clean_clean):
                pair = (min(pid_x, pid_y), max(pid_x, pid_y))
                if pair in self._seen or not self.valid_pair(*pair):
                    continue
                self._seen.add(pair)
                self._buffer.append(pair)
        pairs = self._buffer[:n]
        del self._buffer[:n]
        return pairs, cost + len(pairs) * self.costs.per_enqueue
