"""Tenant sessions: one push-mode resolution stream per tenant.

A tenant is one independent incremental ER workload multiplexed onto the
service: its own :class:`~repro.api.ERSession` (over an initially *empty*
dataset — profiles only ever arrive through :meth:`TenantSession.ingest`),
its own virtual clock, its own comparison budget, its own resilience knobs.
Tenants share nothing but the executor thread and (optionally) the Tier A
:class:`~repro.parallel.pool.WorkerPool` the server injects; the pool's
per-run cache epochs keep interleaved tenants from ever observing each
other's profiles.

Budget model: ``TenantConfig.budget`` is the tenant's total virtual-time
allowance, exactly the classic engine budget.  Every ingest auto-drains the
engine to the increment's arrival time (capped at the budget), so matches
surface progressively; an explicit :meth:`TenantSession.drain` moves the
horizon further.  Arrivals beyond the budget are refused at admission —
the virtual stream is over.

:class:`TenantSnapshot` is checkpoint/restore (PR 2) lifted to the tenant:
the engine checkpoint plus the fed arrival log and the tenant's
configuration, picklable as one object.  Restoring on any server (or the
same one after a restart) resumes the stream bit-identically — the
migration path behind zero-downtime restarts.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Sequence

from repro.api import ERSession, EngineOptions, PushSession
from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.increments import Increment
from repro.core.profile import EntityProfile
from repro.resilience.checkpoint import EngineCheckpoint
from repro.resilience.retry import ResilienceConfig

__all__ = ["TenantConfig", "TenantSession", "TenantSnapshot"]


@dataclass(frozen=True, slots=True)
class TenantConfig:
    """Everything that defines one tenant's resolution workload.

    ``budget`` is the tenant's total virtual-time allowance (the classic
    engine budget).  ``shed_watermark`` is the *engine-level* shed knob
    (oldest due increments dropped beyond the backlog watermark) — distinct
    from the server's queue-level shedding, which drops ingest *requests*
    before they reach the engine.  ``kind`` selects Dirty vs Clean-Clean
    candidate generation for the arriving profiles.
    """

    tenant_id: str
    system: str = "I-PES"
    matcher: str = "JS"
    budget: float = 300.0
    kind: str = "dirty"
    pipelined: bool = False
    shed_watermark: int | None = None
    checkpoint_every: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.kind not in ("dirty", "clean-clean"):
            raise ValueError(f"kind must be 'dirty' or 'clean-clean', got {self.kind!r}")


@dataclass(frozen=True, slots=True)
class TenantSnapshot:
    """A migratable cut of one tenant: config + arrivals + engine checkpoint.

    ``arrivals`` is the full fed log (arrival time, increment) up to the
    cut — re-fed on restore so the checkpoint's plan fingerprint matches —
    and ``horizon`` the last drain horizon, re-applied after restore so the
    resumed run continues from the same virtual position.
    """

    config: TenantConfig
    checkpoint: EngineCheckpoint | None
    arrivals: tuple[tuple[float, Increment], ...]
    horizon: float | None
    next_index: int

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TenantSnapshot":
        snapshot = pickle.loads(blob)
        if not isinstance(snapshot, cls):
            raise ValueError(f"not a TenantSnapshot: {type(snapshot).__name__}")
        return snapshot


def _empty_dataset(config: TenantConfig) -> Dataset:
    """The tenant's seed dataset: no profiles, empty ground truth.

    The service never knows ground truth — `pair_completeness` over an
    empty truth set is defined as 1.0, and result quality is evaluated by
    the *caller* against whatever truth they hold (as the benchmark does).
    """
    kind = ERKind.DIRTY if config.kind == "dirty" else ERKind.CLEAN_CLEAN
    return Dataset(f"tenant:{config.tenant_id}", (), GroundTruth(), kind)


class TenantSession:
    """One tenant's live push-mode run inside the service.

    Not thread-safe by itself: the server funnels every engine-touching
    call through its single drain executor, which is also what serializes
    shared-pool access across tenants.
    """

    def __init__(
        self,
        config: TenantConfig,
        *,
        workers: int = 1,
        pool: object | None = None,
        snapshot: TenantSnapshot | None = None,
    ) -> None:
        self.config = config
        resilience = None
        if config.shed_watermark is not None:
            resilience = ResilienceConfig(shed_watermark=config.shed_watermark)
        self._session = ERSession(
            _empty_dataset(config),
            systems=(config.system,),
            matcher=config.matcher,
            engine=EngineOptions(pipelined=config.pipelined, workers=workers),
            budget=config.budget,
            checkpoint_every=config.checkpoint_every,
            resilience=resilience,
            pool=pool,
        )
        self._arrivals: list[tuple[float, Increment]] = []
        #: Ops accepted by admission, in order — replaying this log through
        #: a fresh TenantSession reproduces the run bit-identically.
        self.ingests_accepted = 0
        self.ingests_shed = 0
        self.drains = 0
        if snapshot is None:
            self._push: PushSession = self._session.push(config.system)
        else:
            self._push = self._session.push(
                config.system,
                resume_from=snapshot.checkpoint,
                adopt_checkpoint_budget=True,
            )
            for at, increment in snapshot.arrivals:
                self._push.feed(increment, at=at)
                self._arrivals.append((at, increment))
            # Each logged arrival was one accepted ingest of the original
            # tenant; the counter carries over with the log.
            self.ingests_accepted = len(self._arrivals)
            # Bind the checkpoint to exactly these arrivals before any new
            # feeds can grow the plan past its fingerprint.
            self._push.start()
            if snapshot.horizon is not None:
                self._push.drain(snapshot.horizon)

    # ------------------------------------------------------------------
    # The push surface, budget-guarded
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        return self._push.clock

    @property
    def horizon(self) -> float | None:
        return self._push.horizon

    @property
    def finished(self) -> bool:
        return self._push.finished

    @property
    def budget_exhausted(self) -> bool:
        """Whether the virtual allowance is used up (no further arrivals)."""
        horizon = self._push.horizon
        return horizon is not None and horizon >= self.config.budget

    def ingest(self, profiles: Sequence[EntityProfile], at: float | None = None) -> float:
        """Feed one increment and auto-drain to its arrival time.

        Raises ``ValueError`` when ``at`` lies beyond the tenant budget
        (the stream's virtual window is over) or regresses — admission
        control at the tenant boundary, before any engine work.
        Returns the recorded arrival time.
        """
        budget = self.config.budget
        if at is not None and at > budget:
            raise ValueError(
                f"arrival at t={at} is beyond the tenant budget {budget}"
            )
        recorded = self._push.ingest(profiles, at=at)
        self._arrivals.append((recorded, self._last_increment()))
        self.ingests_accepted += 1
        # Progressive surfacing: advance the engine to the arrival so due
        # comparisons execute now, not at the next explicit drain.
        target = min(max(recorded, self._push.horizon or 0.0), budget)
        if target > 0.0 and target > (self._push.horizon or 0.0):
            self._push.drain(target)
        return recorded

    def drain(self, until: float) -> float:
        """Advance the tenant's virtual clock to ``until`` (≤ budget)."""
        if until > self.config.budget:
            raise ValueError(
                f"drain horizon {until} exceeds the tenant budget {self.config.budget}"
            )
        clock = self._push.drain(until)
        self.drains += 1
        return clock

    def matches(self) -> frozenset[tuple[int, int]]:
        return self._push.matches

    @property
    def comparisons_executed(self) -> int:
        return self._push.comparisons_executed

    def results(self):
        """Finalize the tenant's run (terminal)."""
        return self._push.results()

    def snapshot(self) -> TenantSnapshot:
        """A migratable cut of this tenant (taken between operations)."""
        return TenantSnapshot(
            config=self.config,
            checkpoint=self._push.checkpoint(),
            arrivals=tuple(self._arrivals),
            horizon=self._push.horizon,
            next_index=self._push.increments_fed,
        )

    def close(self) -> None:
        self._session.close()

    # ------------------------------------------------------------------
    def _last_increment(self) -> Increment:
        # PushSession appended the increment to the underlying plan.
        return self._push._run.plan.increments[-1]
