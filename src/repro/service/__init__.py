"""ER-as-a-service: a multi-tenant front-end over the push-mode engines.

The ROADMAP's north star is millions of users streaming profile updates;
this package is that shape at library scale.  An asyncio
:class:`~repro.service.server.ERServer` accepts profile increments for many
independent tenants over a JSON-line socket protocol
(:mod:`repro.service.protocol`), multiplexes their engine steps onto one
shared worker fleet, and enforces per-tenant virtual budgets with admission
control, backpressure and two-level load shedding.  Each tenant is a
push-mode :class:`~repro.api.ERSession`
(:mod:`repro.service.tenant`); checkpoint/restore generalizes to tenant
snapshot/migrate.  :class:`~repro.service.client.ServiceClient` is the
matching synchronous client.

Start a server::

    python -m repro.service --port 7464 --workers 4

Determinism contract: a tenant's results depend only on its *accepted*
operation sequence — never on wall-clock interleaving with other tenants —
and replaying that sequence through a standalone session is bit-identical
(``benchmarks/service.py`` gates this per tenant).
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import result_fingerprint, result_payload
from repro.service.server import ERServer
from repro.service.tenant import TenantConfig, TenantSession, TenantSnapshot

__all__ = [
    "ERServer",
    "ServiceClient",
    "ServiceError",
    "TenantConfig",
    "TenantSession",
    "TenantSnapshot",
    "result_fingerprint",
    "result_payload",
]
