"""A small synchronous client for the ER service.

Blocking socket + JSON lines: the mirror image of the server's protocol,
deliberately dependency-free so benchmarks, CI smoke tests and notebooks
can drive a server without an async runtime.

Two calling styles:

* **Call-response** — :meth:`ServiceClient.call` (and the named
  conveniences) send one request and block for its reply.
* **Pipelined** — :meth:`ServiceClient.send` returns the request id
  immediately; :meth:`ServiceClient.wait` collects a specific reply later
  (out-of-order arrivals are buffered).  Pipelining is how a client
  saturates a tenant's ingest queue and actually observes shedding — a
  strict call-response loop self-throttles and never backs the server up.
"""

from __future__ import annotations

import base64
import socket
from typing import Iterable, Sequence

from repro.core.profile import EntityProfile
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An error response from the server, as an exception.

    ``code`` is the stable protocol error code (``"shed"``,
    ``"admission"``, ``"budget"``, ...); the full response dict is on
    ``response``.
    """

    def __init__(self, response: dict) -> None:
        code = response.get("error", "unknown")
        super().__init__(f"{code}: {response.get('detail', '')}")
        self.code = code
        self.response = response


class ServiceClient:
    """One connection to an :class:`~repro.service.server.ERServer`."""

    def __init__(self, host: str, port: int, timeout: float | None = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._pending: dict[object, dict] = {}

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def send(self, op: str, **fields: object) -> int:
        """Send one request without waiting; returns its request id."""
        self._next_id += 1
        request_id = self._next_id
        self._file.write(protocol.encode_line({"op": op, "id": request_id, **fields}))
        self._file.flush()
        return request_id

    def wait(self, request_id: int, *, check: bool = True) -> dict:
        """Block for the reply to ``request_id`` (buffering others).

        With ``check`` (default), an error reply raises
        :class:`ServiceError`; pass ``check=False`` to receive shed/budget
        refusals as plain dicts (the overload benchmark counts them).
        """
        while request_id not in self._pending:
            line = self._file.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.decode_line(line)
            self._pending[response.get("id")] = response
        response = self._pending.pop(request_id)
        if check and not response.get("ok", False):
            raise ServiceError(response)
        return response

    def call(self, op: str, *, check: bool = True, **fields: object) -> dict:
        """Send one request and block for its reply."""
        return self.wait(self.send(op, **fields), check=check)

    # ------------------------------------------------------------------
    # Conveniences (call-response)
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")

    def open(self, tenant: str, **config: object) -> dict:
        """Open a tenant (``system=``, ``matcher=``, ``budget=``, ...)."""
        return self.call("open", tenant=tenant, **config)

    def ingest(
        self,
        tenant: str,
        profiles: Iterable[EntityProfile] | Sequence[dict],
        at: float | None = None,
        *,
        check: bool = True,
    ) -> dict:
        return self.wait(self.send_ingest(tenant, profiles, at), check=check)

    def send_ingest(
        self,
        tenant: str,
        profiles: Iterable[EntityProfile] | Sequence[dict],
        at: float | None = None,
    ) -> int:
        """Pipelined ingest: send and return the id without waiting."""
        payload = list(profiles)
        if payload and isinstance(payload[0], EntityProfile):
            payload = protocol.encode_profiles(payload)
        return self.send("ingest", tenant=tenant, profiles=payload, at=at)

    def drain(self, tenant: str, until: float) -> dict:
        return self.call("drain", tenant=tenant, until=until)

    def matches(self, tenant: str) -> dict:
        return self.call("matches", tenant=tenant)

    def results(self, tenant: str) -> dict:
        return self.call("results", tenant=tenant)

    def snapshot(self, tenant: str) -> bytes:
        """The tenant's migratable snapshot (pickle bytes)."""
        response = self.call("snapshot", tenant=tenant)
        return base64.b64decode(response["snapshot"])

    def restore(self, tenant: str, snapshot: bytes) -> dict:
        return self.call(
            "restore",
            tenant=tenant,
            snapshot=base64.b64encode(snapshot).decode("ascii"),
        )

    def close_tenant(self, tenant: str) -> dict:
        return self.call("close", tenant=tenant)

    def shutdown(self) -> dict:
        """Ask the server to stop (replies before stopping)."""
        return self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
