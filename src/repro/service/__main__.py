"""``python -m repro.service``: run an ER service in the foreground."""

from __future__ import annotations

import argparse
import asyncio
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve multi-tenant progressive ER over a line-protocol socket.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7464)
    parser.add_argument(
        "--workers", type=int, default=1, help="shared Tier A fleet size"
    )
    parser.add_argument("--max-tenants", type=int, default=64)
    parser.add_argument(
        "--queue-limit", type=int, default=32, help="per-tenant op queue depth"
    )
    args = parser.parse_args(argv)

    async def serve() -> None:
        from repro.service.server import ERServer

        server = ERServer(
            args.host,
            args.port,
            workers=args.workers,
            max_tenants=args.max_tenants,
            queue_limit=args.queue_limit,
        )
        await server.start()
        print(f"repro service listening on {server.host}:{server.port}", flush=True)
        try:
            await server.serve_until_stopped()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
