"""The ER service: an asyncio line-protocol server multiplexing tenants.

Architecture — three moving parts, one per concern:

* **Connection handlers** (one coroutine per client socket) parse JSON-line
  requests and *admit* them: tenant-table admission for ``open``/
  ``restore``, queue admission for engine ops.  They never touch an
  engine.
* **Tenant workers** (one coroutine per tenant) drain their tenant's FIFO
  op queue.  The queue is the determinism boundary: results depend only on
  the *accepted* op sequence, never on socket interleaving — replaying a
  tenant's accepted log through a standalone session is bit-identical,
  which the service benchmark verifies per tenant.
* **One drain executor** (a single worker thread) runs every
  engine-touching call.  Engines hold the GIL hard; one thread keeps the
  event loop responsive, and — because *all* tenants share it — it also
  serializes access to the shared Tier A :class:`WorkerPool`, whose
  cache-epoch handshake (``begin_run(owner=...)``) assumes one run speaks
  to the fleet at a time.

Backpressure and shedding are two-level, mirroring the engine's own
resilience design: the server sheds ingest *requests* when a tenant's op
queue is full (the client sees ``error: "shed"`` plus the queue depth and
may retry later), and each tenant may additionally configure the engine's
``shed_watermark`` to drop *due increments* under virtual-time backlog.
Overload degrades throughput, never correctness of what was accepted.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.observability.metrics import MetricsRegistry
from repro.service import protocol
from repro.service.tenant import TenantConfig, TenantSession, TenantSnapshot

__all__ = ["ERServer"]

#: Ops a tenant worker executes (everything that touches the engine).
_ENGINE_OPS = frozenset(
    {"ingest", "drain", "matches", "results", "snapshot", "close"}
)

#: Per-line frame ceiling.  Snapshot blobs (base64 pickles of a tenant's
#: full engine state) travel as one line and routinely exceed asyncio's
#: 64 KiB default stream limit, which kills the connection mid-read.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class _Tenant:
    """Server-side record of one live tenant."""

    __slots__ = ("session", "queue", "worker", "closing")

    def __init__(self, session: TenantSession, queue_limit: int) -> None:
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.worker: asyncio.Task | None = None
        self.closing = False


class ERServer:
    """A multi-tenant progressive-ER service over a line-protocol socket.

    Parameters
    ----------
    host / port:
        Bind address; port ``0`` picks a free port (see :attr:`port` after
        :meth:`start`).
    workers:
        Tier A fleet size shared by *all* tenants (``1``: in-process
        scoring, no fleet).
    max_tenants:
        Admission ceiling: ``open``/``restore`` beyond this are rejected.
    queue_limit:
        Per-tenant op-queue depth; a full queue sheds ingest requests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        max_tenants: int = 64,
        queue_limit: int = 32,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.host = host
        self._requested_port = port
        self.workers = workers
        self.max_tenants = max_tenants
        self.queue_limit = queue_limit
        self.metrics = MetricsRegistry()
        self._tenants: dict[str, _Tenant] = {}
        self._pools: dict[str, object] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stopping: asyncio.Event | None = None
        self._stop_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        # One thread: engines are GIL-bound anyway, and a single lane
        # serializes shared-pool access across tenants by construction.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="er-drain"
        )
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=MAX_FRAME_BYTES,
        )

    async def stop(self) -> None:
        """Stop accepting, drain tenant workers, shut fleets down.

        Idempotent and race-free: concurrent callers (a ``shutdown`` op and
        a context-manager exit, say) all await the one teardown task.
        """
        if self._stopping is None:
            return
        if self._stop_task is None:
            self._stop_task = asyncio.get_running_loop().create_task(self._do_stop())
        await asyncio.shield(self._stop_task)

    async def _do_stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # Close established connections too (Server.close only stops
        # accepting); their handlers then see EOF and exit on their own
        # instead of being cancelled at event-loop teardown.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        for tenant in list(self._tenants.values()):
            tenant.closing = True
            if tenant.worker is not None:
                tenant.worker.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await tenant.worker
        if self._executor is not None:
            loop = asyncio.get_running_loop()
            for name, tenant in list(self._tenants.items()):
                await loop.run_in_executor(self._executor, tenant.session.close)
                self.metrics.count("service.tenant.closed")
                self._tenants.pop(name, None)
            for pool in self._pools.values():
                await loop.run_in_executor(self._executor, pool.close)
            self._pools.clear()
            self._executor.shutdown(wait=True)
            self._executor = None
        self.metrics.gauge("service.tenants_active", 0.0)
        if self._stopping is not None:
            self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` completes (for ``python -m`` serving)."""
        if self._stopping is None:
            raise RuntimeError("server is not running")
        await self._stopping.wait()

    async def __aenter__(self) -> "ERServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = protocol.decode_line(line)
                except ValueError as exc:
                    self._reply(
                        writer,
                        protocol.error_response(
                            None, protocol.ERR_BAD_REQUEST, str(exc)
                        ),
                    )
                    continue
                await self._dispatch(request, writer)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _reply(self, writer: asyncio.StreamWriter, response: dict) -> None:
        # One write() per line keeps concurrent repliers (tenant workers,
        # the connection handler) from interleaving partial frames.
        if not writer.is_closing():
            writer.write(protocol.encode_line(response))

    async def _dispatch(self, request: dict, writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        request_id = request.get("id")
        if op == "ping":
            self._reply(
                writer,
                protocol.ok_response(
                    request_id, version=protocol.PROTOCOL_VERSION, tenants=len(self._tenants)
                ),
            )
        elif op == "stats":
            self._reply(
                writer,
                protocol.ok_response(
                    request_id,
                    tenants=sorted(self._tenants),
                    metrics=self.metrics.snapshot(include_wall=False),
                ),
            )
        elif op == "open":
            self._reply(writer, self._open_tenant(request))
        elif op == "restore":
            response = await self._restore_tenant(request)
            self._reply(writer, response)
        elif op == "shutdown":
            self._reply(writer, protocol.ok_response(request_id))
            with contextlib.suppress(Exception):
                await writer.drain()
            asyncio.get_running_loop().create_task(self.stop())
        elif op in _ENGINE_OPS:
            await self._enqueue(request, writer)
        else:
            self._reply(
                writer,
                protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, f"unknown op {op!r}"
                ),
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, tenant_id: object) -> str | None:
        """Reason the tenant cannot be admitted, or ``None`` if it can."""
        if not isinstance(tenant_id, str) or not tenant_id:
            return "tenant must be a non-empty string"
        if tenant_id in self._tenants:
            return f"tenant {tenant_id!r} already exists"
        if len(self._tenants) >= self.max_tenants:
            return f"tenant table full ({self.max_tenants})"
        return None

    def _open_tenant(self, request: dict) -> dict:
        request_id = request.get("id")
        tenant_id = request.get("tenant")
        refusal = self._admit(tenant_id)
        if refusal is not None:
            self.metrics.count("service.tenant.rejected")
            return protocol.error_response(
                request_id, protocol.ERR_ADMISSION, refusal
            )
        try:
            config = TenantConfig(
                tenant_id=tenant_id,
                system=request.get("system", "I-PES"),
                matcher=request.get("matcher", "JS"),
                budget=float(request.get("budget", 300.0)),
                kind=request.get("kind", "dirty"),
                pipelined=bool(request.get("pipelined", False)),
                shed_watermark=request.get("shed_watermark"),
                checkpoint_every=request.get("checkpoint_every"),
            )
            session = TenantSession(
                config, workers=self.workers, pool=self._pool_for(config)
            )
        except (TypeError, ValueError) as exc:
            self.metrics.count("service.tenant.rejected")
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, str(exc)
            )
        self._register(tenant_id, session)
        self.metrics.count("service.tenant.opened")
        return protocol.ok_response(
            request_id, tenant=tenant_id, budget=config.budget
        )

    async def _restore_tenant(self, request: dict) -> dict:
        request_id = request.get("id")
        tenant_id = request.get("tenant")
        refusal = self._admit(tenant_id)
        if refusal is not None:
            self.metrics.count("service.tenant.rejected")
            return protocol.error_response(
                request_id, protocol.ERR_ADMISSION, refusal
            )
        try:
            blob = base64.b64decode(request["snapshot"])
            snapshot = TenantSnapshot.from_bytes(blob)
        except (KeyError, ValueError, TypeError) as exc:
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, f"bad snapshot: {exc}"
            )
        if snapshot.config.tenant_id != tenant_id:
            return protocol.error_response(
                request_id,
                protocol.ERR_BAD_REQUEST,
                f"snapshot belongs to tenant {snapshot.config.tenant_id!r}",
            )
        # Restoring replays the fed arrivals and re-drains to the snapshot
        # horizon — real engine work, so run it on the drain lane.
        loop = asyncio.get_running_loop()
        try:
            session = await loop.run_in_executor(
                self._executor,
                lambda: TenantSession(
                    snapshot.config,
                    workers=self.workers,
                    pool=self._pool_for(snapshot.config),
                    snapshot=snapshot,
                ),
            )
        except Exception as exc:
            return protocol.error_response(
                request_id, protocol.ERR_INTERNAL, f"restore failed: {exc}"
            )
        self._register(tenant_id, session)
        self.metrics.count("service.tenant.restores")
        return protocol.ok_response(
            request_id,
            tenant=tenant_id,
            clock=session.clock,
            ingested=session.ingests_accepted,
        )

    def _register(self, tenant_id: str, session: TenantSession) -> None:
        tenant = _Tenant(session, self.queue_limit)
        tenant.worker = asyncio.get_running_loop().create_task(
            self._tenant_worker(tenant_id, tenant)
        )
        self._tenants[tenant_id] = tenant
        self.metrics.gauge("service.tenants_active", float(len(self._tenants)))

    def _pool_for(self, config: TenantConfig) -> object | None:
        """The shared Tier A fleet for this matcher config (lazily spawned)."""
        if self.workers <= 1:
            return None
        key = config.matcher.upper()
        pool = self._pools.get(key)
        if pool is None:
            from repro.evaluation.experiments import _build_matcher
            from repro.parallel.pool import WorkerPool

            pool = WorkerPool.create(self.workers, _build_matcher(key))
            if pool is None:
                return None
            self._pools[key] = pool
        return pool if pool.healthy else None

    # ------------------------------------------------------------------
    # Engine ops: queue admission + the tenant worker
    # ------------------------------------------------------------------
    async def _enqueue(self, request: dict, writer: asyncio.StreamWriter) -> None:
        request_id = request.get("id")
        tenant_id = request.get("tenant")
        tenant = self._tenants.get(tenant_id) if isinstance(tenant_id, str) else None
        if tenant is None or tenant.closing:
            self._reply(
                writer,
                protocol.error_response(
                    request_id, protocol.ERR_UNKNOWN_TENANT, f"no tenant {tenant_id!r}"
                ),
            )
            return
        if request.get("op") == "ingest":
            # Sheddable: a full queue answers *now* with the depth, instead
            # of stalling the connection — the client may retry or back off.
            try:
                tenant.queue.put_nowait((request, writer))
            except asyncio.QueueFull:
                tenant.session.ingests_shed += 1
                self.metrics.count("service.tenant.shed")
                self._reply(
                    writer,
                    protocol.error_response(
                        request_id,
                        protocol.ERR_SHED,
                        "ingest queue full",
                        queue_depth=tenant.queue.qsize(),
                    ),
                )
            return
        # Control ops are never shed; a full queue backpressures the
        # connection instead (the reader pauses until space frees).
        await tenant.queue.put((request, writer))

    async def _tenant_worker(self, tenant_id: str, tenant: _Tenant) -> None:
        loop = asyncio.get_running_loop()
        while True:
            request, writer = await tenant.queue.get()
            request_id = request.get("id")
            op = request.get("op")
            try:
                handler = self._engine_op(op, tenant_id, tenant, request)
                response = await loop.run_in_executor(self._executor, handler)
            except asyncio.CancelledError:
                raise
            except ValueError as exc:
                code = (
                    protocol.ERR_BUDGET
                    if "budget" in str(exc)
                    else protocol.ERR_BAD_REQUEST
                )
                response = protocol.error_response(request_id, code, str(exc))
            except RuntimeError as exc:
                response = protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, str(exc)
                )
            except Exception as exc:  # pragma: no cover - defensive
                response = protocol.error_response(
                    request_id, protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                )
            self._reply(writer, response)
            tenant.queue.task_done()
            if op == "close":
                break

    def _engine_op(
        self, op: str, tenant_id: str, tenant: _Tenant, request: dict
    ) -> Callable[[], dict]:
        """Bind one queued engine op to a thunk for the drain executor."""
        request_id = request.get("id")
        session = tenant.session
        metrics = self.metrics

        if op == "ingest":
            profiles = protocol.decode_profiles(request.get("profiles", ()))
            at = request.get("at")

            def run() -> dict:
                recorded = session.ingest(
                    profiles, at=None if at is None else float(at)
                )
                metrics.count("service.tenant.ingests")
                metrics.count("service.tenant.profiles", len(profiles))
                return protocol.ok_response(
                    request_id,
                    at=recorded,
                    clock=session.clock,
                    matches=len(session.matches()),
                    comparisons=session.comparisons_executed,
                )

        elif op == "drain":

            def run() -> dict:
                clock = session.drain(float(request["until"]))
                metrics.count("service.tenant.drains")
                return protocol.ok_response(
                    request_id,
                    clock=clock,
                    matches=len(session.matches()),
                    comparisons=session.comparisons_executed,
                )

        elif op == "matches":

            def run() -> dict:
                return protocol.ok_response(
                    request_id,
                    matches=sorted(map(list, session.matches())),
                    clock=session.clock,
                    comparisons=session.comparisons_executed,
                )

        elif op == "results":

            def run() -> dict:
                result = session.results()
                metrics.count("service.tenant.results")
                return protocol.ok_response(
                    request_id,
                    result=protocol.result_payload(result),
                    fingerprint=protocol.result_fingerprint(result),
                )

        elif op == "snapshot":

            def run() -> dict:
                snapshot = session.snapshot()
                metrics.count("service.tenant.snapshots")
                return protocol.ok_response(
                    request_id,
                    snapshot=base64.b64encode(snapshot.to_bytes()).decode("ascii"),
                    clock=session.clock,
                )

        elif op == "close":
            tenant.closing = True

            def run() -> dict:
                session.close()
                metrics.count("service.tenant.closed")
                self._tenants.pop(tenant_id, None)
                metrics.gauge("service.tenants_active", float(len(self._tenants)))
                return protocol.ok_response(request_id, tenant=tenant_id)

        else:  # pragma: no cover - _ENGINE_OPS is the dispatch gate

            def run() -> dict:
                return protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, f"unknown op {op!r}"
                )

        return run
