"""The service wire protocol: JSON lines over a byte stream.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — trivially
debuggable with ``nc`` and language-agnostic.  Requests carry an ``op`` and
a client-chosen ``id``; responses echo the ``id`` so clients may *pipeline*
requests (send many before reading replies), which is what makes server-side
backpressure and load shedding observable at all: a strictly call-response
client can never fill an ingest queue.

Response envelope: ``{"id": ..., "ok": true, ...}`` on success;
``{"id": ..., "ok": false, "error": "<code>", "detail": "..."}`` on failure.
Error codes are stable strings (:data:`ERR_ADMISSION`, :data:`ERR_SHED`,
:data:`ERR_BUDGET`, ...), not prose.

Profiles travel as ``{"pid": int, "source": int, "attributes":
[[name, value], ...]}`` — the schema-agnostic shape of
:class:`~repro.core.profile.EntityProfile`, nothing more.

Determinism: :func:`result_payload` / :func:`result_fingerprint` reduce a
:class:`~repro.execution.core.RunResult` to its host-independent surface
(curve, duplicates, counters minus ``parallel.*`` telemetry and wall
clocks), so two runs agree on the wire iff they agree bit-for-bit in the
engine — the property the service's per-tenant bit-identity gate checks.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.profile import EntityProfile
from repro.parallel import strip_parallel_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.core import RunResult

__all__ = [
    "PROTOCOL_VERSION",
    "ERR_ADMISSION",
    "ERR_BAD_REQUEST",
    "ERR_BUDGET",
    "ERR_INTERNAL",
    "ERR_SHED",
    "ERR_UNKNOWN_TENANT",
    "decode_line",
    "decode_profiles",
    "encode_line",
    "encode_profiles",
    "error_response",
    "ok_response",
    "result_fingerprint",
    "result_payload",
]

PROTOCOL_VERSION = 1

# Stable error codes (the client switches on these, never on prose).
ERR_ADMISSION = "admission"          # tenant table full / duplicate tenant
ERR_BAD_REQUEST = "bad-request"      # malformed op or arguments
ERR_BUDGET = "budget"                # drain horizon beyond the tenant budget
ERR_INTERNAL = "internal"            # unexpected server-side failure
ERR_SHED = "shed"                    # ingest dropped by backpressure
ERR_UNKNOWN_TENANT = "unknown-tenant"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_line(message: dict) -> bytes:
    """One protocol message as a JSON line (sorted keys: stable on the wire)."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line; raises ``ValueError`` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def ok_response(request_id: object, **fields: object) -> dict:
    return {"id": request_id, "ok": True, **fields}


def error_response(request_id: object, code: str, detail: str = "", **fields) -> dict:
    return {"id": request_id, "ok": False, "error": code, "detail": detail, **fields}


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def encode_profiles(profiles: Iterable[EntityProfile]) -> list[dict]:
    return [
        {
            "pid": profile.pid,
            "source": profile.source,
            "attributes": [[a.name, a.value] for a in profile.attributes],
        }
        for profile in profiles
    ]


def decode_profiles(payload: Sequence[dict]) -> tuple[EntityProfile, ...]:
    profiles = []
    for entry in payload:
        try:
            profiles.append(
                EntityProfile(
                    int(entry["pid"]),
                    [(str(n), str(v)) for n, v in entry.get("attributes", [])],
                    source=int(entry.get("source", 0)),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed profile payload: {entry!r}") from exc
    return tuple(profiles)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_payload(result: "RunResult") -> dict:
    """A run result reduced to its deterministic, JSON-serializable surface.

    Drops everything host-dependent: wall clocks inside the metrics
    snapshot and the ``parallel.*``/scatter telemetry (which describe the
    fleet, not the resolution).  What remains is bit-identical across
    worker counts, hosts and interleavings — the replayable contract.
    """
    metrics = result.details.get("metrics", {})
    if isinstance(metrics, dict):
        metrics = strip_parallel_telemetry(_strip_wall(metrics))
    return {
        "system": result.system_name,
        "matcher": result.matcher_name,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "budget": result.budget,
        "work_exhausted": result.work_exhausted,
        "increments_ingested": result.increments_ingested,
        "matches": sorted(map(list, result.duplicates)),
        "curve": [
            [point.time, point.comparisons, point.matches]
            for point in result.curve.points
        ],
        "metrics": metrics,
    }


def result_fingerprint(result: "RunResult") -> str:
    """SHA-256 over the deterministic result surface (hex digest).

    Two runs share a fingerprint iff :func:`result_payload` agrees
    byte-for-byte — the per-tenant bit-identity check of the service
    benchmark compares these against standalone :class:`ERSession` runs.
    """
    payload = json.dumps(
        result_payload(result), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def _strip_wall(snapshot: dict) -> dict:
    """Drop wall-clock fields from a metrics snapshot (host-dependent)."""
    stripped = dict(snapshot)
    if "phases" in stripped and isinstance(stripped["phases"], dict):
        stripped["phases"] = {
            name: {k: v for k, v in totals.items() if k != "wall_s"}
            for name, totals in stripped["phases"].items()
        }
    if "rounds" in stripped:
        # The bounded per-round log carries wall timings; drop it whole.
        stripped.pop("rounds")
    return stripped
