"""Priority queues, Bloom filters, and rate-adaptive budget control."""

from repro.priority.bloom import BloomFilter, ExactComparisonFilter, ScalableBloomFilter
from repro.priority.bounded_pq import BoundedPriorityQueue
from repro.priority.rates import AdaptiveK, RateEstimator

__all__ = [
    "AdaptiveK",
    "BloomFilter",
    "BoundedPriorityQueue",
    "ExactComparisonFilter",
    "RateEstimator",
    "ScalableBloomFilter",
]
