"""Rate estimation and the adaptive emission budget ``findK``.

Algorithm 1 of the paper chooses the number ``K`` of comparisons emitted per
round "dynamically according to the rate of the different components": if
the average input rate is below the system service rate (the matcher can
keep up), ``K`` grows so the idle capacity performs more prioritized
comparisons; otherwise ``K`` shrinks to let the stream be consumed faster.

``findK`` is implemented as a multiplicative-increase/multiplicative-decrease
controller over two moving-average rate estimates.
"""

from __future__ import annotations

__all__ = ["RateEstimator", "AdaptiveK"]


class RateEstimator:
    """Moving average of an event rate from (timestamp, amount) samples.

    The estimate is ``ema(amount) / ema(interval)`` over the most recent
    samples, which tracks both bursty arrivals and smoothly varying rates.
    """

    __slots__ = ("alpha", "_last_time", "_ema_interval", "_ema_amount", "samples")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._last_time: float | None = None
        self._ema_interval: float | None = None
        self._ema_amount: float | None = None
        self.samples = 0

    def record(self, timestamp: float, amount: float = 1.0) -> None:
        """Record ``amount`` units of work/arrival occurring at ``timestamp``."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._last_time is not None:
            interval = max(timestamp - self._last_time, 1e-12)
            if self._ema_interval is None:
                self._ema_interval = interval
                self._ema_amount = amount
            else:
                self._ema_interval += self.alpha * (interval - self._ema_interval)
                self._ema_amount += self.alpha * (amount - self._ema_amount)
        self._last_time = timestamp
        self.samples += 1

    @property
    def rate(self) -> float | None:
        """Estimated units per second; ``None`` until two samples exist."""
        if self._ema_interval is None or self._ema_amount is None:
            return None
        return self._ema_amount / self._ema_interval

    def rate_at(self, now: float) -> float | None:
        """Rate estimate that decays when no event has arrived for a while.

        If the gap since the last event exceeds the average interval, the
        gap dominates the denominator — so a stream that has gone quiet
        reports a shrinking rate instead of its historical one.  This is
        what lets ``findK`` grow the budget after the last increment.
        """
        if self._ema_interval is None or self._ema_amount is None:
            return None
        if self._last_time is None:
            return self.rate
        effective_interval = max(self._ema_interval, now - self._last_time)
        return self._ema_amount / max(effective_interval, 1e-12)

    def reset(self) -> None:
        self._last_time = None
        self._ema_interval = None
        self._ema_amount = None
        self.samples = 0

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> tuple:
        return (self.alpha, self._last_time, self._ema_interval, self._ema_amount, self.samples)

    def restore_state(self, state: tuple) -> None:
        (self.alpha, self._last_time, self._ema_interval, self._ema_amount, self.samples) = state


class AdaptiveK:
    """The ``findK()`` controller of Algorithm 1.

    Parameters
    ----------
    initial:
        Starting emission budget.
    minimum / maximum:
        Clamp bounds for ``K``.
    growth / shrink:
        Multiplicative adjustment factors applied when the matcher has spare
        capacity (growth) or is the bottleneck (shrink).
    """

    __slots__ = ("k", "minimum", "maximum", "growth", "shrink")

    def __init__(
        self,
        initial: int = 64,
        minimum: int = 4,
        maximum: int = 65536,
        growth: float = 1.25,
        shrink: float = 0.7,
    ) -> None:
        if not 1 <= minimum <= initial <= maximum:
            raise ValueError("need 1 <= minimum <= initial <= maximum")
        if growth <= 1.0 or not 0.0 < shrink < 1.0:
            raise ValueError("growth must exceed 1 and shrink lie in (0, 1)")
        self.k = initial
        self.minimum = minimum
        self.maximum = maximum
        self.growth = growth
        self.shrink = shrink

    def update(self, input_rate: float | None, service_rate: float | None) -> int:
        """Adjust and return ``K`` given the latest rate estimates.

        ``input_rate`` is the increment arrival rate; ``service_rate`` is the
        rate at which the pipeline finishes emission rounds.  With no
        estimates yet (warm-up), ``K`` is left unchanged.
        """
        if input_rate is None or service_rate is None:
            return self.k
        if input_rate < service_rate:
            adjusted = self.k * self.growth
        elif input_rate > service_rate:
            adjusted = self.k * self.shrink
        else:
            # A perfectly balanced stream is already at the right K; shrinking
            # here would ratchet K down to the minimum for no reason.
            return self.k
        self.k = int(min(self.maximum, max(self.minimum, round(adjusted))))
        return self.k

    @property
    def value(self) -> int:
        return self.k
