"""Bloom filters for comparison deduplication.

I-PBS must not re-emit a comparison that was already generated from an
earlier block.  Following Gazzarri & Herschel (EDBT 2020 short paper), the
redundancy check uses a *scalable* Bloom filter: a sequence of plain Bloom
filters of geometrically growing capacity and geometrically tightening
false-positive rate, so the compound error stays bounded while the stream
grows without a known size upfront.

Hashing is deterministic (independent of ``PYTHONHASHSEED``): items are
canonical ``(int, int)`` pairs mixed with a splitmix64-style finalizer, and
the k indexes derive from two base hashes (Kirsch-Mitzenmacher).
"""

from __future__ import annotations

import math

__all__ = ["BloomFilter", "ScalableBloomFilter", "ExactComparisonFilter"]

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _pair_hashes(left: int, right: int) -> tuple[int, int]:
    """Two independent 64-bit hashes of a canonical pid pair."""
    mixed = _splitmix64((left << 32) ^ right)
    return mixed, _splitmix64(mixed ^ 0xD6E8FEB86659FD93)


class BloomFilter:
    """Plain Bloom filter over canonical pid pairs."""

    __slots__ = ("capacity", "error_rate", "num_bits", "num_hashes", "_bits", "count")

    def __init__(self, capacity: int, error_rate: float = 0.001) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        self.capacity = capacity
        self.error_rate = error_rate
        ln2 = math.log(2.0)
        self.num_bits = max(8, int(math.ceil(-capacity * math.log(error_rate) / (ln2 * ln2))))
        self.num_hashes = max(1, int(round(self.num_bits / capacity * ln2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _indexes(self, left: int, right: int) -> list[int]:
        h1, h2 = _pair_hashes(left, right)
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def add(self, left: int, right: int) -> None:
        for index in self._indexes(left, right):
            self._bits[index >> 3] |= 1 << (index & 7)
        self.count += 1

    def __contains__(self, pair: tuple[int, int]) -> bool:
        left, right = pair
        for index in self._indexes(left, right):
            if not self._bits[index >> 3] & (1 << (index & 7)):
                return False
        return True

    @property
    def is_full(self) -> bool:
        return self.count >= self.capacity

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> tuple:
        """Bit-exact filter state as immutable plain data."""
        return (self.capacity, self.error_rate, bytes(self._bits), self.count)

    @classmethod
    def from_state(cls, state: tuple) -> "BloomFilter":
        capacity, error_rate, bits, count = state
        filter_ = cls(capacity, error_rate)
        filter_._bits = bytearray(bits)
        filter_.count = count
        return filter_


class ScalableBloomFilter:
    """Scalable Bloom filter (Almeida et al.): stacked growing slices.

    Parameters
    ----------
    initial_capacity:
        Capacity of the first slice.
    error_rate:
        Compound target false-positive rate.
    growth:
        Capacity growth factor per slice.
    tightening:
        Error-rate tightening ratio per slice (< 1), so the series of slice
        errors sums below ``error_rate``.
    """

    __slots__ = ("initial_capacity", "error_rate", "growth", "tightening", "_slices")

    def __init__(
        self,
        initial_capacity: int = 1024,
        error_rate: float = 0.001,
        growth: int = 4,
        tightening: float = 0.5,
    ) -> None:
        if growth < 2:
            raise ValueError("growth must be >= 2")
        if not 0.0 < tightening < 1.0:
            raise ValueError("tightening must be in (0, 1)")
        self.initial_capacity = initial_capacity
        self.error_rate = error_rate
        self.growth = growth
        self.tightening = tightening
        first_error = error_rate * (1.0 - tightening)
        self._slices: list[BloomFilter] = [BloomFilter(initial_capacity, first_error)]

    def add(self, left: int, right: int) -> None:
        current = self._slices[-1]
        if current.is_full:
            current = BloomFilter(
                current.capacity * self.growth,
                current.error_rate * self.tightening,
            )
            self._slices.append(current)
        current.add(left, right)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return any(pair in slice_ for slice_ in reversed(self._slices))

    def contains(self, left: int, right: int) -> bool:
        return (left, right) in self

    @property
    def count(self) -> int:
        return sum(slice_.count for slice_ in self._slices)

    @property
    def num_slices(self) -> int:
        return len(self._slices)

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Bit-exact state of every slice plus the growth parameters."""
        return {
            "params": (self.initial_capacity, self.error_rate, self.growth, self.tightening),
            "slices": [slice_.snapshot_state() for slice_ in self._slices],
        }

    def restore_state(self, state: dict[str, object]) -> None:
        (self.initial_capacity, self.error_rate, self.growth, self.tightening) = state["params"]
        self._slices = [BloomFilter.from_state(slice_state) for slice_state in state["slices"]]


class ExactComparisonFilter:
    """Exact (set-based) comparison filter with the same interface.

    Useful for tests asserting zero false positives, and as a drop-in when
    memory is not a concern.
    """

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: set[tuple[int, int]] = set()

    def add(self, left: int, right: int) -> None:
        self._seen.add((left, right))

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return pair in self._seen

    def contains(self, left: int, right: int) -> bool:
        return (left, right) in self._seen

    @property
    def count(self) -> int:
        return len(self._seen)
