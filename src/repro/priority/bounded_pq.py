"""Bounded max-priority queue with lazy deletion.

The global comparison index ``CmpIndex`` of the PIER framework is "a bounded
priority queue returning as first element the comparison with highest
weight".  This implementation supports:

* ``enqueue(item, key)`` — insert with an arbitrary comparable priority key
  (floats for I-PCS/I-PES, ``(-block_size, cbs)`` tuples for I-PBS);
* ``dequeue()`` — remove and return the highest-priority item;
* bounded capacity — when full, a new item only enters by evicting the
  current *minimum*, and only if it outranks that minimum;
* ``peek_key()`` — the key of the current top (I-PES consults
  ``E_PQ(p).top.weight`` without removing it).

Internally two heaps (max and min views of the same items) share entries;
evicted/dequeued entries are tombstoned and skipped lazily, which keeps all
operations ``O(log n)`` amortized.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Iterator, TypeVar

__all__ = ["BoundedPriorityQueue"]

T = TypeVar("T")


class _Entry(Generic[T]):
    __slots__ = ("key", "seq", "item", "alive")

    def __init__(self, key: Any, seq: int, item: T) -> None:
        self.key = key
        self.seq = seq
        self.item = item
        self.alive = True


class _MaxView(Generic[T]):
    """Heap wrapper ordering entries descending by key, FIFO on ties."""

    __slots__ = ("entry",)

    def __init__(self, entry: _Entry[T]) -> None:
        self.entry = entry

    def __lt__(self, other: "_MaxView[T]") -> bool:
        if self.entry.key != other.entry.key:
            return self.entry.key > other.entry.key
        return self.entry.seq < other.entry.seq


class _MinView(Generic[T]):
    """Heap wrapper ordering entries ascending by key, LIFO on ties.

    On equal keys the *newest* item is considered the eviction victim, so
    older equally weighted comparisons are not starved.
    """

    __slots__ = ("entry",)

    def __init__(self, entry: _Entry[T]) -> None:
        self.entry = entry

    def __lt__(self, other: "_MinView[T]") -> bool:
        if self.entry.key != other.entry.key:
            return self.entry.key < other.entry.key
        return self.entry.seq > other.entry.seq


class BoundedPriorityQueue(Generic[T]):
    """Max-priority queue with optional capacity bound.

    Parameters
    ----------
    capacity:
        Maximum number of live items; ``None`` means unbounded.
    """

    # Hot allocation path: I-PES creates one queue per entity, so dropping
    # the per-instance ``__dict__`` is a real memory win (measured by
    # ``python -m benchmarks.perf``, section "slots").
    __slots__ = (
        "capacity", "_max_heap", "_min_heap", "_size", "_counter",
        "evictions", "rejections",
    )

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._max_heap: list[_MaxView[T]] = []
        self._min_heap: list[_MinView[T]] = []
        self._size = 0
        self._counter = itertools.count()
        self.evictions = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def enqueue(self, item: T, key: Any) -> bool:
        """Insert ``item`` with priority ``key``.

        Returns ``True`` if the item entered the queue.  When the queue is
        full, the item is rejected (``False``) unless it outranks the current
        minimum, which is then evicted.
        """
        if self.capacity is not None and self._size >= self.capacity:
            min_entry = self._peek_min_entry()
            if min_entry is None or not key > min_entry.key:
                self.rejections += 1
                return False
            min_entry.alive = False
            self._size -= 1
            self.evictions += 1
        entry = _Entry(key, next(self._counter), item)
        heapq.heappush(self._max_heap, _MaxView(entry))
        heapq.heappush(self._min_heap, _MinView(entry))
        self._size += 1
        return True

    def dequeue(self) -> T:
        """Remove and return the highest-priority item."""
        entry = self._pop_live_max()
        if entry is None:
            raise IndexError("dequeue from empty BoundedPriorityQueue")
        entry.alive = False
        self._size -= 1
        return entry.item

    def dequeue_with_key(self) -> tuple[T, Any]:
        """Like :meth:`dequeue` but also return the item's priority key."""
        entry = self._pop_live_max()
        if entry is None:
            raise IndexError("dequeue from empty BoundedPriorityQueue")
        entry.alive = False
        self._size -= 1
        return entry.item, entry.key

    def peek(self) -> T:
        """Return (without removing) the highest-priority item."""
        entry = self._pop_live_max()
        if entry is None:
            raise IndexError("peek on empty BoundedPriorityQueue")
        return entry.item

    def peek_key(self) -> Any:
        """Priority key of the current top item."""
        entry = self._pop_live_max()
        if entry is None:
            raise IndexError("peek_key on empty BoundedPriorityQueue")
        return entry.key

    def drain(self) -> Iterator[T]:
        """Yield all items in priority order, emptying the queue."""
        while self._size:
            yield self.dequeue()

    def clear(self) -> None:
        self._max_heap.clear()
        self._min_heap.clear()
        self._size = 0

    # ------------------------------------------------------------------
    def _pop_live_max(self) -> _Entry[T] | None:
        """Top live entry of the max heap (dead entries discarded en route)."""
        while self._max_heap:
            view = self._max_heap[0]
            if view.entry.alive:
                return view.entry
            heapq.heappop(self._max_heap)
        return None

    def _peek_min_entry(self) -> _Entry[T] | None:
        while self._min_heap:
            view = self._min_heap[0]
            if view.entry.alive:
                return view.entry
            heapq.heappop(self._min_heap)
        return None

    def __repr__(self) -> str:
        bound = self.capacity if self.capacity is not None else "∞"
        return f"BoundedPriorityQueue(size={self._size}, capacity={bound})"
