"""Dataset file I/O: CSV and JSON-lines readers/writers.

Downstream users bring their own data.  These helpers load profile
collections from the two formats ER data usually ships in:

* **CSV** — one row per profile, one column per attribute (fixed schema;
  empty cells become missing attributes, which keeps the schema-agnostic
  pipeline honest);
* **JSON lines** — one JSON object per profile (naturally heterogeneous:
  every record may carry different keys).

Ground truth is a two-column CSV of matching profile-id pairs.  Writers
round-trip both formats for dataset snapshots.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Iterable

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile

__all__ = [
    "dataset_from_csv",
    "dataset_from_jsonl",
    "dataset_to_jsonl",
    "ground_truth_from_csv",
    "ground_truth_to_csv",
]

_RESERVED = ("pid", "source")


def _open(path_or_file: str | IO[str], mode: str):
    if isinstance(path_or_file, str):
        return open(path_or_file, mode, newline=""), True
    return path_or_file, False


def dataset_from_csv(
    path_or_file: str | IO[str],
    name: str = "csv-dataset",
    kind: ERKind = ERKind.DIRTY,
    ground_truth: GroundTruth | None = None,
    id_column: str = "pid",
    source_column: str = "source",
) -> Dataset:
    """Load a dataset from CSV.

    The ``id_column`` must hold unique non-negative integers; the optional
    ``source_column`` holds 0/1 for Clean-Clean data (defaults to 0 when
    absent).  Every other column is an attribute; empty cells are dropped.
    """
    handle, owns = _open(path_or_file, "r")
    try:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or id_column not in reader.fieldnames:
            raise ValueError(f"CSV must have an {id_column!r} column")
        profiles = []
        for row in reader:
            pid = int(row[id_column])
            source = int(row.get(source_column) or 0)
            attributes = {
                column: value
                for column, value in row.items()
                if column not in (id_column, source_column) and value
            }
            profiles.append(EntityProfile(pid, attributes, source=source))
    finally:
        if owns:
            handle.close()
    return Dataset(name, profiles, ground_truth or GroundTruth(), kind)


def dataset_from_jsonl(
    path_or_file: str | IO[str],
    name: str = "jsonl-dataset",
    kind: ERKind = ERKind.DIRTY,
    ground_truth: GroundTruth | None = None,
) -> Dataset:
    """Load a dataset from JSON lines.

    Each line is an object; the reserved keys ``pid`` (required int) and
    ``source`` (optional int) are metadata, everything else an attribute.
    Non-string attribute values are stringified; nulls are dropped.
    """
    handle, owns = _open(path_or_file, "r")
    try:
        profiles = []
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "pid" not in record:
                raise ValueError(f"line {line_number}: missing 'pid'")
            attributes = {
                key: str(value)
                for key, value in record.items()
                if key not in _RESERVED and value is not None
            }
            profiles.append(
                EntityProfile(int(record["pid"]), attributes, source=int(record.get("source", 0)))
            )
    finally:
        if owns:
            handle.close()
    return Dataset(name, profiles, ground_truth or GroundTruth(), kind)


def dataset_to_jsonl(dataset: Dataset, path_or_file: str | IO[str]) -> None:
    """Write a dataset's profiles as JSON lines (round-trips with the reader)."""
    handle, owns = _open(path_or_file, "w")
    try:
        for profile in dataset:
            record: dict[str, object] = {"pid": profile.pid, "source": profile.source}
            for attribute in profile.attributes:
                record[attribute.name] = attribute.value
            handle.write(json.dumps(record) + "\n")
    finally:
        if owns:
            handle.close()


def ground_truth_from_csv(path_or_file: str | IO[str]) -> GroundTruth:
    """Load matching pid pairs from a two-column CSV (with/without header)."""
    handle, owns = _open(path_or_file, "r")
    try:
        pairs: list[tuple[int, int]] = []
        for row in csv.reader(handle):
            if not row or len(row) < 2:
                continue
            try:
                pairs.append((int(row[0]), int(row[1])))
            except ValueError:
                continue  # header or malformed row
    finally:
        if owns:
            handle.close()
    return GroundTruth(pairs)


def ground_truth_to_csv(truth: GroundTruth | Iterable[tuple[int, int]],
                        path_or_file: str | IO[str]) -> None:
    """Write matching pairs as a two-column CSV with header."""
    handle, owns = _open(path_or_file, "w")
    try:
        writer = csv.writer(handle)
        writer.writerow(["pid_left", "pid_right"])
        for left, right in sorted(truth):
            writer.writerow([left, right])
    finally:
        if owns:
            handle.close()
