"""Shared machinery for the synthetic dataset generators.

The paper's experiments use four public datasets (dblp-acm, movies, a
Febrl-generated 2M census collection, dbpedia infoboxes) that are not
available in this offline environment.  The generators in this package
produce deterministic synthetic analogues that preserve the properties the
PIER algorithms are sensitive to:

* duplicate pairs whose profiles share many tokens but differ in spelling,
  formatting, and schema (schema-agnostic matching must still find them);
* *non*-matching profile pairs with long, vocabulary-heavy values that share
  many tokens — the pairs that mislead the CBS weighting scheme and make
  the expensive ED matcher collapse for I-PCS/I-PBS;
* skewed block-size distributions (a few huge stopword-like blocks, many
  small discriminative ones);
* short, relational census values whose smallest blocks are highly
  informative (the regime where I-PBS shines).
"""

from __future__ import annotations

import random
import string
from typing import Sequence

__all__ = [
    "Corruptor",
    "synthesize_vocabulary",
    "FIRST_NAMES",
    "LAST_NAMES",
    "CITIES",
    "STATES",
    "STREET_SUFFIXES",
    "CS_TITLE_WORDS",
    "VENUES",
    "MOVIE_TITLE_WORDS",
    "GENRES",
]

# ---------------------------------------------------------------------------
# Word pools.  Kept deliberately compact; breadth comes from
# synthesize_vocabulary() which fabricates pronounceable pseudo-words.
# ---------------------------------------------------------------------------

FIRST_NAMES: tuple[str, ...] = (
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
    "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "amy", "nicholas", "angela", "eric", "shirley", "jonathan", "anna",
    "stephen", "brenda", "larry", "pamela", "justin", "emma", "scott",
    "nicole", "brandon", "helen",
)

LAST_NAMES: tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson",
)

CITIES: tuple[str, ...] = (
    "springfield", "riverton", "fairview", "kingston", "ashford", "brookside",
    "maplewood", "cedarville", "lakewood", "hillcrest", "oakdale", "elmwood",
    "greenfield", "clayton", "milton", "dayton", "bristol", "georgetown",
    "salem", "clinton", "madison", "franklin", "chester", "marion", "auburn",
    "dover", "hudson", "jackson", "lebanon", "monroe", "newport", "oxford",
    "princeton", "quincy", "richmond", "sheridan", "troy", "union", "vernon",
    "winchester", "yorktown", "zionsville", "arlington", "burlington",
    "carlisle", "dunmore", "easton", "fulton", "glendale", "hamilton",
)

STATES: tuple[str, ...] = (
    "nsw", "vic", "qld", "wa", "sa", "tas", "act", "nt",
)

STREET_SUFFIXES: tuple[str, ...] = (
    "street", "road", "avenue", "lane", "drive", "court", "place", "crescent",
    "parade", "terrace", "way", "close", "grove", "boulevard",
)

CS_TITLE_WORDS: tuple[str, ...] = (
    "efficient", "scalable", "incremental", "progressive", "adaptive",
    "distributed", "parallel", "streaming", "approximate", "optimal",
    "learning", "mining", "indexing", "querying", "matching", "ranking",
    "clustering", "sampling", "caching", "scheduling", "blocking",
    "resolution", "integration", "cleaning", "linkage", "deduplication",
    "entity", "schema", "graph", "database", "stream", "query", "index",
    "join", "aggregation", "transaction", "workload", "benchmark", "storage",
    "memory", "cache", "partition", "replication", "consistency", "recovery",
    "optimization", "estimation", "cardinality", "similarity", "distance",
    "embedding", "neural", "probabilistic", "statistical", "temporal",
    "spatial", "relational", "semistructured", "heterogeneous", "dynamic",
    "online", "offline", "hybrid", "federated", "crowdsourced", "interactive",
    "algorithms", "techniques", "framework", "system", "approach", "method",
    "analysis", "evaluation", "survey", "model", "architecture", "engine",
    "processing", "management", "discovery", "detection", "prediction",
    "classification", "generation", "summarization", "exploration",
)

VENUES: tuple[str, ...] = (
    "sigmod", "vldb", "icde", "edbt", "cikm", "kdd", "www", "icdm", "pods",
    "tkde", "pvldb", "sigir", "aaai", "ijcai", "neurips", "icml",
)

MOVIE_TITLE_WORDS: tuple[str, ...] = (
    "dark", "night", "day", "last", "first", "lost", "hidden", "secret",
    "silent", "broken", "golden", "iron", "black", "white", "red", "blue",
    "crimson", "shadow", "light", "fire", "ice", "storm", "river", "mountain",
    "city", "house", "garden", "island", "ocean", "desert", "forest", "moon",
    "star", "sun", "sky", "dream", "memory", "promise", "journey", "return",
    "escape", "revenge", "legacy", "destiny", "kingdom", "empire", "throne",
    "crown", "sword", "arrow", "hunter", "soldier", "king", "queen", "prince",
    "widow", "stranger", "ghost", "angel", "devil", "dragon", "wolf", "raven",
    "falcon", "tiger", "serpent", "phoenix", "guardian", "warrior", "legend",
    "chronicles", "tales", "story", "song", "dance", "games", "letters",
    "diaries", "awakening", "rising", "falling", "beginning", "ending",
)

GENRES: tuple[str, ...] = (
    "drama", "comedy", "thriller", "horror", "romance", "action", "adventure",
    "scifi", "fantasy", "documentary", "animation", "crime", "mystery",
    "western", "musical", "biography", "war", "history", "sport", "family",
)

_SYLLABLE_ONSETS = ("b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr",
                    "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "qu", "r",
                    "s", "st", "sh", "t", "tr", "v", "w", "z")
_SYLLABLE_NUCLEI = ("a", "e", "i", "o", "u", "ai", "ea", "ou", "io")
_SYLLABLE_CODAS = ("", "n", "r", "s", "l", "t", "m", "k", "nd", "rt", "x")


def synthesize_vocabulary(rng: random.Random, count: int, syllables: int = 3) -> list[str]:
    """Fabricate ``count`` distinct pronounceable pseudo-words.

    Used to widen vocabularies (entity names, rare attribute values) beyond
    the embedded pools so that block-size distributions resemble real
    heterogeneous data.
    """
    words: set[str] = set()
    while len(words) < count:
        parts = []
        for _ in range(syllables):
            parts.append(rng.choice(_SYLLABLE_ONSETS))
            parts.append(rng.choice(_SYLLABLE_NUCLEI))
            parts.append(rng.choice(_SYLLABLE_CODAS))
        words.add("".join(parts))
    ordered = sorted(words)
    rng.shuffle(ordered)
    return ordered


class Corruptor:
    """Deterministic string corruption, Febrl-style.

    All probabilities are per-operation; the caller owns the ``Random``
    instance, so corruption sequences are reproducible given a seed.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    # -- character-level -------------------------------------------------
    def typo(self, value: str) -> str:
        """Apply one random character edit (swap/delete/insert/substitute)."""
        if len(value) < 2:
            return value
        rng = self._rng
        operation = rng.randrange(4)
        index = rng.randrange(len(value) - 1)
        if operation == 0:  # swap adjacent
            return value[:index] + value[index + 1] + value[index] + value[index + 2 :]
        if operation == 1:  # delete
            return value[:index] + value[index + 1 :]
        letter = rng.choice(string.ascii_lowercase)
        if operation == 2:  # insert
            return value[:index] + letter + value[index:]
        return value[:index] + letter + value[index + 1 :]  # substitute

    def typos(self, value: str, count: int) -> str:
        for _ in range(count):
            value = self.typo(value)
        return value

    # -- token-level -----------------------------------------------------
    def drop_token(self, value: str) -> str:
        """Remove one whitespace-separated token (if more than one)."""
        tokens = value.split()
        if len(tokens) < 2:
            return value
        tokens.pop(self._rng.randrange(len(tokens)))
        return " ".join(tokens)

    def abbreviate_token(self, value: str) -> str:
        """Abbreviate one token to its initial (e.g. first names)."""
        tokens = value.split()
        if not tokens:
            return value
        index = self._rng.randrange(len(tokens))
        if len(tokens[index]) > 1:
            tokens[index] = tokens[index][0]
        return " ".join(tokens)

    def shuffle_tokens(self, value: str) -> str:
        tokens = value.split()
        if len(tokens) < 2:
            return value
        self._rng.shuffle(tokens)
        return " ".join(tokens)

    # -- value-level -----------------------------------------------------
    def corrupt(
        self,
        value: str,
        typo_probability: float = 0.3,
        drop_probability: float = 0.15,
        abbreviate_probability: float = 0.1,
        shuffle_probability: float = 0.05,
    ) -> str:
        """Apply a randomized mix of corruptions to a value."""
        rng = self._rng
        if rng.random() < drop_probability:
            value = self.drop_token(value)
        if rng.random() < abbreviate_probability:
            value = self.abbreviate_token(value)
        if rng.random() < shuffle_probability:
            value = self.shuffle_tokens(value)
        if rng.random() < typo_probability:
            value = self.typo(value)
        return value

    def maybe(self, probability: float) -> bool:
        return self._rng.random() < probability

    def pick(self, pool: Sequence[str]) -> str:
        return self._rng.choice(pool)
