"""Synthetic analogue of the dblp-acm benchmark (D_da).

Clean-Clean ER between two bibliographic collections.  Source 0 (DBLP-like)
and source 1 (ACM-like) describe overlapping sets of papers with different
schemas and formatting conventions.  Like the real D_da (2.62k / 2.29k
profiles, 2.22k matches), almost every source-1 profile has a source-0
counterpart.
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile
from repro.datasets.generators import (
    CS_TITLE_WORDS,
    Corruptor,
    FIRST_NAMES,
    LAST_NAMES,
    VENUES,
)

__all__ = ["generate_dblp_acm"]


def _paper_title(rng: random.Random) -> str:
    length = rng.randint(4, 9)
    return " ".join(rng.choice(CS_TITLE_WORDS) for _ in range(length))


def _author(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def generate_dblp_acm(
    size_dblp: int = 620,
    size_acm: int = 540,
    match_fraction: float = 0.97,
    seed: int = 7,
) -> Dataset:
    """Generate a dblp-acm-like Clean-Clean dataset.

    ``match_fraction`` of the ACM-side profiles duplicate a DBLP-side paper
    (with corruption); the rest are ACM-only papers.
    """
    if size_acm > size_dblp:
        raise ValueError("the ACM side must not exceed the DBLP side")
    rng = random.Random(seed)
    corruptor = Corruptor(rng)

    papers = []
    for _ in range(size_dblp):
        papers.append(
            {
                "title": _paper_title(rng),
                "authors": ", ".join(_author(rng) for _ in range(rng.randint(1, 3))),
                "venue": rng.choice(VENUES),
                "year": str(rng.randint(1995, 2015)),
            }
        )

    profiles: list[EntityProfile] = []
    matches: list[tuple[int, int]] = []
    next_pid = 0

    # Source 0: DBLP-style records.
    dblp_pids = []
    for paper in papers:
        profiles.append(
            EntityProfile(
                next_pid,
                {
                    "title": paper["title"],
                    "authors": paper["authors"],
                    "venue": paper["venue"],
                    "year": paper["year"],
                },
                source=0,
            )
        )
        dblp_pids.append(next_pid)
        next_pid += 1

    # Source 1: ACM-style records; a corrupted view over a subset of papers.
    n_duplicates = min(size_acm, int(round(size_acm * match_fraction)))
    duplicate_indices = rng.sample(range(size_dblp), n_duplicates)
    for index in duplicate_indices:
        paper = papers[index]
        title = corruptor.corrupt(paper["title"], typo_probability=0.4, drop_probability=0.1)
        authors = corruptor.corrupt(
            paper["authors"], typo_probability=0.25, abbreviate_probability=0.35
        )
        profiles.append(
            EntityProfile(
                next_pid,
                {
                    "paper name": title,
                    "author list": authors,
                    "published in": paper["venue"].upper(),
                    "publication year": paper["year"],
                },
                source=1,
            )
        )
        matches.append((dblp_pids[index], next_pid))
        next_pid += 1

    # ACM-only papers (non-matching remainder).
    for _ in range(size_acm - n_duplicates):
        profiles.append(
            EntityProfile(
                next_pid,
                {
                    "paper name": _paper_title(rng),
                    "author list": ", ".join(_author(rng) for _ in range(rng.randint(1, 3))),
                    "published in": rng.choice(VENUES).upper(),
                    "publication year": str(rng.randint(1995, 2015)),
                },
                source=1,
            )
        )
        next_pid += 1

    return Dataset("dblp_acm", profiles, GroundTruth(matches), ERKind.CLEAN_CLEAN)
