"""Dataset registry: load any of the paper's four benchmark analogues by name.

Each entry records the size of the *real* dataset used in the paper
(Table 1) for documentation, and generates a scaled synthetic analogue.
``scale=1.0`` yields the default experiment size (laptop-friendly); the
``paper_profiles`` metadata records what the original had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.dataset import Dataset
from repro.datasets.bibliographic import generate_dblp_acm
from repro.datasets.census import generate_census
from repro.datasets.dbpedia import generate_dbpedia
from repro.datasets.movies import generate_movies

__all__ = ["DatasetSpec", "DATASET_SPECS", "load_dataset", "available_datasets"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Registry entry for one benchmark dataset."""

    name: str
    paper_profiles: str
    paper_matches: str
    kind: str
    generate: Callable[[float, int], Dataset]


def _dblp_acm(scale: float, seed: int) -> Dataset:
    return generate_dblp_acm(
        size_dblp=max(4, int(620 * scale)),
        size_acm=max(3, int(540 * scale)),
        seed=seed,
    )


def _movies(scale: float, seed: int) -> Dataset:
    return generate_movies(
        size_source0=max(4, int(1500 * scale)),
        size_source1=max(3, int(1250 * scale)),
        seed=seed,
    )


def _census(scale: float, seed: int) -> Dataset:
    return generate_census(n_profiles=max(4, int(3000 * scale)), seed=seed)


def _dbpedia(scale: float, seed: int) -> Dataset:
    size_source0 = max(6, int(1400 * scale))
    size_source1 = max(6, int(2400 * scale))
    return generate_dbpedia(
        size_source0=size_source0,
        size_source1=size_source1,
        n_matches=max(2, min(int(1000 * scale), size_source0, size_source1)),
        seed=seed,
    )


DATASET_SPECS: dict[str, DatasetSpec] = {
    "dblp_acm": DatasetSpec(
        name="dblp_acm",
        paper_profiles="2.62k - 2.29k",
        paper_matches="2.22k",
        kind="clean-clean",
        generate=_dblp_acm,
    ),
    "movies": DatasetSpec(
        name="movies",
        paper_profiles="27.6k - 23.1k",
        paper_matches="22.8k",
        kind="clean-clean",
        generate=_movies,
    ),
    "census_2m": DatasetSpec(
        name="census_2m",
        paper_profiles="2M",
        paper_matches="1.7M",
        kind="dirty",
        generate=_census,
    ),
    "dbpedia": DatasetSpec(
        name="dbpedia",
        paper_profiles="1.19M - 2.16M",
        paper_matches="892k",
        kind="clean-clean",
        generate=_dbpedia,
    ),
}


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Generate the synthetic analogue of a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale:
        Multiplier on the default experiment size (not the paper size).
    seed:
        Overrides the generator's default seed for alternative instances.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {available_datasets()}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    default_seeds = {"dblp_acm": 7, "movies": 11, "census_2m": 13, "dbpedia": 17}
    return spec.generate(scale, seed if seed is not None else default_seeds[name])


def available_datasets() -> list[str]:
    return sorted(DATASET_SPECS)
