"""Synthetic analogue of the movies benchmark (D_movies).

Clean-Clean ER between two heterogeneous movie collections (the real one
links IMDB to DBpedia movies: 27.6k / 23.1k profiles, 22.8k matches).
Source 0 resembles a curated catalogue; source 1 resembles scraped data
with a different schema, missing attributes, and free-text plot snippets.
The plot snippets give profiles long, token-rich values, which creates the
CBS-over-weights-long-profiles effect on a moderate scale.
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile
from repro.datasets.generators import (
    Corruptor,
    FIRST_NAMES,
    GENRES,
    LAST_NAMES,
    MOVIE_TITLE_WORDS,
    synthesize_vocabulary,
)

__all__ = ["generate_movies"]


def _movie_title(rng: random.Random) -> str:
    length = rng.randint(1, 4)
    return " ".join(rng.choice(MOVIE_TITLE_WORDS) for _ in range(length))


def _person(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def _plot(rng: random.Random, vocabulary: list[str], length: int) -> str:
    return " ".join(rng.choice(vocabulary) for _ in range(length))


def generate_movies(
    size_source0: int = 1500,
    size_source1: int = 1250,
    match_fraction: float = 0.97,
    seed: int = 11,
) -> Dataset:
    """Generate a movies-like Clean-Clean dataset."""
    if size_source1 > size_source0:
        raise ValueError("source 1 must not exceed source 0")
    rng = random.Random(seed)
    corruptor = Corruptor(rng)
    # Plot vocabulary mixes common words (big blocks) and rare pseudo-words.
    plot_vocabulary = list(MOVIE_TITLE_WORDS) + synthesize_vocabulary(rng, 600)

    movies = []
    for _ in range(size_source0):
        movies.append(
            {
                "title": _movie_title(rng),
                "year": str(rng.randint(1950, 2020)),
                "director": _person(rng),
                "actors": ", ".join(_person(rng) for _ in range(rng.randint(2, 4))),
                "genre": rng.choice(GENRES),
            }
        )

    profiles: list[EntityProfile] = []
    matches: list[tuple[int, int]] = []
    next_pid = 0

    source0_pids = []
    for movie in movies:
        profiles.append(
            EntityProfile(
                next_pid,
                {
                    "title": movie["title"],
                    "year": movie["year"],
                    "director": movie["director"],
                    "starring": movie["actors"],
                    "genre": movie["genre"],
                },
                source=0,
            )
        )
        source0_pids.append(next_pid)
        next_pid += 1

    n_duplicates = min(size_source1, int(round(size_source1 * match_fraction)))
    duplicate_indices = rng.sample(range(size_source0), n_duplicates)
    for index in duplicate_indices:
        movie = movies[index]
        attributes = {
            "name": corruptor.corrupt(movie["title"], typo_probability=0.35),
            "release": movie["year"],
        }
        # Heterogeneity: cast/crew attributes present only sometimes, under
        # different names; a free-text snippet mentions some of the people.
        if corruptor.maybe(0.7):
            attributes["directed by"] = corruptor.corrupt(
                movie["director"], abbreviate_probability=0.3
            )
        if corruptor.maybe(0.6):
            attributes["cast"] = corruptor.corrupt(movie["actors"], drop_probability=0.4)
        if corruptor.maybe(0.5):
            attributes["category"] = movie["genre"]
        if corruptor.maybe(0.55):
            snippet = _plot(rng, plot_vocabulary, rng.randint(8, 25))
            attributes["abstract"] = f"{movie['title']} {snippet}"
        profiles.append(EntityProfile(next_pid, attributes, source=1))
        matches.append((source0_pids[index], next_pid))
        next_pid += 1

    # Source-1-only movies, some with long plots sharing common vocabulary.
    for _ in range(size_source1 - n_duplicates):
        attributes = {
            "name": _movie_title(rng),
            "release": str(rng.randint(1950, 2020)),
            "abstract": _plot(rng, plot_vocabulary, rng.randint(15, 40)),
        }
        profiles.append(EntityProfile(next_pid, attributes, source=1))
        next_pid += 1

    return Dataset("movies", profiles, GroundTruth(matches), ERKind.CLEAN_CLEAN)
