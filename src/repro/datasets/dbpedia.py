"""Synthetic analogue of the dbpedia infobox benchmark (D_dbpedia).

Clean-Clean ER between two snapshots of heterogeneous infobox data (the real
one links two DBpedia versions: 1.19M / 2.16M profiles, 892k matches — note
that, unlike the other Clean-Clean sets, *far from all* profiles match).

Three properties of this data drive the paper's findings and are reproduced
here:

* extreme schema heterogeneity — profiles draw attribute names from a large
  pool, and matching profiles may use disjoint attribute names;
* heavy-tailed value lengths — a sizable fraction of profiles carry long
  abstracts built from a *shared* vocabulary, so long non-matching profiles
  share many tokens.  CBS ranks such pairs highly, and with the expensive ED
  matcher those wasted comparisons are exactly what degrades I-PCS in
  Figures 4, 5 and 7;
* rare-token collisions — pairs of long, non-matching profiles share a few
  *rare* tokens (in the real data: overlapping template values, shared
  rare names, dates), producing tiny blocks that are **not** reliable
  evidence.  These "decoy" blocks are what makes smallest-block-first
  scheduling (PBS / I-PBS) pay dearly under ED, while the entity-centric
  I-PES spreads its budget across entities and stays robust.
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile
from repro.datasets.generators import Corruptor, synthesize_vocabulary

__all__ = ["generate_dbpedia"]

_ATTRIBUTE_POOL = (
    "label", "name", "title", "type", "category", "field", "region", "area",
    "population", "elevation", "established", "founder", "leader", "genre",
    "occupation", "birthplace", "country", "language", "capital", "currency",
    "abstract", "comment", "description", "notes",
)


def generate_dbpedia(
    size_source0: int = 1400,
    size_source1: int = 2400,
    n_matches: int = 1000,
    long_profile_fraction: float = 0.5,
    decoy_fraction: float = 0.9,
    seed: int = 17,
) -> Dataset:
    """Generate a dbpedia-like heterogeneous Clean-Clean dataset.

    ``n_matches`` source-0 profiles have a (corrupted, re-schematized)
    counterpart in source 1; the remaining profiles of both sources are
    distinct entities.  ``long_profile_fraction`` of all profiles carry a
    long abstract sampled from a shared vocabulary.  ``decoy_fraction``
    controls how many *long non-matching* cross-source profile pairs share
    rare decoy tokens (tiny misleading blocks).
    """
    if n_matches > min(size_source0, size_source1):
        raise ValueError("n_matches cannot exceed either source size")
    rng = random.Random(seed)
    corruptor = Corruptor(rng)

    # Entity names are rare tokens (small, informative blocks); abstracts use
    # a modest shared vocabulary (large, noisy blocks).
    entity_names = synthesize_vocabulary(rng, size_source0 + size_source1 + 64)
    abstract_vocabulary = synthesize_vocabulary(rng, 900, syllables=2)
    decoy_tokens = synthesize_vocabulary(rng, 4096, syllables=4)
    next_decoy = 0

    def make_entity(entity_index: int) -> dict[str, str]:
        name = (
            f"{entity_names[entity_index]} "
            f"{entity_names[(entity_index * 7 + 3) % len(entity_names)]}"
        )
        attributes = {"label": name}
        for _ in range(rng.randint(2, 6)):
            attribute = rng.choice(_ATTRIBUTE_POOL)
            if attribute in attributes:
                continue
            if attribute in ("abstract", "comment", "description"):
                continue  # long values are added explicitly below
            attributes[attribute] = " ".join(
                rng.choice(abstract_vocabulary) for _ in range(rng.randint(1, 3))
            )
        if rng.random() < long_profile_fraction:
            attributes["abstract"] = " ".join(
                rng.choice(abstract_vocabulary) for _ in range(rng.randint(30, 90))
            )
        return attributes

    def reschematize(attributes: dict[str, str]) -> dict[str, str]:
        """A corrupted second-snapshot view with partially renamed schema."""
        renamed: dict[str, str] = {}
        for name, value in attributes.items():
            if corruptor.maybe(0.15) and name != "label":
                continue  # attribute missing in the other snapshot
            new_name = name
            if corruptor.maybe(0.4):
                new_name = rng.choice(_ATTRIBUTE_POOL)
                if new_name in renamed:
                    new_name = name
            if name == "abstract":
                value = corruptor.drop_token(corruptor.drop_token(value))
            else:
                value = corruptor.corrupt(value, typo_probability=0.3)
            renamed[new_name] = value
        if "label" not in renamed and "name" not in renamed:
            renamed["name"] = attributes["label"]
        return renamed

    entity_index = 0
    source0_entities: list[dict[str, str]] = []
    for _ in range(size_source0):
        source0_entities.append(make_entity(entity_index))
        entity_index += 1

    matched_indices = set(rng.sample(range(size_source0), n_matches))
    source1_entities: list[tuple[dict[str, str], int | None]] = []
    for index in sorted(matched_indices):
        source1_entities.append((reschematize(source0_entities[index]), index))
    for _ in range(size_source1 - n_matches):
        source1_entities.append((make_entity(entity_index), None))
        entity_index += 1
    rng.shuffle(source1_entities)

    # Decoy injection: long source-0 profiles and long *non-matching*
    # source-1 profiles get shared rare tokens, creating tiny (size-2)
    # cross-source blocks that look like strong evidence but are not —
    # mimicking the template-value collisions of the real infobox
    # snapshots.  Each long profile participates in up to two decoy pairs
    # (under different tokens), so the smallest-block tier is dominated by
    # expensive wasted comparisons.
    long0 = [e for i, e in enumerate(source0_entities) if "abstract" in e]
    long1 = [e for e, match in source1_entities if match is None and "abstract" in e]
    rng.shuffle(long0)
    rng.shuffle(long1)
    if long0 and long1:
        n_decoys = int(min(len(long0), len(long1)) * decoy_fraction * 2)
        for pair_index in range(n_decoys):
            shared = " ".join(
                decoy_tokens[(next_decoy + j) % len(decoy_tokens)] for j in range(3)
            )
            next_decoy += 3
            left = long0[pair_index % len(long0)]
            right = long1[(pair_index * 7 + 3) % len(long1)]
            slot = "notes" if "notes" not in left else "comment"
            left[slot] = f"{left.get(slot, '')} {shared}".strip()
            slot = "notes" if "notes" not in right else "comment"
            right[slot] = f"{right.get(slot, '')} {shared}".strip()

    profiles: list[EntityProfile] = []
    matches: list[tuple[int, int]] = []
    next_pid = 0
    pid_of_source0: dict[int, int] = {}
    for index, entity in enumerate(source0_entities):
        profiles.append(EntityProfile(next_pid, entity, source=0))
        pid_of_source0[index] = next_pid
        next_pid += 1
    for entity, match_index in source1_entities:
        profiles.append(EntityProfile(next_pid, entity, source=1))
        if match_index is not None:
            matches.append((pid_of_source0[match_index], next_pid))
        next_pid += 1

    return Dataset("dbpedia", profiles, GroundTruth(matches), ERKind.CLEAN_CLEAN)
