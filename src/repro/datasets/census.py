"""Synthetic analogue of the Febrl-generated 2M census dataset (D_2M).

Dirty ER over one collection of person records.  Febrl generates a set of
*original* records and derives corrupted *duplicates* from them; a cluster
of ``k`` records referring to the same person yields ``k·(k-1)/2`` matching
pairs, which is how the real D_2M reaches 1.7M matches over 2M profiles.

Census values are short and relational (names, street numbers, postcodes),
so the smallest blocks are highly informative — the regime in which the
paper observes I-PBS outperforming I-PES.
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile
from repro.datasets.generators import (
    CITIES,
    Corruptor,
    FIRST_NAMES,
    LAST_NAMES,
    STATES,
    STREET_SUFFIXES,
    synthesize_vocabulary,
)

__all__ = ["generate_census"]

# Cluster-size distribution: most people appear 1-2 times; a tail up to 6
# duplicates pushes the pair count towards ~0.85 matches per profile, like
# the real dataset.
_CLUSTER_SIZES = (1, 2, 2, 3, 3, 3, 4, 4, 5, 6)


def _person_record(rng: random.Random, street_names: list[str]) -> dict[str, str]:
    return {
        "given name": rng.choice(FIRST_NAMES),
        "surname": rng.choice(LAST_NAMES),
        "street number": str(rng.randint(1, 999)),
        "address": f"{rng.choice(street_names)} {rng.choice(STREET_SUFFIXES)}",
        "suburb": rng.choice(CITIES),
        "postcode": str(rng.randint(2000, 7999)),
        "state": rng.choice(STATES),
        "date of birth": (
            f"{rng.randint(1930, 2005):04d}{rng.randint(1, 12):02d}{rng.randint(1, 28):02d}"
        ),
        "soc sec id": str(rng.randint(1_000_000, 9_999_999)),
    }


def _corrupt_record(record: dict[str, str], corruptor: Corruptor) -> dict[str, str]:
    corrupted: dict[str, str] = {}
    for name, value in record.items():
        if corruptor.maybe(0.12):
            continue  # missing value
        if name in ("given name", "surname", "address", "suburb"):
            value = corruptor.corrupt(value, typo_probability=0.45, abbreviate_probability=0.1)
        elif corruptor.maybe(0.2):
            value = corruptor.typo(value)
        corrupted[name] = value
    return corrupted


def generate_census(n_profiles: int = 3000, seed: int = 13) -> Dataset:
    """Generate a Febrl-style Dirty ER census dataset of ``n_profiles``."""
    if n_profiles < 2:
        raise ValueError("n_profiles must be >= 2")
    rng = random.Random(seed)
    corruptor = Corruptor(rng)
    street_names = synthesize_vocabulary(rng, 400, syllables=2)

    profiles: list[EntityProfile] = []
    matches: list[tuple[int, int]] = []
    next_pid = 0

    while len(profiles) < n_profiles:
        cluster_size = min(rng.choice(_CLUSTER_SIZES), n_profiles - len(profiles))
        original = _person_record(rng, street_names)
        cluster_pids: list[int] = []
        for copy_index in range(cluster_size):
            if copy_index == 0:
                record = dict(original)
            else:
                record = _corrupt_record(original, corruptor)
            profiles.append(EntityProfile(next_pid, record, source=0))
            cluster_pids.append(next_pid)
            next_pid += 1
        for i, pid_x in enumerate(cluster_pids):
            for pid_y in cluster_pids[i + 1 :]:
                matches.append((pid_x, pid_y))

    # Arrival order must not be clustered, otherwise every duplicate would sit
    # in the same increment and incrementality would be trivial.
    rng.shuffle(profiles)
    return Dataset("census_2m", profiles, GroundTruth(matches), ERKind.DIRTY)
