"""Deterministic synthetic analogues of the paper's benchmark datasets."""

from repro.datasets.bibliographic import generate_dblp_acm
from repro.datasets.census import generate_census
from repro.datasets.dbpedia import generate_dbpedia
from repro.datasets.generators import Corruptor, synthesize_vocabulary
from repro.datasets.io import (
    dataset_from_csv,
    dataset_from_jsonl,
    dataset_to_jsonl,
    ground_truth_from_csv,
    ground_truth_to_csv,
)
from repro.datasets.movies import generate_movies
from repro.datasets.registry import (
    DATASET_SPECS,
    DatasetSpec,
    available_datasets,
    load_dataset,
)

__all__ = [
    "Corruptor",
    "DATASET_SPECS",
    "DatasetSpec",
    "available_datasets",
    "dataset_from_csv",
    "dataset_from_jsonl",
    "dataset_to_jsonl",
    "generate_census",
    "generate_dblp_acm",
    "generate_dbpedia",
    "generate_movies",
    "ground_truth_from_csv",
    "ground_truth_to_csv",
    "load_dataset",
    "synthesize_vocabulary",
]
