"""Seeded fault injection: stream perturbation and a faulty matcher wrapper.

Two fault surfaces, both driven by explicit seeds so chaos runs replay
bit-identically:

* :func:`apply_faults` perturbs a :class:`~repro.core.increments.StreamPlan`
  according to a :class:`FaultSpec` — increments are dropped, redelivered
  (duplicated), swapped with their neighbour (reordered), coalesced into
  bursts, emptied, and their profiles corrupted — returning a
  :class:`FaultReport` with the perturbed plan and what was done to it.
* :class:`FaultyMatcher` wraps any :class:`~repro.matching.matcher.Matcher`
  and, on a seeded per-evaluation schedule, raises
  :class:`TransientMatcherError` (charging the wasted virtual time of the
  failed attempt) or stretches a successful evaluation's virtual cost by a
  latency-spike factor.

Redelivered increments keep their original ``Increment.index``: the engines
treat the increment id as an exactly-once sequence number and drop
redeliveries, which is why a perturbed plan is constructed with
``allow_redelivery=True``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.increments import Increment, StreamPlan
from repro.core.profile import EntityProfile
from repro.matching.matcher import Matcher, MatchResult

__all__ = [
    "TransientMatcherError",
    "FaultSpec",
    "FaultReport",
    "apply_faults",
    "FaultyMatcher",
    "WorkerFaultSpec",
]


class TransientMatcherError(RuntimeError):
    """A recoverable matcher failure (timeout, throttling, flaky backend).

    ``cost`` is the virtual time wasted by the failed attempt; the engine
    charges it to the clock before deciding whether to retry.
    """

    def __init__(self, cost: float = 0.0) -> None:
        super().__init__(f"transient matcher failure (wasted {cost:.6g} virtual s)")
        self.cost = cost


# ----------------------------------------------------------------------
# Stream faults
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Seeded perturbation parameters for one stream plan.

    All rates are probabilities in ``[0, 1]`` drawn independently per
    increment (``corrupt_rate``: per profile) from ``random.Random(seed)``.
    """

    seed: int = 0
    drop_rate: float = 0.0          # increment never delivered
    duplicate_rate: float = 0.0     # increment redelivered later (same id)
    duplicate_delay: float = 1.0    # mean redelivery lag [virtual s]
    reorder_rate: float = 0.0       # adjacent increments swap arrival slots
    coalesce_rate: float = 0.0      # a burst starts here: next increments pile up
    coalesce_span: int = 3          # increments merged into one burst
    corrupt_rate: float = 0.0       # profile scrambled or blanked (pid kept)
    empty_rate: float = 0.0         # increment delivered with no profiles

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate",
                     "coalesce_rate", "corrupt_rate", "empty_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.duplicate_delay < 0:
            raise ValueError("duplicate_delay must be non-negative")
        if self.coalesce_span < 2:
            raise ValueError("coalesce_span must be >= 2")

    @classmethod
    def chaos(cls, seed: int = 0) -> "FaultSpec":
        """The default chaos profile: a bit of everything."""
        return cls(
            seed=seed,
            drop_rate=0.08,
            duplicate_rate=0.12,
            reorder_rate=0.15,
            coalesce_rate=0.1,
            corrupt_rate=0.1,
            empty_rate=0.05,
        )

    @property
    def is_noop(self) -> bool:
        return not any((self.drop_rate, self.duplicate_rate, self.reorder_rate,
                        self.coalesce_rate, self.corrupt_rate, self.empty_rate))


@dataclass(frozen=True, slots=True)
class FaultReport:
    """The perturbed plan plus an account of every injected fault."""

    plan: StreamPlan
    dropped: tuple[int, ...] = ()
    duplicated: tuple[int, ...] = ()
    emptied: tuple[int, ...] = ()
    reordered_swaps: int = 0
    coalesced_bursts: int = 0
    corrupted_profiles: int = 0

    def summary(self) -> str:
        return (
            f"faults: dropped={len(self.dropped)} duplicated={len(self.duplicated)} "
            f"emptied={len(self.emptied)} swaps={self.reordered_swaps} "
            f"bursts={self.coalesced_bursts} corrupted_profiles={self.corrupted_profiles}"
        )


def _corrupt_profile(profile: EntityProfile, rng: random.Random) -> EntityProfile:
    """A corrupted copy of ``profile``: blanked or character-scrambled values."""
    if rng.random() < 0.5 or not profile.attributes:
        return EntityProfile(profile.pid, {}, source=profile.source)
    attributes = []
    for attribute in profile.attributes:
        characters = list(attribute.value)
        rng.shuffle(characters)
        attributes.append((attribute.name, "".join(characters)))
    return EntityProfile(profile.pid, attributes, source=profile.source)


def apply_faults(plan: StreamPlan, spec: FaultSpec) -> FaultReport:
    """Perturb ``plan`` according to ``spec``, deterministically.

    The perturbed plan keeps arrival times non-decreasing: reorders swap the
    *increments* between two adjacent arrival slots (the slot times stay
    put), coalesced bursts move a run of increments to the run's latest
    arrival time, and redeliveries are inserted in timestamp order.
    """
    rng = random.Random(spec.seed)
    dropped: list[int] = []
    duplicated: list[int] = []
    emptied: list[int] = []
    corrupted_profiles = 0

    # Per-increment faults: drop, empty, corrupt, schedule redelivery.
    events: list[tuple[float, int, Increment]] = []   # (time, tiebreak, increment)
    redeliveries: list[tuple[float, int, Increment]] = []
    sequence = 0
    for time, increment in zip(plan.arrival_times, plan.increments):
        if rng.random() < spec.drop_rate:
            dropped.append(increment.index)
            continue
        if rng.random() < spec.empty_rate:
            emptied.append(increment.index)
            increment = Increment(index=increment.index, profiles=())
        elif spec.corrupt_rate > 0.0 and increment.profiles:
            profiles = []
            for profile in increment.profiles:
                if rng.random() < spec.corrupt_rate:
                    profiles.append(_corrupt_profile(profile, rng))
                    corrupted_profiles += 1
                else:
                    profiles.append(profile)
            increment = Increment(index=increment.index, profiles=tuple(profiles))
        if rng.random() < spec.duplicate_rate:
            duplicated.append(increment.index)
            delay = spec.duplicate_delay * (0.5 + rng.random())
            redeliveries.append((time + delay, len(plan) + sequence, increment))
        events.append((time, sequence, increment))
        sequence += 1

    # Reorder: swap the increments of adjacent arrival slots.
    reordered_swaps = 0
    for i in range(len(events) - 1):
        if rng.random() < spec.reorder_rate:
            time_a, seq_a, inc_a = events[i]
            time_b, seq_b, inc_b = events[i + 1]
            events[i] = (time_a, seq_a, inc_b)
            events[i + 1] = (time_b, seq_b, inc_a)
            reordered_swaps += 1

    # Burst-coalesce: a run of increments arrives together at the run's end.
    coalesced_bursts = 0
    i = 0
    while i < len(events):
        if rng.random() < spec.coalesce_rate:
            run = events[i : i + spec.coalesce_span]
            if len(run) > 1:
                burst_time = run[-1][0]
                for offset, (_, seq, increment) in enumerate(run):
                    events[i + offset] = (burst_time, seq, increment)
                coalesced_bursts += 1
            i += spec.coalesce_span
        else:
            i += 1

    events.extend(redeliveries)
    events.sort(key=lambda event: (event[0], event[1]))
    perturbed = StreamPlan(
        increments=tuple(increment for _, _, increment in events),
        arrival_times=tuple(time for time, _, _ in events),
        rate=plan.rate,
        allow_redelivery=True,
    )
    return FaultReport(
        plan=perturbed,
        dropped=tuple(dropped),
        duplicated=tuple(duplicated),
        emptied=tuple(emptied),
        reordered_swaps=reordered_swaps,
        coalesced_bursts=coalesced_bursts,
        corrupted_profiles=corrupted_profiles,
    )


# ----------------------------------------------------------------------
# Worker-process faults
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WorkerFaultSpec:
    """Seeded process-level faults for the matching fleet's workers.

    Two scheduling surfaces, combinable:

    * **Explicit schedules** — ``kill_on`` / ``hang_on`` / ``corrupt_on``
      are ``(slot, request)`` pairs (both 0-based slot, 1-based request
      ordinal): worker slot 2's 3rd scoring request, say.  Explicit
      schedules apply only to a slot's *first incarnation*, so a respawned
      replacement is not condemned to replay its predecessor's death —
      which is what lets chaos tests assert exact eviction/respawn counts.
    * **Seeded rates** — per scoring request, the worker draws once from a
      stream seeded by ``(seed, slot, incarnation)`` and fails with the
      given probabilities.  Deterministic for a fixed scatter sequence.

    Fault kinds (what the master must survive, see
    :mod:`repro.parallel.supervision`):

    * ``kill`` — the worker SIGKILLs itself mid-round (hard process death;
      the master sees EOF/broken pipe).
    * ``hang`` — the worker sleeps ``hang_s`` wall seconds before replying
      (the master's reply deadline must fire; the late reply lands on a
      closed pipe).
    * ``corrupt`` — the worker replies with a truncated payload (the
      master's reply validation must reject and evict).

    The supervision invariant holds under every schedule: faults change
    *where* pairs are scored, never *what* is scored.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_s: float = 30.0
    kill_on: tuple[tuple[int, int], ...] = ()
    hang_on: tuple[tuple[int, int], ...] = ()
    corrupt_on: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.kill_rate + self.hang_rate + self.corrupt_rate > 1.0:
            raise ValueError("fault rates must not sum above 1")
        if self.hang_s < 0:
            raise ValueError("hang_s must be non-negative")

    @classmethod
    def chaos(cls, seed: int = 0) -> "WorkerFaultSpec":
        """The default process-chaos profile: occasional everything."""
        return cls(seed=seed, kill_rate=0.05, hang_rate=0.03, corrupt_rate=0.05, hang_s=1.0)

    @property
    def is_noop(self) -> bool:
        return not any(
            (self.kill_rate, self.hang_rate, self.corrupt_rate,
             self.kill_on, self.hang_on, self.corrupt_on)
        )

    def rng_for(self, slot: int, incarnation: int) -> random.Random:
        """The rate-draw stream of one worker incarnation (worker-side)."""
        return random.Random((self.seed * 1_000_003 + slot) * 1_000_003 + incarnation)

    def action(
        self, slot: int, incarnation: int, ordinal: int, rng: random.Random
    ) -> str | None:
        """The fault (if any) for one scoring request; draws ``rng`` once.

        Called by the worker on every scoring request, in arrival order —
        the single draw per request is what keeps the rate schedule
        deterministic and incarnation-local.
        """
        draw = rng.random()
        if incarnation == 0:
            key = (slot, ordinal)
            if key in self.kill_on:
                return "kill"
            if key in self.hang_on:
                return "hang"
            if key in self.corrupt_on:
                return "corrupt"
        if draw < self.kill_rate:
            return "kill"
        if draw < self.kill_rate + self.hang_rate:
            return "hang"
        if draw < self.kill_rate + self.hang_rate + self.corrupt_rate:
            return "corrupt"
        return None


# ----------------------------------------------------------------------
# Matcher faults
# ----------------------------------------------------------------------
class FaultyMatcher(Matcher):
    """Wraps a matcher with seeded transient failures and latency spikes.

    Each :meth:`evaluate` call draws once from the schedule RNG:

    * with probability ``failure_rate`` the evaluation fails — the wasted
      virtual time (``failure_cost_fraction`` of the comparison's estimated
      cost) travels on the raised :class:`TransientMatcherError`;
    * with probability ``latency_spike_rate`` the evaluation succeeds but
      its virtual cost is multiplied by ``latency_spike_factor``;
    * otherwise the call is transparent.

    Retried evaluations draw again, so a pair can fail several times in a
    row; the schedule is deterministic in the sequence of calls.
    ``reset_stats`` rewinds the schedule to the seed, making one wrapper
    instance reusable across runs; checkpoint/restore captures the live RNG
    state, so a resumed run replays the same fault schedule.
    """

    #: Faults make evaluation impure (raises, cost != estimate), so the
    #: engines must drive this wrapper through the scalar retry path; the
    #: inherited ``evaluate_batch`` then loops ``evaluate`` and preserves
    #: the call-sequenced fault schedule bit-exactly.
    supports_batch = False

    def __init__(
        self,
        inner: Matcher,
        seed: int = 0,
        failure_rate: float = 0.05,
        latency_spike_rate: float = 0.02,
        latency_spike_factor: float = 10.0,
        failure_cost_fraction: float = 0.25,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0 or not 0.0 <= latency_spike_rate <= 1.0:
            raise ValueError("failure_rate and latency_spike_rate must be in [0, 1]")
        if failure_rate + latency_spike_rate > 1.0:
            raise ValueError("failure_rate + latency_spike_rate must not exceed 1")
        if latency_spike_factor < 1.0:
            raise ValueError("latency_spike_factor must be >= 1")
        if not 0.0 <= failure_cost_fraction:
            raise ValueError("failure_cost_fraction must be non-negative")
        super().__init__(inner.threshold, inner.cost_model)
        self.inner = inner
        self.name = f"faulty[{inner.name}]"
        self.seed = seed
        self.failure_rate = failure_rate
        self.latency_spike_rate = latency_spike_rate
        self.latency_spike_factor = latency_spike_factor
        self.failure_cost_fraction = failure_cost_fraction
        self.faults_injected = 0
        self.spikes_injected = 0
        self._rng = random.Random(seed)

    # -- delegated similarity/cost hooks --------------------------------
    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return self.inner.similarity(profile_x, profile_y)

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return self.inner.work_units(profile_x, profile_y)

    def kernel_telemetry(self) -> dict[str, int]:
        # ``similarity`` delegates to the wrapped matcher, so that is where
        # the staged-kernel counts accumulate.
        return self.inner.kernel_telemetry()

    # -- fault schedule --------------------------------------------------
    def evaluate(self, profile_x: EntityProfile, profile_y: EntityProfile) -> MatchResult:
        draw = self._rng.random()
        if draw < self.failure_rate:
            wasted = self.failure_cost_fraction * self.estimate_cost(profile_x, profile_y)
            self.faults_injected += 1
            if self._metrics is not None:
                self._metrics.count("matcher.faults_injected")
            raise TransientMatcherError(wasted)
        result = super().evaluate(profile_x, profile_y)
        if draw < self.failure_rate + self.latency_spike_rate:
            extra = result.cost * (self.latency_spike_factor - 1.0)
            self.total_cost += extra
            self.spikes_injected += 1
            if self._metrics is not None:
                self._metrics.count("matcher.latency_spikes")
                self._metrics.count("matcher.virtual_cost_s", extra)
            return MatchResult(
                is_match=result.is_match,
                similarity=result.similarity,
                cost=result.cost * self.latency_spike_factor,
            )
        return result

    def reset_stats(self) -> None:
        super().reset_stats()
        self.inner.reset_stats()
        self.faults_injected = 0
        self.spikes_injected = 0
        self._rng = random.Random(self.seed)
