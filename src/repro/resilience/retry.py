"""Engine-side fault-tolerance policies.

:class:`RetryPolicy` describes how the engines react to
:class:`~repro.resilience.faults.TransientMatcherError`: up to
``max_attempts`` evaluations per comparison, separated by capped exponential
backoff *charged to the virtual clock* — resilience costs time, and the
progress curves show it.  A pair that exhausts its attempts is quarantined
(counted, never crashing the run), as is any pair whose estimated cost
exceeds the ``cost_ceiling``.

:class:`ResilienceConfig` bundles every resilience knob an engine accepts;
the default configuration changes nothing about a fault-free run.
"""

from __future__ import annotations

import random  # noqa: F401  (typing of the jitter stream parameter)
from dataclasses import dataclass

__all__ = ["RetryPolicy", "ResilienceConfig", "DEFAULT_RESILIENCE"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff for transient failures.

    ``jitter`` spreads consecutive backoffs by a seeded multiplicative
    factor in ``[1 - jitter, 1 + jitter]`` so a thundering herd of retries
    (or worker respawns — :mod:`repro.parallel.supervision` reuses this
    policy for respawn scheduling) decorrelates.  The jitter stream comes
    from a caller-owned ``random.Random``; with an explicit seed the
    jittered sequence is exactly reproducible — on the virtual clock the
    same backoffs are charged in the same order on every host.
    """

    max_attempts: int = 3
    base_backoff: float = 1e-3
    backoff_factor: float = 2.0
    max_backoff: float = 0.1
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0:
            raise ValueError("base_backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff < self.base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, rng: "random.Random | None" = None) -> float:
        """Seconds to wait after the ``attempt``-th failure (1-based).

        Without ``rng`` (or with ``jitter == 0``) this is the raw capped
        exponential.  With both, the capped value is scaled by the next
        draw of the jitter stream — one ``rng.random()`` call per backoff,
        so the sequence is pinned by the rng seed.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        capped = min(self.base_backoff * self.backoff_factor ** (attempt - 1), self.max_backoff)
        if rng is None or self.jitter == 0.0:
            return capped
        return capped * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Every resilience knob of the streaming engines.

    Parameters
    ----------
    retry:
        Policy for transient matcher failures.
    cost_ceiling:
        Quarantine any comparison whose *estimated* virtual cost exceeds
        this bound (pathological pairs must not starve the budget).
        ``None`` disables the ceiling.
    shed_watermark:
        Load shedding: when more than this many increments have arrived but
        are not yet ingested, the oldest due increments are dropped
        (counted as ``engine.shed_increments``).  ``None`` disables.
    checkpoint_every:
        Capture an :class:`~repro.resilience.checkpoint.EngineCheckpoint`
        whenever this many virtual seconds elapsed since the last one.
        ``None`` disables checkpointing.
    crash_at:
        Deterministic crash injection: raise
        :class:`~repro.resilience.checkpoint.SimulatedCrash` (carrying the
        latest checkpoint) once the clock reaches this virtual time.
    """

    retry: RetryPolicy = RetryPolicy()
    cost_ceiling: float | None = None
    shed_watermark: int | None = None
    checkpoint_every: float | None = None
    crash_at: float | None = None

    def __post_init__(self) -> None:
        if self.cost_ceiling is not None and self.cost_ceiling <= 0:
            raise ValueError("cost_ceiling must be positive (or None)")
        if self.shed_watermark is not None and self.shed_watermark < 0:
            raise ValueError("shed_watermark must be >= 0 (or None)")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (or None)")


DEFAULT_RESILIENCE = ResilienceConfig()
