"""Checkpoint/restore: consistent cuts of a running engine.

An :class:`EngineCheckpoint` captures everything a streaming engine needs to
resume a run exactly where it left off: the loop position (clocks, stream
cursor, round count), the exactly-once bookkeeping (seen increment ids,
executed duplicates, quarantined pairs), and deep snapshots of every
stateful component — the ER system, the matcher (including any fault
schedule RNG), the progress recorder, the arrival-rate estimator, and the
metrics registry.

Checkpoints are taken at the *top* of the engine loop, so they are
consistent cuts: no comparison is half-charged, no increment half-ingested.
A run resumed from a checkpoint therefore produces byte-identical virtual
results (progress curve, duplicates, counters) to the uninterrupted run —
the property the crash-resume tests pin down.

:class:`SimulatedCrash` is the deterministic crash injector's exception; it
carries the latest checkpoint (or ``None`` if none was taken yet) so callers
can restart without any out-of-band state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.increments import StreamPlan

__all__ = ["EngineCheckpoint", "SimulatedCrash", "plan_token"]


def plan_token(plan: StreamPlan) -> int:
    """Deterministic fingerprint of a stream plan.

    Restoring a checkpoint against a *different* plan would silently corrupt
    the stream cursor; the engines compare this token (arrival times and
    increment ids — both hash independently of ``PYTHONHASHSEED``) and
    refuse mismatched resumes.

    Accepts any plan-like with ``arrival_times``/``increments`` sequences —
    a frozen :class:`StreamPlan` or a push run's mutable
    :class:`~repro.execution.push.PushPlan` — and produces the same token
    for the same arrival/id content, so a push run fed a classic plan
    fingerprints identically to ``engine.run`` over that plan.
    """
    return hash(
        (
            tuple(plan.arrival_times),
            tuple(increment.index for increment in plan.increments),
        )
    )


@dataclass(frozen=True, slots=True)
class EngineCheckpoint:
    """A consistent cut of one engine run, taken at the top of the loop.

    ``clock`` is the single clock of the serial engine or the *match* clock
    of the pipelined engine; ``ingest_clock`` is ``None`` for serial runs.
    Component states (``*_state``) are opaque snapshots produced by the
    components' own ``snapshot``/``snapshot_state`` methods; restoring
    deep-copies them again, so one checkpoint can seed many resumes.
    """

    engine: str                                   # "serial" | "pipelined"
    budget: float
    plan_fingerprint: int
    clock: float
    ingest_clock: float | None
    next_arrival: int
    consumed_at: float | None
    rounds: int
    ingested: int
    shed: int
    duplicates_dropped: int
    seen_increments: frozenset[int]
    duplicates: frozenset[tuple[int, int]]
    quarantined: frozenset[tuple[int, int]]
    system_state: dict
    matcher_state: dict
    recorder_state: dict
    estimator_state: tuple
    metrics_state: dict


class SimulatedCrash(RuntimeError):
    """Raised by the deterministic crash injector (``crash_at``).

    Carries the latest :class:`EngineCheckpoint` (``None`` if the crash hit
    before the first checkpoint) and the virtual time of the crash, so a
    caller can resume with ``engine.run(..., resume_from=crash.checkpoint)``.
    """

    def __init__(self, checkpoint: EngineCheckpoint | None, clock: float) -> None:
        if checkpoint is None:
            detail = "no checkpoint taken"
        else:
            detail = f"latest checkpoint at t={checkpoint.clock:.6g}"
        super().__init__(f"simulated crash at virtual t={clock:.6g} ({detail})")
        self.checkpoint = checkpoint
        self.clock = clock
