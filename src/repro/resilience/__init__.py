"""Resilience layer: deterministic fault injection, retry, checkpoint/restore.

Real progressive ER deployments are judged on early quality *under* adverse
conditions: increments get dropped, duplicated, reordered or coalesced into
bursts by flaky upstream sources; match functions backed by remote services
fail transiently or exhibit latency spikes; processes crash and must resume
without double-counting work.  This package makes all of those conditions
first-class and — crucially — *deterministic*: every chaos experiment is
driven by explicit seeds on the virtual clock, so a failing run replays
bit-identically on any host.

Three modules:

* :mod:`repro.resilience.faults` — seeded stream perturbation
  (:func:`apply_faults` over a :class:`FaultSpec`) and the
  :class:`FaultyMatcher` wrapper injecting transient exceptions and latency
  spikes on a seeded schedule;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (capped exponential
  backoff charged to the virtual clock) and :class:`ResilienceConfig`, the
  engine-side knob bundle (retry, cost-ceiling quarantine, load shedding,
  checkpoint cadence, crash injection);
* :mod:`repro.resilience.checkpoint` — :class:`EngineCheckpoint` (a
  consistent cut of engine + system + matcher + recorder + metrics state)
  and :class:`SimulatedCrash`.
"""

from __future__ import annotations

from repro.resilience.checkpoint import EngineCheckpoint, SimulatedCrash, plan_token
from repro.resilience.faults import (
    FaultReport,
    FaultSpec,
    FaultyMatcher,
    TransientMatcherError,
    WorkerFaultSpec,
    apply_faults,
)
from repro.resilience.retry import DEFAULT_RESILIENCE, ResilienceConfig, RetryPolicy

__all__ = [
    "DEFAULT_RESILIENCE",
    "EngineCheckpoint",
    "FaultReport",
    "FaultSpec",
    "FaultyMatcher",
    "ResilienceConfig",
    "RetryPolicy",
    "SimulatedCrash",
    "TransientMatcherError",
    "WorkerFaultSpec",
    "apply_faults",
    "plan_token",
]
