"""repro — Progressive Entity Resolution over Incremental Data.

A full Python reproduction of Gazzarri & Herschel, *Progressive Entity
Resolution over Incremental Data* (EDBT 2023): the PIER framework with its
three prioritization strategies (I-PCS, I-PBS, I-PES), the baselines it is
evaluated against (PPS, PBS, their GLOBAL/LOCAL stream adaptations, I-BASE,
plain batch ER), all supporting substrates (schema-agnostic token blocking,
block cleaning, meta-blocking weighting schemes, I-WNP, Bloom filters,
bounded priority queues, adaptive budget control), a deterministic
virtual-time streaming engine, synthetic analogues of the paper's four
benchmark datasets, and the evaluation harness that regenerates every
figure and table of the paper's evaluation section.

Quickstart::

    from repro import load_dataset, resolve_stream

    dataset = load_dataset("dblp_acm")
    result = resolve_stream(dataset, algorithm="I-PES", matcher="JS",
                            n_increments=50, rate=5.0, budget=60.0)
    print(result.final_pc, len(result.duplicates))
"""

from __future__ import annotations

from repro.core import (
    Attribute,
    Dataset,
    ERKind,
    EntityProfile,
    GroundTruth,
    Increment,
    StreamPlan,
    make_stream_plan,
    split_into_increments,
)
from repro.datasets import available_datasets, load_dataset
from repro.evaluation import ExperimentConfig

# Imported after ``repro.evaluation``: resolving ``ExecutionCore`` pulls in
# ``repro.execution.core``, which reaches back into the evaluation and
# streaming packages — those must already be fully initialized.
from repro.execution import ComparisonStore, ExecutionCore
from repro.incremental import IBaseSystem
from repro.matching import EditDistanceMatcher, JaccardMatcher, Matcher
from repro.observability import MetricsRegistry
from repro.pier import IPBS, IPCS, IPES, PierSystem
from repro.progressive import BatchERSystem, PBSSystem, PPSSystem
from repro.resilience import (
    EngineCheckpoint,
    FaultReport,
    FaultSpec,
    FaultyMatcher,
    ResilienceConfig,
    RetryPolicy,
    SimulatedCrash,
    TransientMatcherError,
    WorkerFaultSpec,
    apply_faults,
)
from repro.streaming import RunResult, StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

# The session facade composes everything above, so it imports last.
from repro.api import ERSession, EngineOptions
from repro.parallel import (
    SupervisionConfig,
    WorkerPool,
    WorkerPoolError,
    strip_parallel_telemetry,
    sweep_stale_segments,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BatchERSystem",
    "Dataset",
    "ERKind",
    "ERSession",
    "EditDistanceMatcher",
    "EngineCheckpoint",
    "EngineOptions",
    "EntityProfile",
    "ExperimentConfig",
    "FaultReport",
    "FaultSpec",
    "FaultyMatcher",
    "GroundTruth",
    "IBaseSystem",
    "IPBS",
    "IPCS",
    "IPES",
    "Increment",
    "JaccardMatcher",
    "Matcher",
    "MetricsRegistry",
    "PBSSystem",
    "PPSSystem",
    "PierSystem",
    "ComparisonStore",
    "ExecutionCore",
    "PipelinedStreamingEngine",
    "ResilienceConfig",
    "RetryPolicy",
    "RunResult",
    "SimulatedCrash",
    "StreamPlan",
    "StreamingEngine",
    "SupervisionConfig",
    "TransientMatcherError",
    "WorkerFaultSpec",
    "WorkerPool",
    "WorkerPoolError",
    "strip_parallel_telemetry",
    "sweep_stale_segments",
    "apply_faults",
    "available_datasets",
    "load_dataset",
    "make_stream_plan",
    "resolve_stream",
    "split_into_increments",
]


def resolve_stream(
    dataset: Dataset,
    algorithm: str = "I-PES",
    matcher: str = "JS",
    n_increments: int = 100,
    rate: float | None = None,
    budget: float = 300.0,
    seed: int = 0,
    workers: int = 1,
) -> RunResult:
    """One-call progressive incremental ER over a dataset.

    Splits ``dataset`` into ``n_increments`` increments arriving at ``rate``
    ΔD per virtual second (``None`` = all available upfront), runs
    ``algorithm`` with the ``matcher`` configuration under a virtual time
    ``budget``, and returns the run result with its PC progress curve and
    the duplicate set found.  ``workers > 1`` shards matcher evaluation
    across a process pool with bit-identical results.

    Thin wrapper over :class:`repro.api.ERSession` — batch baselines
    (PPS/PBS/BATCH/…-PSN) in the static setting therefore receive the full
    dataset as one increment, matching ``run_experiment`` and the paper.
    """
    with ERSession(
        dataset,
        systems=(algorithm,),
        matcher=matcher,
        n_increments=n_increments,
        rate=rate,
        budget=budget,
        seed=seed,
        workers=workers,
    ) as session:
        return session.run()
