"""Progress recording: PC over (virtual) time and over executed comparisons.

Pair Completeness (PC) follows the paper's definition: the number of
ground-truth matches whose comparison has been *emitted* (and executed) by
the prioritization/blocking step, divided by the total number of existing
matches.  The match function's classification does not enter PC — it only
determines how much (virtual) time each comparison costs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.core.comparison import canonical_pair
from repro.core.dataset import GroundTruth

__all__ = ["ProgressPoint", "ProgressRecorder", "ProgressCurve"]


@dataclass(frozen=True, slots=True)
class ProgressPoint:
    """One sample of the progress curve."""

    time: float
    comparisons: int
    matches: int


class ProgressRecorder:
    """Accumulates executed comparisons against the ground truth.

    The recorder samples a point on every ground-truth hit and (sparsely) on
    misses, so PC-over-time curves are exact at every step while remaining
    compact for long runs.
    """

    def __init__(self, ground_truth: GroundTruth, sample_every: int = 64) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.ground_truth = ground_truth
        self.sample_every = sample_every
        self.comparisons_executed = 0
        self.matches_emitted = 0
        self._found_pairs: set[tuple[int, int]] = set()
        self._points: list[ProgressPoint] = [ProgressPoint(0.0, 0, 0)]
        self.duplicate_executions = 0
        self._executed_pairs: set[tuple[int, int]] = set()
        self._match_events: list[tuple[float, tuple[int, int]]] = []

    # ------------------------------------------------------------------
    def record(self, pid_x: int, pid_y: int, time: float) -> bool:
        """Record one executed comparison at virtual ``time``.

        Returns ``True`` if the pair is a (new) ground-truth match.
        Re-executions of the same pair are counted as work but can never
        contribute a second match.
        """
        pair = canonical_pair(pid_x, pid_y)
        self.comparisons_executed += 1
        if pair in self._executed_pairs:
            self.duplicate_executions += 1
            self._maybe_sample(time)
            return False
        self._executed_pairs.add(pair)
        if pair in self.ground_truth and pair not in self._found_pairs:
            self._found_pairs.add(pair)
            self.matches_emitted += 1
            self._match_events.append((time, pair))
            self._points.append(
                ProgressPoint(time, self.comparisons_executed, self.matches_emitted)
            )
            return True
        self._maybe_sample(time)
        return False

    def mark(self, time: float) -> None:
        """Force a sample (e.g. at budget exhaustion or stream end)."""
        self._points.append(ProgressPoint(time, self.comparisons_executed, self.matches_emitted))

    def _maybe_sample(self, time: float) -> None:
        if self.comparisons_executed % self.sample_every == 0:
            self._points.append(
                ProgressPoint(time, self.comparisons_executed, self.matches_emitted)
            )

    # ------------------------------------------------------------------
    @property
    def pair_completeness(self) -> float:
        if not len(self.ground_truth):
            return 1.0
        return self.matches_emitted / len(self.ground_truth)

    def was_executed(self, pid_x: int, pid_y: int) -> bool:
        return canonical_pair(pid_x, pid_y) in self._executed_pairs

    def found_pairs(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._found_pairs)

    def match_events(self) -> tuple[tuple[float, tuple[int, int]], ...]:
        """Each ground-truth hit as ``(time, pair)``, in emission order.

        This is what latency analyses need: when exactly was each true
        match surfaced, relative to when its profiles arrived.
        """
        return tuple(self._match_events)

    def curve(self) -> "ProgressCurve":
        return ProgressCurve(tuple(self._points), len(self.ground_truth))

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """All mutable progress state (the ground truth is shared, not copied)."""
        return {
            "sample_every": self.sample_every,
            "comparisons_executed": self.comparisons_executed,
            "matches_emitted": self.matches_emitted,
            "found_pairs": set(self._found_pairs),
            "points": list(self._points),
            "duplicate_executions": self.duplicate_executions,
            "executed_pairs": set(self._executed_pairs),
            "match_events": list(self._match_events),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self.sample_every = state["sample_every"]
        self.comparisons_executed = state["comparisons_executed"]
        self.matches_emitted = state["matches_emitted"]
        self._found_pairs = set(state["found_pairs"])
        self._points = list(state["points"])
        self.duplicate_executions = state["duplicate_executions"]
        self._executed_pairs = set(state["executed_pairs"])
        self._match_events = list(state["match_events"])


@dataclass(frozen=True, slots=True)
class ProgressCurve:
    """An immutable PC progress curve with interpolation-free lookups."""

    points: tuple[ProgressPoint, ...]
    total_matches: int
    _times: tuple[float, ...] = field(init=False, repr=False)
    _comparisons: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_times", tuple(p.time for p in self.points))
        object.__setattr__(self, "_comparisons", tuple(p.comparisons for p in self.points))

    def pc_at_time(self, time: float) -> float:
        """PC achieved at or before virtual ``time`` (step function)."""
        if not self.points or self.total_matches == 0:
            return 0.0 if self.total_matches else 1.0
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return 0.0
        return self.points[index].matches / self.total_matches

    def pc_at_comparisons(self, comparisons: int) -> float:
        """PC achieved within the first ``comparisons`` executed comparisons."""
        if not self.points or self.total_matches == 0:
            return 0.0 if self.total_matches else 1.0
        index = bisect.bisect_right(self._comparisons, comparisons) - 1
        if index < 0:
            return 0.0
        return self.points[index].matches / self.total_matches

    @property
    def final_pc(self) -> float:
        if self.total_matches == 0:
            return 1.0
        if not self.points:
            return 0.0
        return self.points[-1].matches / self.total_matches

    @property
    def final_time(self) -> float:
        return self.points[-1].time if self.points else 0.0

    @property
    def final_comparisons(self) -> int:
        return self.points[-1].comparisons if self.points else 0

    def sample_times(self, times: list[float]) -> list[float]:
        """PC values at each requested time (for plotting/reporting)."""
        return [self.pc_at_time(t) for t in times]

    def time_to_pc(self, target: float) -> float | None:
        """Earliest virtual time at which PC reached ``target`` (or None).

        The scalar dual of :meth:`pc_at_time`: useful for "how long until
        90 % of matches" style reporting.
        """
        if not 0.0 <= target <= 1.0:
            raise ValueError("target must be in [0, 1]")
        if self.total_matches == 0:
            return 0.0
        needed = target * self.total_matches
        for point in self.points:
            if point.matches >= needed:
                return point.time
        return None

    def comparisons_to_pc(self, target: float) -> int | None:
        """Fewest executed comparisons at which PC reached ``target``."""
        if not 0.0 <= target <= 1.0:
            raise ValueError("target must be in [0, 1]")
        if self.total_matches == 0:
            return 0
        needed = target * self.total_matches
        for point in self.points:
            if point.matches >= needed:
                return point.comparisons
        return None

    def area_under_curve(self, horizon: float, samples: int = 200) -> float:
        """Normalized area under PC(t) up to ``horizon`` — the standard
        scalar summary of *early quality* (1.0 = all matches at t=0)."""
        if horizon <= 0 or samples < 1:
            raise ValueError("horizon and samples must be positive")
        step = horizon / samples
        total = sum(self.pc_at_time(step * (i + 1)) for i in range(samples))
        return total / samples
