"""Experiment harness: build systems/matchers by name and run configurations.

This is the layer the benchmarks, examples, and EXPERIMENTS.md reproduction
scripts sit on.  A :class:`ExperimentConfig` pins everything that defines
one paper experiment cell (dataset, increments, input rate, matcher,
algorithms, virtual budget); :func:`run_experiment` executes it and returns
one :class:`RunResult` per algorithm.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import EngineOptions

from repro.blocking.substrate import BlockingConfig
from repro.core.dataset import Dataset, ERKind
from repro.datasets.registry import load_dataset
from repro.incremental.ibase import IBaseSystem
from repro.matching.matcher import EditDistanceMatcher, JaccardMatcher, Matcher
from repro.pier.base import PierSystem
from repro.pier.heuristic import make_chosen_strategy
from repro.pier.ipbs import IPBS
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES
from repro.progressive.batch import BatchERSystem
from repro.progressive.pbs import PBSSystem
from repro.progressive.pps import PPSSystem
from repro.progressive.psn import GSPSNSystem, LSPSNSystem
from repro.streaming.engine import RunResult
from repro.streaming.system import ERSystem

__all__ = [
    "SYSTEM_NAMES",
    "BATCH_SYSTEMS",
    "WEIGHTING_SYSTEMS",
    "ExperimentConfig",
    "make_matcher",
    "make_system",
    "run_experiment",
]

# Systems that require the full dataset upfront (single-increment plans in
# static experiments); all others consume the increment stream as-is.
BATCH_SYSTEMS = frozenset({"PPS", "PBS", "BATCH", "LS-PSN", "GS-PSN"})

SYSTEM_NAMES = (
    "I-PES",
    "I-PCS",
    "I-PBS",
    "I-AUTO",
    "I-BASE",
    "PPS",
    "PBS",
    "LS-PSN",
    "GS-PSN",
    "PPS-GLOBAL",
    "PPS-LOCAL",
    "PBS-GLOBAL",
    "BATCH",
)


def _build_matcher(name: str, *, ed_kernel: str = "auto") -> Matcher:
    """JS (cheap) or ED (expensive) matcher with experiment thresholds.

    ``ed_kernel`` selects the ED matcher's edit-distance kernel (ignored
    for JS); every kernel computes identical distances, so it is a
    wall-clock escape hatch only.
    """
    if name.upper() == "JS":
        return JaccardMatcher(threshold=0.35)
    if name.upper() == "ED":
        return EditDistanceMatcher(threshold=0.7, kernel=ed_kernel)
    raise ValueError(f"unknown matcher {name!r}; use 'JS' or 'ED'")


#: Systems whose prioritization runs on meta-blocking weights and therefore
#: honor the ``per_pair_weighting`` escape hatch.  The sorted-neighborhood
#: and exhaustive-batch baselines do not weight comparisons, so the flag is
#: ignored for them.
WEIGHTING_SYSTEMS = frozenset(
    {
        "I-PES",
        "I-PCS",
        "I-PBS",
        "I-AUTO",
        "I-BASE",
        "PPS",
        "PPS-GLOBAL",
        "PPS-LOCAL",
        "PBS",
        "PBS-GLOBAL",
    }
)


def _build_system(
    name: str,
    dataset: Dataset,
    *,
    per_pair_weighting: bool = False,
    blocking: "BlockingConfig | None" = None,
    **overrides,
) -> ERSystem:
    """Instantiate an ER system by its paper name for a given dataset.

    ``per_pair_weighting=True`` selects the legacy per-pair meta-blocking
    weighting path instead of the single-sweep kernel for the systems that
    weight comparisons (bit-identical results; exists for bisection).

    ``blocking`` selects the candidate-generation substrate
    (token / lsh / lsh-prefilter) for every system; ``None`` keeps the
    paper's token blocking.  For the PIER strategies it lands on the host
    :class:`PierSystem` (the strategy objects never see the substrate —
    they read it through the protocol).
    """
    clean_clean = dataset.kind is ERKind.CLEAN_CLEAN
    key = name.upper()
    if per_pair_weighting and key in WEIGHTING_SYSTEMS:
        overrides["per_pair_weighting"] = True
    if key == "I-PES":
        return PierSystem(IPES(**overrides), clean_clean=clean_clean, blocking=blocking)
    if key == "I-PCS":
        return PierSystem(IPCS(**overrides), clean_clean=clean_clean, blocking=blocking)
    if key == "I-PBS":
        return PierSystem(IPBS(**overrides), clean_clean=clean_clean, blocking=blocking)
    if key == "I-AUTO":
        # The future-work heuristic: inspect a data sample, pick a strategy.
        sample = dataset.profiles[: min(len(dataset.profiles), 256)]
        system = PierSystem(
            make_chosen_strategy(sample, **overrides),
            clean_clean=clean_clean,
            blocking=blocking,
        )
        system.name = f"I-AUTO[{system.strategy.name}]"
        return system
    if key == "I-BASE":
        return IBaseSystem(clean_clean=clean_clean, blocking=blocking, **overrides)
    if key in ("PPS", "PPS-GLOBAL"):
        system = PPSSystem(
            clean_clean=clean_clean, scope="all", blocking=blocking, **overrides
        )
        system.name = key
        return system
    if key == "PPS-LOCAL":
        return PPSSystem(
            clean_clean=clean_clean, scope="last", blocking=blocking, **overrides
        )
    if key in ("PBS", "PBS-GLOBAL"):
        system = PBSSystem(
            clean_clean=clean_clean, scope="all", blocking=blocking, **overrides
        )
        system.name = key
        return system
    if key == "LS-PSN":
        return LSPSNSystem(clean_clean=clean_clean, blocking=blocking, **overrides)
    if key == "GS-PSN":
        return GSPSNSystem(clean_clean=clean_clean, blocking=blocking, **overrides)
    if key == "BATCH":
        return BatchERSystem(clean_clean=clean_clean, blocking=blocking, **overrides)
    raise ValueError(f"unknown system {name!r}; choose from {SYSTEM_NAMES}")


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One experiment cell: dataset x stream shape x matcher x algorithms.

    ``rate=None`` is the *static* setting (everything available at t=0);
    otherwise increments arrive at ``rate`` ΔD per virtual second.  Batch
    baselines (PPS/PBS/BATCH) always receive the full dataset as one
    increment in the static setting, matching how the paper runs them.
    """

    dataset_name: str
    systems: tuple[str, ...]
    matcher: str = "JS"
    scale: float = 1.0
    n_increments: int = 100
    rate: float | None = None
    budget: float = 300.0
    seed: int = 0
    dataset: Dataset | None = field(default=None, compare=False)
    #: Engine knobs — see :class:`repro.api.EngineOptions` for the full
    #: set: execution escape hatches (``pipelined``, ``scalar_matching``,
    #: ``per_pair_weighting``, ``workers``, ``ed_kernel``), the fleet
    #: supervision knobs (``reply_timeout_s``, ``handshake_timeout_s``,
    #: ``max_respawns``, ``min_shard``), and the blocking-substrate choice
    #: (``blocking``, ``lsh_bands``, ``lsh_rows``, ``lsh_seed`` — the one
    #: group that changes *what* is computed).  ``None`` means all
    #: defaults: serial engine, batched kernel, sweep weighting, one
    #: worker, token blocking.
    engine: "EngineOptions | None" = None

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)

    def load(self) -> Dataset:
        if self.dataset is not None:
            return self.dataset
        return load_dataset(self.dataset_name, scale=self.scale)


_DEPRECATION_TEMPLATE = (
    "{name} is deprecated; build an repro.api.ERSession instead "
    "(it unifies system/matcher/plan/engine construction and adds the "
    "parallel execution knobs)"
)


def make_matcher(name: str) -> Matcher:
    """Deprecated shim for :func:`_build_matcher`; use :class:`repro.api.ERSession`."""
    warnings.warn(
        _DEPRECATION_TEMPLATE.format(name="make_matcher"),
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_matcher(name)


def make_system(
    name: str, dataset: Dataset, *, per_pair_weighting: bool = False, **overrides
) -> ERSystem:
    """Deprecated shim for :func:`_build_system`; use :class:`repro.api.ERSession`."""
    warnings.warn(
        _DEPRECATION_TEMPLATE.format(name="make_system"),
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_system(
        name, dataset, per_pair_weighting=per_pair_weighting, **overrides
    )


def run_experiment(config: ExperimentConfig) -> dict[str, RunResult]:
    """Run every configured system over the configured stream; return
    results keyed by system name.

    Deprecated shim: the implementation lives in
    :meth:`repro.api.ERSession.compare`, which honors ``config.engine``
    (pipelined/scalar/per-pair/workers) and builds each stream plan once
    instead of re-splitting the dataset per batch system.
    """
    warnings.warn(
        _DEPRECATION_TEMPLATE.format(name="run_experiment"),
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import ERSession

    with ERSession.from_config(config) as session:
        return session.compare()
