"""Serialization of run results: JSON and CSV exports.

Experiment results are plain data; these helpers export them for external
plotting/analysis without adding any dependency.  The JSON schema is stable
and documented below; the CSV contains one row per curve sample.
"""

from __future__ import annotations

import csv
import json
from typing import IO

from repro.streaming.engine import RunResult

__all__ = ["run_result_to_dict", "run_result_to_json", "write_curve_csv", "curve_rows"]


def run_result_to_dict(result: RunResult) -> dict:
    """Convert a run result into a JSON-serializable dict.

    Schema::

        {
          "system": str, "matcher": str,
          "budget": float, "clock_end": float,
          "comparisons_executed": int,
          "final_pc": float,
          "stream_consumed_at": float | null,
          "work_exhausted": bool,
          "increments_ingested": int,
          "duplicates": [[pid, pid], ...],
          "curve": [{"time": float, "comparisons": int, "matches": int}, ...],
          "total_matches": int,
          "details": {..., "metrics": {<observability snapshot>}}
        }

    ``details`` carries the system's ``describe()`` metadata plus, for runs
    driven by the streaming engines, the observability snapshot documented
    in ``docs/observability.md``.
    """
    return {
        "system": result.system_name,
        "matcher": result.matcher_name,
        "budget": result.budget,
        "clock_end": result.clock_end,
        "comparisons_executed": result.comparisons_executed,
        "final_pc": result.final_pc,
        "stream_consumed_at": result.stream_consumed_at,
        "work_exhausted": result.work_exhausted,
        "increments_ingested": result.increments_ingested,
        "duplicates": sorted([list(pair) for pair in result.duplicates]),
        "curve": [
            {"time": point.time, "comparisons": point.comparisons, "matches": point.matches}
            for point in result.curve.points
        ],
        "total_matches": result.curve.total_matches,
        "details": result.details,
    }


def run_result_to_json(result: RunResult, indent: int = 2) -> str:
    """Serialize a run result as a JSON document."""
    return json.dumps(run_result_to_dict(result), indent=indent)


def curve_rows(result: RunResult) -> list[tuple[float, int, int, float]]:
    """Curve samples as ``(time, comparisons, matches, pc)`` rows."""
    total = result.curve.total_matches
    return [
        (point.time, point.comparisons, point.matches,
         point.matches / total if total else 1.0)
        for point in result.curve.points
    ]


def write_curve_csv(result: RunResult, path_or_file: str | IO[str]) -> None:
    """Write the PC curve as CSV (columns: time, comparisons, matches, pc)."""
    owns_handle = isinstance(path_or_file, str)
    handle = open(path_or_file, "w", newline="") if owns_handle else path_or_file
    try:
        writer = csv.writer(handle)
        writer.writerow(["time", "comparisons", "matches", "pc"])
        for row in curve_rows(result):
            writer.writerow(row)
    finally:
        if owns_handle:
            handle.close()
