"""Plain-text reporting of experiment results (the paper's tables/series).

The benchmarks print the same artifacts the paper plots: PC-over-time and
PC-over-comparisons series per algorithm, with stream-consumed markers.
Everything renders as monospace tables so results live happily in CI logs
and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.streaming.engine import RunResult

__all__ = [
    "format_table",
    "pc_over_time_table",
    "pc_over_comparisons_table",
    "summary_table",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a left-aligned monospace table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _consumed_marker(result: RunResult, time: float) -> str:
    if result.stream_consumed_at is not None and result.stream_consumed_at <= time:
        return "x"
    return ""


def pc_over_time_table(results: Mapping[str, RunResult], times: Sequence[float]) -> str:
    """PC(t) per algorithm at the requested virtual times.

    An ``x`` suffix marks samples taken after the stream was fully consumed
    (the paper's × marker in Figures 7/8).
    """
    headers = ["t[s]"] + list(results)
    rows = []
    for time in times:
        row: list[object] = [f"{time:g}"]
        for result in results.values():
            marker = _consumed_marker(result, time)
            row.append(f"{result.curve.pc_at_time(time):.3f}{marker}")
        rows.append(row)
    return format_table(headers, rows)


def pc_over_comparisons_table(
    results: Mapping[str, RunResult], comparison_counts: Sequence[int]
) -> str:
    """PC per number of executed comparisons, per algorithm."""
    headers = ["#comparisons"] + list(results)
    rows = []
    for count in comparison_counts:
        row: list[object] = [str(count)]
        for result in results.values():
            row.append(f"{result.curve.pc_at_comparisons(count):.3f}")
        rows.append(row)
    return format_table(headers, rows)


def summary_table(results: Mapping[str, RunResult]) -> str:
    """Final PC / comparisons / consumption summary per algorithm."""
    headers = [
        "system",
        "final PC",
        "comparisons",
        "end time",
        "stream consumed",
        "exhausted",
    ]
    rows = []
    for name, result in results.items():
        consumed = (
            f"{result.stream_consumed_at:.1f}s"
            if result.stream_consumed_at is not None
            else "never (in budget)"
        )
        rows.append(
            [
                name,
                f"{result.final_pc:.3f}",
                result.comparisons_executed,
                f"{result.clock_end:.1f}s",
                consumed,
                "yes" if result.work_exhausted else "no",
            ]
        )
    return format_table(headers, rows)
