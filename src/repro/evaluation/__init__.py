"""Evaluation: metrics, progress recording, experiment harness, reporting."""

# ``make_matcher``/``make_system``/``run_experiment`` are deliberately NOT
# re-exported: they are deprecated shims, importable from
# ``repro.evaluation.experiments`` for one more release.
from repro.evaluation.experiments import (
    BATCH_SYSTEMS,
    ExperimentConfig,
    SYSTEM_NAMES,
)
from repro.evaluation.io import (
    curve_rows,
    run_result_to_dict,
    run_result_to_json,
    write_curve_csv,
)
from repro.evaluation.metrics import (
    blocking_pair_completeness,
    f_measure,
    pair_completeness,
    pairs_quality,
    reduction_ratio,
)
from repro.evaluation.recorder import ProgressCurve, ProgressPoint, ProgressRecorder
from repro.evaluation.reporting import (
    format_table,
    pc_over_comparisons_table,
    pc_over_time_table,
    summary_table,
)

__all__ = [
    "BATCH_SYSTEMS",
    "ExperimentConfig",
    "ProgressCurve",
    "ProgressPoint",
    "ProgressRecorder",
    "SYSTEM_NAMES",
    "blocking_pair_completeness",
    "curve_rows",
    "f_measure",
    "format_table",
    "pair_completeness",
    "pairs_quality",
    "pc_over_comparisons_table",
    "pc_over_time_table",
    "reduction_ratio",
    "run_result_to_dict",
    "run_result_to_json",
    "summary_table",
    "write_curve_csv",
]
