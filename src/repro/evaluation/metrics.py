"""Blocking/ER quality metrics beyond the progress curves.

PC (pair completeness) is the paper's headline metric and lives on the
recorder; this module adds the companion metrics used throughout the
blocking literature, handy for sanity checks and for the examples.
"""

from __future__ import annotations

from typing import Iterable

from repro.blocking.substrate import BlockingSubstrate
from repro.core.comparison import canonical_pair
from repro.core.dataset import GroundTruth

__all__ = [
    "pair_completeness",
    "pairs_quality",
    "reduction_ratio",
    "f_measure",
    "blocking_pair_completeness",
]


def pair_completeness(found: Iterable[tuple[int, int]], truth: GroundTruth) -> float:
    """PC = |found ∩ truth| / |truth|."""
    return truth.pair_completeness(found)


def pairs_quality(found: Iterable[tuple[int, int]], truth: GroundTruth) -> float:
    """PQ (a.k.a. precision of the candidate set) = |found ∩ truth| / |found|."""
    total = 0
    hits = 0
    for pair in found:
        total += 1
        if canonical_pair(*pair) in truth:
            hits += 1
    return hits / total if total else 0.0


def reduction_ratio(candidates: int, total_possible: int) -> float:
    """RR = 1 - candidates / total_possible (clamped to [0, 1])."""
    if total_possible <= 0:
        return 0.0
    return max(0.0, min(1.0, 1.0 - candidates / total_possible))


def f_measure(pc: float, pq: float) -> float:
    """Harmonic mean of PC and PQ."""
    if pc + pq == 0.0:
        return 0.0
    return 2.0 * pc * pq / (pc + pq)


def blocking_pair_completeness(collection: BlockingSubstrate, truth: GroundTruth) -> float:
    """Upper bound on achievable PC: fraction of true matches co-occurring in
    at least one live block of the collection.

    Every downstream prioritization strategy can at best emit the pairs that
    blocking kept together, so this is the ceiling of all PC curves.
    """
    if not len(truth):
        return 1.0
    hits = sum(1 for pid_x, pid_y in truth if collection.common_blocks(pid_x, pid_y) > 0)
    return hits / len(truth)
