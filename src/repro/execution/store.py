"""Shared comparison bookkeeping for every ER system.

Before this layer existed, each system kept its own private variant of the
same three registries: the PIER framework and the incremental baseline each
held an ``_executed`` set, I-PBS owned a scalable Bloom filter for
cross-block dedup, and the engines tracked quarantined pairs in run-local
sets.  :class:`ComparisonStore` centralizes them:

* **executed-set** — the exactly-once execution registry.  A pair enters it
  the moment a system *commits* to executing it (emission for PIER and the
  batch baselines, enqueue for I-BASE), so redeliveries, refills and
  re-prioritizations can never hand the same comparison to the matcher
  twice;
* **Bloom dedup** — the probabilistic already-generated filter used by
  block-centric generation (I-PBS).  It lives here so checkpoints serialize
  it exactly once and restored runs reproduce the identical
  false-positive pattern;
* **quarantine registry** — pairs the engine refused to execute (cost
  ceiling, retry exhaustion).  Per-run state: cleared by
  :meth:`begin_run`, overwritten from the checkpoint on resume;
* **emission accounting** — totals of committed emissions and stale
  dequeues, shared across strategies for reporting.

The store is owned by the system (it shares the system's lifetime, like the
executed set it replaces) and snapshotted as one unit inside
``ERSystem.snapshot``, which is how engine checkpoints guarantee that no
comparison is double-credited after a crash-restore.
"""

from __future__ import annotations

from repro.core.comparison import canonical_pair
from repro.priority.bloom import ScalableBloomFilter

__all__ = ["ComparisonStore"]


class ComparisonStore:
    """Executed-set, Bloom dedup, quarantine registry, emission accounting."""

    __slots__ = ("executed", "quarantined", "emitted", "stale_dequeues", "_bloom")

    def __init__(self) -> None:
        self.executed: set[tuple[int, int]] = set()
        self.quarantined: set[tuple[int, int]] = set()
        self.emitted = 0
        self.stale_dequeues = 0
        self._bloom: ScalableBloomFilter | None = None

    # -- executed-set (exactly-once execution) --------------------------
    def was_executed(self, pid_x: int, pid_y: int) -> bool:
        return canonical_pair(pid_x, pid_y) in self.executed

    def mark_executed(self, pair: tuple[int, int]) -> bool:
        """Claim a canonical pair for execution; ``False`` if already claimed."""
        if pair in self.executed:
            return False
        self.executed.add(pair)
        return True

    def record_emission(self, emitted: int, stale: int = 0) -> None:
        """Account one emission round: committed pairs and stale dequeues."""
        self.emitted += emitted
        self.stale_dequeues += stale

    # -- quarantine registry --------------------------------------------
    def quarantine(self, pair: tuple[int, int]) -> None:
        """Register a pair the engine refused to execute."""
        self.quarantined.add(pair)

    def begin_run(self) -> None:
        """Reset the per-run registries at the start of a fresh (non-resume)
        run.  The executed set and the Bloom filter share the *system's*
        lifetime and survive — they encode which comparisons exist at all,
        not what one engine run did with them."""
        self.quarantined.clear()

    # -- Bloom dedup ----------------------------------------------------
    def bloom_filter(self, initial_capacity: int = 4096) -> ScalableBloomFilter:
        """The store's shared already-generated filter (created on first use).

        ``initial_capacity`` only applies to the creating call; later callers
        receive the same filter object, which is what lets checkpoint restore
        mutate it in place without breaking anyone's bound reference.
        """
        if self._bloom is None:
            self._bloom = ScalableBloomFilter(initial_capacity=initial_capacity)
        return self._bloom

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        return {
            "executed": set(self.executed),
            "quarantined": set(self.quarantined),
            "emitted": self.emitted,
            "stale_dequeues": self.stale_dequeues,
            "bloom": None if self._bloom is None else self._bloom.snapshot_state(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Rewind to a snapshot, mutating the Bloom filter *in place* so
        references bound by strategies (I-PBS) stay valid."""
        self.executed = set(state["executed"])
        self.quarantined = set(state["quarantined"])
        self.emitted = state["emitted"]
        self.stale_dequeues = state["stale_dequeues"]
        bloom_state = state["bloom"]
        if bloom_state is None:
            self._bloom = None
        else:
            if self._bloom is None:
                self._bloom = ScalableBloomFilter()
            self._bloom.restore_state(bloom_state)
