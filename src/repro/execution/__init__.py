"""The unified execution layer: one virtual-clock core, two engine policies.

This package hosts the machinery shared by every engine:

* :class:`~repro.execution.core.ExecutionCore` — the virtual-clock loop
  skeleton: arrival ingestion, budget clamping, retry/backoff, quarantine,
  load shedding, exactly-once dedup, checkpoint cadence, metrics binding,
  and the scalar/batched comparison-execution kernels.  The serial
  :class:`~repro.streaming.engine.StreamingEngine` and the two-clock
  :class:`~repro.streaming.pipelined.PipelinedStreamingEngine` are thin
  step-ordering policies over it.
* :class:`~repro.execution.store.ComparisonStore` — the per-system
  registry of executed / quarantined / Bloom-deduplicated comparisons
  shared by all prioritization strategies.

See ``docs/architecture.md`` for the layer map.

The core is re-exported lazily: ``repro.execution.core`` depends on
``repro.streaming.system``, which itself imports the store from this
package, so an eager import here would close an import cycle.
"""

__all__ = [
    "ComparisonStore",
    "ExecutionCore",
    "RunResult",
    "RunState",
    "PRESEEDED_COUNTERS",
    "PRESEEDED_PHASES",
]

from repro.execution.store import ComparisonStore

_CORE_NAMES = ("ExecutionCore", "RunResult", "RunState", "PRESEEDED_COUNTERS", "PRESEEDED_PHASES")


def __getattr__(name: str):
    if name in _CORE_NAMES:
        from repro.execution import core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
