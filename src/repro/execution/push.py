"""Push-mode execution: feed increments as they arrive, drain on demand.

The classic entry point — ``engine.run(system, plan, ground_truth)`` —
commits to a complete :class:`~repro.core.increments.StreamPlan` before the
first virtual second elapses.  That shape fits the paper's experiments (the
stream is known up front) but not a long-lived service, where increments
arrive over a connection and the caller decides, continuously, how much
virtual budget the tenant may burn next.

:class:`PushRun` is the same run, inverted into a state machine:

* :meth:`PushRun.feed` appends one increment (with its virtual arrival
  time) to the run's open-ended plan;
* :meth:`PushRun.drain` advances the engine's virtual clock to an absolute
  *horizon* — the engine's ``_drive`` policy executes exactly as it would
  inside ``run()``, with the horizon playing the role of the budget
  deadline (deadline cuts at a horizon are real cuts: raising the horizon
  later does not un-cut them);
* :meth:`PushRun.results` finalizes the run into the usual
  :class:`~repro.execution.core.RunResult` and closes the push run.

``ExecutionCore.run`` is reimplemented as the degenerate push schedule —
feed the whole plan, drain once to the budget, collect results — which is
what makes push mode *semantics-neutral by construction*: every classic
run, including the engine-parity and checkpoint-fingerprint suites, already
executes through this surface.

Laziness contract: nothing stateful happens at construction.  The run
state (and any checkpoint restore) materializes on the first drain, after
the arrivals fed so far are known — so a resumed push run reproduces the
exact ``_setup`` ordering of a resumed classic run.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

from repro.core.increments import Increment
from repro.resilience.checkpoint import EngineCheckpoint, plan_token

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dataset import GroundTruth
    from repro.execution.core import ExecutionCore, RunResult, RunState
    from repro.streaming.system import ERSystem

__all__ = ["PushPlan", "PushRun"]


class PushPlan:
    """An open-ended stream plan: the increments fed to a push run so far.

    Duck-types the slice of :class:`~repro.core.increments.StreamPlan` the
    execution core consumes (``increments``, ``arrival_times``, ``len``,
    iteration) but is mutable — the run state aliases these lists, so an
    append becomes visible to an in-flight run without copying.  Increment
    ids may repeat (at-least-once delivery); the engines deduplicate.
    """

    __slots__ = ("increments", "arrival_times", "rate", "allow_redelivery")

    def __init__(self) -> None:
        self.increments: list[Increment] = []
        self.arrival_times: list[float] = []
        self.rate: float | None = None
        self.allow_redelivery = True

    def __len__(self) -> int:
        return len(self.increments)

    def __iter__(self) -> Iterator[tuple[float, Increment]]:
        return iter(zip(self.arrival_times, self.increments))

    @property
    def last_arrival(self) -> float:
        return self.arrival_times[-1] if self.arrival_times else 0.0

    @property
    def total_profiles(self) -> int:
        return sum(len(increment) for increment in self.increments)


class PushRun:
    """One engine run driven by explicit feed/drain calls.

    Parameters
    ----------
    engine:
        The :class:`~repro.execution.core.ExecutionCore` policy instance
        (serial or pipelined) executing this run.  The push run owns the
        engine's ``budget`` attribute for its lifetime: every drain sets it
        to the drain horizon.
    system / ground_truth:
        As in ``engine.run``.
    resume_from:
        Restore this checkpoint on the first drain, after the arrivals fed
        by then — the checkpoint's plan fingerprint must match them.
    adopt_checkpoint_budget:
        With ``True``, the restore adopts the checkpoint's budget as the
        engine budget (the service's tenant-migration mode, where drains
        move the horizon afterwards anyway).  The default keeps the
        engine's configured budget and therefore the classic strict
        budget-match check.
    """

    def __init__(
        self,
        engine: "ExecutionCore",
        system: "ERSystem",
        ground_truth: "GroundTruth",
        resume_from: EngineCheckpoint | None = None,
        adopt_checkpoint_budget: bool = False,
    ) -> None:
        self._engine = engine
        self._system = system
        self._ground_truth = ground_truth
        self._resume_from = resume_from
        self._adopt_checkpoint_budget = adopt_checkpoint_budget
        self.plan = PushPlan()
        self._state: "RunState | None" = None
        self._horizon: float | None = None
        self._result: "RunResult | None" = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the first drain has materialized the run state."""
        return self._state is not None

    @property
    def finished(self) -> bool:
        """Whether :meth:`results` has finalized this run."""
        return self._result is not None

    @property
    def horizon(self) -> float | None:
        """The absolute virtual-time horizon of the last drain."""
        return self._horizon

    @property
    def clock(self) -> float:
        """The run's current virtual (match) clock."""
        if self._state is None:
            return self.plan.arrival_times[0] if self.plan.arrival_times else 0.0
        return self._state.clock

    @property
    def matches(self) -> frozenset[tuple[int, int]]:
        """Duplicates classified as matches so far (canonical pid pairs)."""
        if self._state is None:
            return frozenset()
        return frozenset(self._state.duplicates)

    @property
    def comparisons_executed(self) -> int:
        if self._state is None:
            return 0
        return self._state.recorder.comparisons_executed

    @property
    def increments_fed(self) -> int:
        return len(self.plan)

    @property
    def increments_ingested(self) -> int:
        return 0 if self._state is None else self._state.ingested

    @property
    def backlog(self) -> int:
        """Increments fed but not yet consumed (ingested, shed or dropped)."""
        if self._state is None:
            return len(self.plan)
        return self._state.n_arrivals - self._state.next_arrival

    @property
    def work_exhausted(self) -> bool:
        return self._state is not None and self._state.work_exhausted

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, increment: Increment, at: float | None = None) -> float:
        """Append one increment arriving at virtual time ``at``.

        ``at`` defaults to the latest of the last arrival and the current
        clock ("it arrives now"); explicit values must keep the arrival
        sequence non-decreasing, mirroring
        :class:`~repro.core.increments.StreamPlan` validation.  Returns the
        arrival time actually recorded.
        """
        self._require_unfinished("feed")
        times = self.plan.arrival_times
        if at is None:
            at = max(self.clock, times[-1] if times else 0.0)
        at = float(at)
        if not math.isfinite(at) or at < 0.0:
            raise ValueError(f"arrival time must be finite and non-negative, got {at}")
        if times and at < times[-1]:
            raise ValueError(
                f"arrival times must be non-decreasing: got {at} after {times[-1]}"
            )
        self.plan.increments.append(increment)
        times.append(at)
        state = self._state
        if state is not None:
            # The state aliases the plan lists; only the derived fields —
            # arrival count, plan fingerprint, exhaustion marker — must be
            # refreshed for the next drain to see the new work.
            state.n_arrivals = len(times)
            state.plan_fingerprint = plan_token(self.plan)
            state.work_exhausted = False
            state.consumed_at = None
        return at

    def feed_plan(self, plan) -> None:
        """Feed every increment of a prepared plan (classic-run adapter)."""
        for at, increment in plan:
            self.feed(increment, at=at)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def drain(self, until: float) -> float:
        """Advance the run's virtual clock to the absolute horizon ``until``.

        The horizon is a hard virtual-time deadline, exactly like the
        classic budget: work that cannot finish by it is cut, not deferred.
        Horizons must be non-decreasing across drains; a drain to the
        current horizon (or behind the clock) is a no-op.  Returns the
        clock after draining.
        """
        self._require_unfinished("drain")
        if until <= 0.0:
            raise ValueError(f"drain horizon must be positive, got {until}")
        if self._horizon is not None and until < self._horizon:
            raise ValueError(
                f"drain horizons must be non-decreasing: got {until} after {self._horizon}"
            )
        state = self._ensure_state()
        self._horizon = until
        self._engine.budget = until
        self._engine._drive(state)
        return state.clock

    def start(self) -> None:
        """Materialize the run state now (applying any pending restore).

        Normally implicit in the first drain; explicit start exists for
        restores that must bind the checkpoint to the arrivals fed *so
        far* before any further feeds grow the plan (tenant migration).
        """
        self._require_unfinished("start")
        self._ensure_state()

    def _ensure_state(self) -> "RunState":
        if self._state is None:
            engine = self._engine
            resume_from = self._resume_from
            if resume_from is not None and self._adopt_checkpoint_budget:
                engine.budget = resume_from.budget
            self._state = engine._setup(
                self._system, self.plan, self._ground_truth, resume_from
            )
            self._resume_from = None
        return self._state

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> EngineCheckpoint:
        """A consistent cut of the run, taken between drains.

        Drains always stop at the engine loop's top-of-iteration cut, so a
        checkpoint taken here has the same consistency guarantee as the
        cadence-driven ones: no comparison half-charged, no increment
        half-ingested.  The checkpoint's ``budget`` records the current
        drain horizon.
        """
        self._require_unfinished("checkpoint")
        state = self._ensure_state()
        return self._engine._take_checkpoint(state)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def results(self) -> "RunResult":
        """Finalize the run and return its :class:`RunResult`.

        Finalization is terminal: further feeds and drains raise, and
        repeated calls return the same result object.
        """
        if self._result is None:
            state = self._ensure_state()
            self._result = self._engine._finalize(state)
        return self._result

    def _require_unfinished(self, action: str) -> None:
        if self._result is not None:
            raise RuntimeError(
                f"cannot {action}: this push run was finalized by results()"
            )
