"""The execution core: the virtual-clock loop skeleton shared by all engines.

Both engines simulate Algorithm 1 of the paper against a
:class:`~repro.core.increments.StreamPlan` on deterministic virtual clocks;
they differ *only* in step ordering (the serial engine charges every stage
to one clock, the pipelined engine overlaps ingestion with matching on a
second clock).  Everything else — arrival ingestion and exactly-once
redelivery dedup, budget clamping, matcher retry with virtual-clock
backoff, cost-ceiling quarantine, load shedding, checkpoint cadence and
crash injection, metrics preseeding and finalization — is policy-free and
lives here, in :class:`ExecutionCore`.  Engine subclasses implement
:meth:`ExecutionCore._drive` (the step-ordering policy) plus two small
clock hooks, and inherit the rest.

Budget semantics: the budget is a hard deadline on the virtual clock.  A
comparison whose (deterministic) cost would push the clock past the budget
is *not* executed and *not* credited to the progress curve — the engine
charges the remaining time as cut-off work and stops, so no point of the
reported curve ever lies beyond the budget.

Comparison execution comes in two bit-identical flavors:

* the **scalar path** walks the emission batch pair by pair through
  ``matcher.evaluate`` with the full retry/backoff/quarantine machinery —
  required for impure matchers (fault injection, latency spikes);
* the **batched kernel** plans the deadline cut from
  ``matcher.estimate_cost_batch`` and executes the surviving prefix with a
  single ``matcher.evaluate_batch`` call.  For matchers that declare
  ``supports_batch`` (evaluation is deterministic, never raises, and costs
  exactly its estimate) this produces bit-identical clocks, curves and
  counters while amortizing per-pair Python dispatch — the acceleration
  lever of SPER-style batched similarity evaluation.

Resilience semantics (see :mod:`repro.resilience`): increments are delivered
exactly once (redeliveries deduplicated by id), transient matcher failures
are retried with capped exponential backoff *charged to the virtual clock*,
pathological pairs are quarantined into the system's shared
:class:`~repro.execution.store.ComparisonStore` instead of crashing the
run, backlog beyond a watermark is shed, and the core can checkpoint at a
configurable cadence and resume from an
:class:`~repro.resilience.checkpoint.EngineCheckpoint` with bit-identical
virtual results.  All of this is off by default
(:data:`~repro.resilience.retry.DEFAULT_RESILIENCE` changes nothing about a
fault-free run).

Every run is instrumented through a fresh
:class:`~repro.observability.metrics.MetricsRegistry` (bound to the system
and the matcher): named counters, per-phase virtual/wall timers and a
bounded per-round gauge log, exported as ``details["metrics"]`` on the
:class:`RunResult`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace

from repro.core.dataset import GroundTruth
from repro.core.increments import StreamPlan
from repro.evaluation.recorder import ProgressCurve, ProgressRecorder
from repro.execution.store import ComparisonStore
from repro.matching.matcher import KERNEL_COUNTERS, Matcher
from repro.observability.metrics import MetricsRegistry, PhaseTimer
from repro.priority.rates import RateEstimator
from repro.resilience.checkpoint import EngineCheckpoint, SimulatedCrash, plan_token
from repro.resilience.faults import TransientMatcherError
from repro.resilience.retry import DEFAULT_RESILIENCE, ResilienceConfig
from repro.streaming.system import ERSystem, PipelineStats

__all__ = ["PRESEEDED_COUNTERS", "PRESEEDED_PHASES", "RunResult", "RunState", "ExecutionCore"]

#: Counters every run exports even when they stay zero.  This is the union
#: of both engines' counter surfaces, preseeded identically by the shared
#: core, so exported schemas match across engines on healthy runs (e.g.
#: ``engine.fast_forwards`` only ever increments on the serial engine and
#: ``engine.ingests_cut_by_deadline`` only on the pipelined one, yet both
#: appear in every export).  ``engine.checkpoints_taken`` is deliberately
#: absent: its presence signals that checkpointing was enabled.
PRESEEDED_COUNTERS = (
    "blocking.lsh.buckets",
    "blocking.lsh.candidates_pruned",
    "blocking.lsh.signatures",
    "engine.comparisons_cut_by_deadline",
    "engine.comparisons_executed",
    "engine.duplicate_increments_dropped",
    "engine.emission_rounds",
    "engine.fast_forwards",
    "engine.forced_ingests",
    "engine.idle_rounds",
    "engine.increments_ingested",
    "engine.ingests_cut_by_deadline",
    "engine.matcher_faults",
    "engine.matches_recorded",
    "engine.quarantined_pairs",
    "engine.retries",
    "engine.retry_backoff_s",
    "engine.shed_increments",
    "parallel.fallbacks",
    "parallel.pairs_sharded",
    "parallel.rounds_sharded",
    "parallel.shm_bytes",
    "parallel.shm_segments",
    "parallel.supervision.evictions",
    "parallel.supervision.reassigned_chunks",
    "parallel.supervision.reply_timeouts",
    "parallel.supervision.respawns",
    "parallel.supervision.stale_segments_swept",
) + tuple(f"matcher.kernel.{name}" for name in sorted(KERNEL_COUNTERS))

#: Phase timers every run exports even when they never fire, for the same
#: reason: ``sleep`` only accumulates on the serial engine (fast-forward),
#: yet both engines export the full phase surface.
PRESEEDED_PHASES = ("emit", "idle", "ingest", "match", "scatter", "sleep")


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one simulated run."""

    system_name: str
    matcher_name: str
    curve: ProgressCurve
    duplicates: frozenset[tuple[int, int]]
    comparisons_executed: int
    clock_end: float
    budget: float
    stream_consumed_at: float | None     # when the last increment was ingested
    work_exhausted: bool                 # system + stream fully drained
    increments_ingested: int
    match_events: tuple[tuple[float, tuple[int, int]], ...] = ()
    details: dict[str, object] = field(default_factory=dict)

    @property
    def final_pc(self) -> float:
        return self.curve.final_pc


class RunState:
    """All mutable state of one run, owned by the core, mutated by policies.

    ``clock`` is the (match) clock both engines report; ``ingest_clock`` is
    ``None`` on single-clock engines and the concurrent ingest stage's clock
    on the pipelined engine.
    """

    __slots__ = (
        "system", "matcher", "metrics", "recorder", "estimator", "store",
        "plan", "arrival_times", "increments", "n_arrivals",
        "plan_fingerprint", "next_arrival", "clock", "ingest_clock",
        "consumed_at", "work_exhausted", "rounds", "ingested", "shed",
        "duplicates_dropped", "duplicates", "seen_increments",
        "last_checkpoint_clock",
        # Tier A telemetry, kept OUT of the metrics registry until finalize
        # so mid-run checkpoints (and their fingerprints) stay bit-identical
        # across worker counts.
        "parallel_rounds", "parallel_pairs", "parallel_fallbacks",
        "scatter_wall_start", "shm_segments_start", "shm_bytes_start",
        "evictions_start", "respawns_start", "reassigned_start",
        "reply_timeouts_start",
    )


class ExecutionCore:
    """Virtual-clock run skeleton; engines subclass it as step policies.

    Parameters
    ----------
    matcher / budget / match_cost_prior / sample_every:
        The match function, the virtual-time budget, the prior mean
        comparison cost, and the progress-curve sampling stride.
    resilience:
        Fault-tolerance knobs (retry, quarantine, shedding, checkpointing);
        the default changes nothing about a fault-free run.
    checkpoint_every:
        Convenience override for ``resilience.checkpoint_every``.
    batch_matching:
        Execute emission rounds through the batched kernel when the matcher
        supports it (the default).  ``False`` forces the scalar path; both
        are bit-identical for matchers that declare ``supports_batch``.
    workers:
        Shard the batched kernel's similarity scoring across this many
        worker processes (Tier A of :mod:`repro.parallel`).  ``1`` — the
        default — never touches multiprocessing; higher values create a
        :class:`~repro.parallel.pool.WorkerPool` lazily on the first
        shardable round, and degrade silently (``parallel.fallbacks``
        counter) to in-process scoring when a pool cannot start or breaks
        mid-run.  Results are bit-identical for every worker count.
    pool:
        An externally owned :class:`~repro.parallel.pool.WorkerPool` to use
        instead of creating one (e.g. shared across runs by
        :class:`repro.api.ERSession`).  The engine resets its profile
        caches at the start of every run but never closes it.
    supervision:
        Fleet-supervision knobs (reply deadline, handshake deadline,
        respawn budget/backoff) applied to any pool *this engine* creates;
        externally supplied pools carry their own configuration.  ``None``
        means environment-resolved defaults
        (:class:`~repro.parallel.supervision.SupervisionConfig`).
    worker_faults:
        Seeded process-level chaos
        (:class:`~repro.resilience.faults.WorkerFaultSpec`) for any pool
        this engine creates — kills, hangs, corrupt replies on the
        workers.  Supervision absorbs them; results stay bit-identical.
    min_shard:
        Smallest emission batch worth sharding, applied to any pool this
        engine creates (``None``: the pool default).  A threshold only —
        results are bit-identical either way.
    """

    _KIND = "abstract"
    #: Whether this policy runs ingestion on its own concurrent clock.
    _TRACKS_INGEST_CLOCK = False

    def __init__(
        self,
        matcher: Matcher,
        budget: float,
        match_cost_prior: float = 1e-4,
        sample_every: int = 64,
        resilience: ResilienceConfig | None = None,
        checkpoint_every: float | None = None,
        batch_matching: bool = True,
        workers: int = 1,
        pool: "object | None" = None,
        supervision: "object | None" = None,
        worker_faults: "object | None" = None,
        min_shard: "int | None" = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_shard is not None and min_shard < 1:
            raise ValueError("min_shard must be >= 1 (or None)")
        self.matcher = matcher
        self.budget = budget
        self.match_cost_prior = match_cost_prior
        self.sample_every = sample_every
        resilience = resilience or DEFAULT_RESILIENCE
        if checkpoint_every is not None:
            resilience = replace(resilience, checkpoint_every=checkpoint_every)
        self.resilience = resilience
        self.batch_matching = batch_matching
        self.workers = workers
        self.supervision = supervision
        self.worker_faults = worker_faults
        self.min_shard = min_shard
        self._pool = pool
        self._pool_owned = False
        self._pool_attempted = False
        #: Latest checkpoint of the most recent run (``None`` before any).
        self.last_checkpoint: EngineCheckpoint | None = None

    # ------------------------------------------------------------------
    # The run template
    # ------------------------------------------------------------------
    def run(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
        resume_from: EngineCheckpoint | None = None,
    ) -> RunResult:
        """Simulate ``system`` over ``plan`` and return its progress curve.

        With ``resume_from``, the core restores every component from the
        checkpoint and continues the run from its consistent cut; the
        completed run is then bit-identical (curve, duplicates, counters)
        to one that was never interrupted.

        Implemented as the degenerate push-mode schedule (feed the whole
        plan, drain once to the budget) over :class:`PushRun` — push mode
        is therefore semantics-neutral by construction: every classic run
        exercises it.
        """
        push = self.open_push(system, ground_truth, resume_from=resume_from)
        push.feed_plan(plan)
        push.drain(self.budget)
        return push.results()

    def open_push(
        self,
        system: ERSystem,
        ground_truth: GroundTruth,
        resume_from: EngineCheckpoint | None = None,
        adopt_checkpoint_budget: bool = False,
    ) -> "PushRun":
        """Open a push-mode run: feed increments, drain to horizons.

        See :class:`repro.execution.push.PushRun`.  The engine must not be
        used for another run until the push run is finalized.
        """
        from repro.execution.push import PushRun

        return PushRun(
            self,
            system,
            ground_truth,
            resume_from=resume_from,
            adopt_checkpoint_budget=adopt_checkpoint_budget,
        )

    def _drive(self, state: RunState) -> None:
        """The engine's step-ordering policy: run the loop until the budget
        expires or ``state.work_exhausted`` is set."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Setup / resume
    # ------------------------------------------------------------------
    def _setup(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
        resume_from: EngineCheckpoint | None,
    ) -> RunState:
        matcher = self.matcher
        matcher.reset_stats()
        metrics = MetricsRegistry()
        system.bind_metrics(metrics)
        matcher.bind_metrics(metrics)
        if self._pool is not None:
            # Profile ids are only unique within a dataset: worker caches
            # must never survive into a new run.  Claiming the pool also
            # lets interleaved runs (multi-tenant push sessions sharing one
            # fleet) detect each other and re-reset on every owner switch.
            self._pool.begin_run(owner=self)

        state = RunState()
        state.system = system
        state.matcher = matcher
        state.metrics = metrics
        state.recorder = ProgressRecorder(ground_truth, sample_every=self.sample_every)
        state.estimator = RateEstimator()
        state.store = system.comparison_store
        state.duplicates = set()
        state.seen_increments = set()
        state.plan = plan
        state.arrival_times = plan.arrival_times
        state.increments = plan.increments
        state.n_arrivals = len(plan)
        state.plan_fingerprint = plan_token(plan)
        state.next_arrival = 0
        state.clock = state.arrival_times[0] if state.n_arrivals else 0.0
        state.ingest_clock = state.clock if self._TRACKS_INGEST_CLOCK else None
        state.consumed_at = None if state.n_arrivals else 0.0
        state.work_exhausted = False
        state.rounds = 0
        state.ingested = 0
        state.shed = 0
        state.duplicates_dropped = 0
        state.parallel_rounds = 0
        state.parallel_pairs = 0
        state.parallel_fallbacks = 0
        pool = self._pool
        state.scatter_wall_start = pool.scatter_wall_s if pool is not None else 0.0
        state.shm_segments_start = pool.shm_segments_published if pool is not None else 0
        state.shm_bytes_start = pool.shm_bytes_published if pool is not None else 0
        state.evictions_start = pool.evictions if pool is not None else 0
        state.respawns_start = pool.respawns if pool is not None else 0
        state.reassigned_start = pool.reassigned_chunks if pool is not None else 0
        state.reply_timeouts_start = pool.reply_timeouts if pool is not None else 0

        if resume_from is None:
            state.store.begin_run()
        else:
            self._check_resumable(resume_from, state.plan_fingerprint)
            metrics.load_state(resume_from.metrics_state)
            system.restore(resume_from.system_state)
            matcher.restore_state(resume_from.matcher_state)
            state.recorder.restore_state(resume_from.recorder_state)
            state.estimator.restore_state(resume_from.estimator_state)
            # The system restore may have replaced its store wholesale
            # (default ``__dict__`` walk); rebind and then apply the
            # checkpoint's authoritative quarantine cut.
            state.store = system.comparison_store
            state.store.quarantined = set(resume_from.quarantined)
            state.duplicates = set(resume_from.duplicates)
            state.seen_increments = set(resume_from.seen_increments)
            state.next_arrival = resume_from.next_arrival
            state.clock = resume_from.clock
            if self._TRACKS_INGEST_CLOCK:
                state.ingest_clock = resume_from.ingest_clock
            state.consumed_at = resume_from.consumed_at
            state.rounds = resume_from.rounds
            state.ingested = resume_from.ingested
            state.shed = resume_from.shed
            state.duplicates_dropped = resume_from.duplicates_dropped
            self.last_checkpoint = resume_from
        for name in PRESEEDED_COUNTERS:
            metrics.count(name, 0)
        for name in PRESEEDED_PHASES:
            metrics.phase(name)
        state.last_checkpoint_clock = state.clock
        return state

    def _check_resumable(self, checkpoint: EngineCheckpoint, plan_fingerprint: int) -> None:
        """Refuse resumes that would silently corrupt the run."""
        if checkpoint.engine != self._KIND:
            raise ValueError(
                f"checkpoint was taken by a {checkpoint.engine!r} engine, "
                f"cannot resume on {self._KIND!r}"
            )
        if checkpoint.budget != self.budget:
            raise ValueError(
                f"checkpoint budget {checkpoint.budget} does not match "
                f"engine budget {self.budget}"
            )
        if checkpoint.plan_fingerprint != plan_fingerprint:
            raise ValueError("checkpoint was taken against a different stream plan")

    # ------------------------------------------------------------------
    # Phase 0: resilience bookkeeping at the loop-top cut
    # ------------------------------------------------------------------
    def _loop_top(self, state: RunState) -> None:
        """Checkpoint cadence, crash injection, load shedding."""
        resilience = self.resilience
        if (
            resilience.checkpoint_every is not None
            and state.clock - state.last_checkpoint_clock >= resilience.checkpoint_every
        ):
            state.metrics.count("engine.checkpoints_taken")
            self.last_checkpoint = self._take_checkpoint(state)
            state.last_checkpoint_clock = state.clock
        if resilience.crash_at is not None and state.clock >= resilience.crash_at:
            raise SimulatedCrash(self.last_checkpoint, state.clock)
        if resilience.shed_watermark is not None:
            due = bisect.bisect_right(state.arrival_times, state.clock, state.next_arrival)
            excess = (due - state.next_arrival) - resilience.shed_watermark
            while excess > 0:
                # Overload: drop the oldest due increments outright.  A
                # later redelivery of the same id may still be ingested.
                state.metrics.count("engine.shed_increments")
                state.shed += 1
                state.next_arrival += 1
                excess -= 1
                if state.next_arrival == state.n_arrivals:
                    state.consumed_at = state.clock

    def _take_checkpoint(self, state: RunState) -> EngineCheckpoint:
        return EngineCheckpoint(
            engine=self._KIND,
            budget=self.budget,
            plan_fingerprint=state.plan_fingerprint,
            clock=state.clock,
            ingest_clock=state.ingest_clock,
            next_arrival=state.next_arrival,
            consumed_at=state.consumed_at,
            rounds=state.rounds,
            ingested=state.ingested,
            shed=state.shed,
            duplicates_dropped=state.duplicates_dropped,
            seen_increments=frozenset(state.seen_increments),
            duplicates=frozenset(state.duplicates),
            quarantined=frozenset(state.store.quarantined),
            system_state=state.system.snapshot(),
            matcher_state=state.matcher.snapshot_state(),
            recorder_state=state.recorder.snapshot_state(),
            estimator_state=state.estimator.snapshot_state(),
            metrics_state=state.metrics.dump_state(),
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _drop_redelivered(self, state: RunState, now: float) -> None:
        """Exactly-once delivery: skip a redelivered increment."""
        state.metrics.count("engine.duplicate_increments_dropped")
        state.duplicates_dropped += 1
        state.next_arrival += 1
        if state.next_arrival == state.n_arrivals:
            state.consumed_at = now

    def _ingest_one(self, state: RunState, timer: PhaseTimer, forced: bool = False) -> None:
        """Consume the next arrival (callers handle redelivery dedup)."""
        arrival = state.arrival_times[state.next_arrival]
        increment = state.increments[state.next_arrival]
        state.seen_increments.add(increment.index)
        state.estimator.record(arrival)
        cost = state.system.ingest(increment)
        now = self._advance_ingest(state, arrival, cost)
        timer.virtual += cost
        state.metrics.count("engine.increments_ingested")
        if forced:
            state.metrics.count("engine.forced_ingests")
        state.ingested += 1
        state.next_arrival += 1
        if state.next_arrival == state.n_arrivals:
            state.consumed_at = now

    def _advance_ingest(self, state: RunState, arrival: float, cost: float) -> float:
        """Charge one ingestion to the policy's clock; return its finish time."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Comparison execution: scalar path and batched kernel
    # ------------------------------------------------------------------
    def _execute_emission(
        self,
        state: RunState,
        batch: tuple[tuple[int, int], ...],
        match_timer: PhaseTimer,
    ) -> bool:
        """Execute one emission batch under deadline/retry/quarantine rules.

        Routes to the batched kernel when both the engine and the matcher
        allow it, else to the scalar path.  Returns ``deadline_cut``; the
        match clock never exceeds the budget on return.
        """
        if self.batch_matching and state.matcher.supports_batch:
            clock, deadline_cut = self._execute_batch_kernel(state, batch, match_timer)
        else:
            clock, deadline_cut = self._execute_batch_scalar(state, batch, match_timer)
        state.clock = clock
        return deadline_cut

    def _execute_batch_scalar(
        self,
        state: RunState,
        batch: tuple[tuple[int, int], ...],
        match_timer: PhaseTimer,
    ) -> tuple[float, bool]:
        """Pair-at-a-time execution with the full retry machinery.

        This is the reference semantics the batched kernel must match; it is
        also the only path able to handle impure matchers (transient faults,
        latency spikes whose actual cost overshoots the estimate).
        """
        system = state.system
        matcher = state.matcher
        metrics = state.metrics
        recorder = state.recorder
        store = state.store
        budget = self.budget
        clock = state.clock
        retry = self.resilience.retry
        ceiling = self.resilience.cost_ceiling
        deadline_cut = False
        for position, (pid_x, pid_y) in enumerate(batch):
            profile_x = system.profile(pid_x)
            profile_y = system.profile(pid_y)
            cost = matcher.estimate_cost(profile_x, profile_y)
            if ceiling is not None and cost > ceiling:
                # Pathological pair: estimated cost alone busts the ceiling.
                # Quarantine (count, never execute) instead of starving the run.
                store.quarantine((min(pid_x, pid_y), max(pid_x, pid_y)))
                metrics.count("engine.quarantined_pairs")
                continue
            if clock + cost > budget:
                # The comparison cannot finish by the deadline: charge the
                # cut-off time, credit nothing.
                metrics.count("engine.comparisons_cut_by_deadline", len(batch) - position)
                match_timer.virtual += budget - clock
                clock = budget
                deadline_cut = True
                break
            result = None
            for attempt in range(1, retry.max_attempts + 1):
                try:
                    result = matcher.evaluate(profile_x, profile_y)
                    break
                except TransientMatcherError as fault:
                    wasted = min(max(fault.cost, 0.0), budget - clock)
                    clock += wasted
                    match_timer.virtual += wasted
                    metrics.count("engine.matcher_faults")
                    if clock >= budget:
                        metrics.count(
                            "engine.comparisons_cut_by_deadline", len(batch) - position
                        )
                        deadline_cut = True
                        break
                    if attempt == retry.max_attempts:
                        store.quarantine((min(pid_x, pid_y), max(pid_x, pid_y)))
                        metrics.count("engine.quarantined_pairs")
                        break
                    backoff = min(retry.backoff(attempt), budget - clock)
                    clock += backoff
                    match_timer.virtual += backoff
                    metrics.count("engine.retries")
                    metrics.count("engine.retry_backoff_s", backoff)
                    if clock >= budget:
                        metrics.count(
                            "engine.comparisons_cut_by_deadline", len(batch) - position
                        )
                        deadline_cut = True
                        break
            if deadline_cut:
                break
            if result is None:
                continue  # quarantined after exhausting its retry attempts
            clock += result.cost
            match_timer.virtual += result.cost
            if clock > budget:
                # The actual cost overshot the estimate (latency spike): the
                # comparison did not finish by the deadline, so it is not
                # credited and the overshoot is not charged.
                match_timer.virtual -= clock - budget
                clock = budget
                metrics.count("engine.comparisons_cut_by_deadline", len(batch) - position)
                deadline_cut = True
                break
            metrics.count("engine.comparisons_executed")
            if recorder.record(pid_x, pid_y, clock):
                metrics.count("engine.matches_recorded")
            if result.is_match:
                state.duplicates.add((min(pid_x, pid_y), max(pid_x, pid_y)))
            if clock >= budget:
                break
        return clock, deadline_cut

    def _execute_batch_kernel(
        self,
        state: RunState,
        batch: tuple[tuple[int, int], ...],
        match_timer: PhaseTimer,
    ) -> tuple[float, bool]:
        """Batched execution: plan the deadline cut from estimates, evaluate
        the surviving prefix in one ``evaluate_batch`` call.

        Bit-identical to :meth:`_execute_batch_scalar` for matchers with
        ``supports_batch``: their evaluation cost equals the estimate
        exactly (both are ``cost_model.charge(work_units)``), evaluation
        never raises, and the clock accumulates the same floats in the same
        order — so the scalar path's retry/overshoot branches are provably
        dead and the cut position is decidable up front.
        """
        system = state.system
        matcher = state.matcher
        metrics = state.metrics
        ceiling = self.resilience.cost_ceiling
        budget = self.budget
        clock = state.clock
        deadline_cut = False
        profiles = [(system.profile(pid_x), system.profile(pid_y)) for pid_x, pid_y in batch]
        costs = matcher.estimate_cost_batch(profiles)
        selected: list[int] = []
        post_clocks: list[float] = []
        for position, cost in enumerate(costs):
            if ceiling is not None and cost > ceiling:
                pid_x, pid_y = batch[position]
                state.store.quarantine((min(pid_x, pid_y), max(pid_x, pid_y)))
                metrics.count("engine.quarantined_pairs")
                continue
            if clock + cost > budget:
                metrics.count("engine.comparisons_cut_by_deadline", len(batch) - position)
                match_timer.virtual += budget - clock
                clock = budget
                deadline_cut = True
                break
            clock += cost
            match_timer.virtual += cost
            selected.append(position)
            post_clocks.append(clock)
            if clock >= budget:
                break
        if selected:
            selected_profiles = [profiles[position] for position in selected]
            precomputed = self._pool_scores(state, selected_profiles)
            results = matcher.evaluate_batch(selected_profiles, precomputed=precomputed)
            recorder = state.recorder
            duplicates = state.duplicates
            for offset, result in enumerate(results):
                pid_x, pid_y = batch[selected[offset]]
                metrics.count("engine.comparisons_executed")
                if recorder.record(pid_x, pid_y, post_clocks[offset]):
                    metrics.count("engine.matches_recorded")
                if result.is_match:
                    duplicates.add((min(pid_x, pid_y), max(pid_x, pid_y)))
        return clock, deadline_cut

    # ------------------------------------------------------------------
    # Tier A sharding (see repro.parallel): workers score, master accounts
    # ------------------------------------------------------------------
    def _pool_scores(
        self,
        state: RunState,
        pairs: list,
    ) -> tuple[list[float], list[float]] | None:
        """Shard a round's ``_batch_scores`` across the worker pool.

        Returns the merged ``(similarities, costs)`` lists — bit-identical
        to an in-process call, see :mod:`repro.parallel.pool` — or ``None``
        whenever the round should score in-process instead: single-worker
        configuration, batch below the sharding threshold, pool unavailable
        or broken.  The distinction is pure telemetry; results never differ.

        Telemetry accumulates on ``state`` and only reaches the metrics
        registry in :meth:`_finalize`: mid-run checkpoints must capture a
        ``metrics_state`` that is bit-identical across worker counts.
        """
        pool = self._pool
        if pool is None:
            if self.workers <= 1 or self._pool_attempted:
                return None
            self._pool_attempted = True
            from repro.parallel.pool import DEFAULT_MIN_SHARD, WorkerPool

            pool = WorkerPool.create(
                self.workers,
                self.matcher,
                min_shard=(
                    self.min_shard if self.min_shard is not None else DEFAULT_MIN_SHARD
                ),
                supervision=self.supervision,
                worker_faults=self.worker_faults,
            )
            if pool is None:
                state.parallel_fallbacks += 1
                return None
            self._pool = pool
            self._pool_owned = True
        if not pool.healthy or len(pairs) < pool.min_shard:
            return None
        from repro.parallel.pool import WorkerPoolError

        if pool.owner is not self:
            # Another engine scored through this pool since our last round
            # (interleaved tenants sharing one fleet): worker caches hold
            # that run's profiles under possibly colliding pids, so reset
            # before scoring.  Single-run engines never hit this branch.
            pool.begin_run(owner=self)
        try:
            scores = pool.batch_scores(pairs)
        except WorkerPoolError:
            # No worker was alive this round (or the pool is terminally
            # broken): score in-process, bit-identically.  A non-broken
            # pool is consulted again next round — respawn may have healed
            # the fleet by then.
            state.parallel_fallbacks += 1
            return None
        state.parallel_rounds += 1
        state.parallel_pairs += len(pairs)
        # Fold the workers' staged-kernel outcome counts into the master
        # matcher: ``matcher.kernel.*`` telemetry (and checkpointed matcher
        # state) stays bit-identical to a serial run.
        kernel_counts = state.matcher.kernel_counts
        for name, value in pool.last_kernel_counts.items():
            kernel_counts[name] = kernel_counts.get(name, 0) + value
        return scores

    def close_pool(self) -> None:
        """Shut down an engine-owned worker pool (no-op otherwise).

        Externally supplied pools belong to their creator (typically an
        :class:`repro.api.ERSession`) and are left running.
        """
        if self._pool is not None and self._pool_owned:
            self._pool.close()
        if self._pool_owned:
            self._pool = None
            self._pool_owned = False
        self._pool_attempted = False

    # ------------------------------------------------------------------
    # Shared probes and reporting
    # ------------------------------------------------------------------
    def _backlog(self, state: RunState) -> int:
        """Increments arrived by the (match) clock but not yet ingested."""
        due = bisect.bisect_right(state.arrival_times, state.clock, state.next_arrival)
        return due - state.next_arrival

    def _pipeline_stats(self, state: RunState) -> PipelineStats:
        mean_cost = self.matcher.mean_cost or self.match_cost_prior
        return PipelineStats(
            now=state.clock,
            input_rate=state.estimator.rate_at(state.clock),
            mean_match_cost=mean_cost,
            backlog=self._backlog(state),
            remaining_budget=self.budget - state.clock,
        )

    def _record_round(
        self, state: RunState, stats: PipelineStats, emitted: int, executed: int
    ) -> None:
        state.metrics.record_round(
            round=state.rounds,
            clock=state.clock,
            backlog=stats.backlog,
            input_rate=stats.input_rate,
            emitted=emitted,
            executed=executed,
            **state.system.gauges(),
        )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _ingest_clock_end(self, state: RunState, final_clock: float) -> float:
        """The reported end of the ingest stage.  Single-clock policies share
        one clock across stages, so it coincides with ``final_clock``."""
        return final_clock

    def _finalize(self, state: RunState) -> RunResult:
        final_clock = min(state.clock, self.budget) if not state.work_exhausted else state.clock
        state.recorder.mark(final_clock)
        metrics = state.metrics
        metrics.gauge("engine.clock_end", final_clock)
        metrics.gauge("engine.budget", self.budget)
        metrics.gauge("engine.ingest_clock_end", self._ingest_clock_end(state, final_clock))
        # Tier A telemetry lands here, after the last possible checkpoint,
        # so checkpointed metrics_state never varies with worker count.
        metrics.count("parallel.rounds_sharded", state.parallel_rounds)
        metrics.count("parallel.pairs_sharded", state.parallel_pairs)
        metrics.count("parallel.fallbacks", state.parallel_fallbacks)
        # Staged-kernel outcome counts accumulate as plain ints on the
        # matcher (worker-side counts are merged back per round), so this
        # flush is also bit-identical across worker counts.
        for name, value in state.matcher.kernel_telemetry().items():
            metrics.count(f"matcher.kernel.{name}", value)
        pool = self._pool
        if pool is not None:
            scatter_wall = pool.scatter_wall_s - state.scatter_wall_start
            if scatter_wall > 0.0:
                metrics.phase("scatter").add(0.0, scatter_wall)
            metrics.count(
                "parallel.shm_segments",
                pool.shm_segments_published - state.shm_segments_start,
            )
            metrics.count(
                "parallel.shm_bytes", pool.shm_bytes_published - state.shm_bytes_start
            )
            metrics.count(
                "parallel.supervision.evictions", pool.evictions - state.evictions_start
            )
            metrics.count(
                "parallel.supervision.respawns", pool.respawns - state.respawns_start
            )
            metrics.count(
                "parallel.supervision.reassigned_chunks",
                pool.reassigned_chunks - state.reassigned_start,
            )
            metrics.count(
                "parallel.supervision.reply_timeouts",
                pool.reply_timeouts - state.reply_timeouts_start,
            )
            # Pool-lifetime fact, not a per-run delta: how much crash
            # debris from dead masters the pool reaped when it started.
            metrics.count(
                "parallel.supervision.stale_segments_swept",
                pool.stale_segments_swept,
            )
        # Effective fleet size, not the requested one: a failed pool reports 1.
        metrics.gauge(
            "parallel.workers", float(pool.size) if pool is not None and pool.healthy else 1.0
        )
        details = dict(state.system.describe())
        details["resilience"] = {
            "retries": metrics.counter("engine.retries"),
            "quarantined_pairs": tuple(sorted(state.store.quarantined)),
            "shed_increments": state.shed,
            "duplicate_increments_dropped": state.duplicates_dropped,
            "checkpoints_taken": metrics.counter("engine.checkpoints_taken"),
        }
        details["metrics"] = metrics.snapshot()
        return RunResult(
            system_name=state.system.name,
            matcher_name=state.matcher.name,
            curve=state.recorder.curve(),
            duplicates=frozenset(state.duplicates),
            comparisons_executed=state.recorder.comparisons_executed,
            clock_end=final_clock,
            budget=self.budget,
            stream_consumed_at=state.consumed_at,
            work_exhausted=state.work_exhausted,
            increments_ingested=state.ingested,
            match_events=state.recorder.match_events(),
            details=details,
        )
