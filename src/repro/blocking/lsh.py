"""Incremental MinHash-LSH: the sublinear candidate-generation substrate.

Token blocking's candidate volume grows with the token vocabulary — every
shared token makes a pair a candidate, and the weighting layer pays
O(candidates) before any prioritizer runs.  Locality-sensitive hashing over
MinHash signatures (Broder '97; see also the blocking survey,
arXiv:1905.06167) bounds that volume by *similarity* instead: a pair
becomes a candidate only if at least one of ``bands`` signature slices
matches exactly, which happens with probability ``1 - (1 - s^rows)^bands``
for token-Jaccard ``s`` — an S-curve stepping near
``(1/bands) ** (1/rows)``.

Two collections implement the
:class:`~repro.blocking.substrate.BlockingSubstrate` protocol here, both
subclassing :class:`~repro.blocking.blocks.BlockCollection` so that purge,
intern, cache-invalidation and deep-copy snapshot semantics are inherited
rather than re-implemented:

* :class:`LSHBlockCollection` — the standalone tier.  Banded signature
  buckets *are* the blocks (the :meth:`~LSHBlockCollection.profile_keys`
  hook returns bucket keys instead of tokens), so every downstream
  consumer — the sweep kernel, CBS/ECBS/JS/ARCS weighting, block
  ghosting, I-WNP, the I-PBS cardinality indexes — runs unchanged over
  buckets.
* :class:`LSHPrefilterCollection` — the composable pre-filter.  Blocks
  stay token-based (keys, weights and block sizes are bit-compatible with
  the token substrate), but the collection additionally maintains the
  signature index and prunes candidate pairs whose signatures share no
  bucket (:meth:`~LSHPrefilterCollection.allows_pair`), before any weight
  is computed.

Determinism contract: nothing here may depend on the interpreter hash seed
or the host.  Tokens are hashed with ``blake2b`` (not the built-in
``hash``), permutations are drawn from a seeded ``random.Random``, the
min() reductions are order-independent, and bucket keys are explicit
strings — so signatures, buckets, and therefore candidate streams are
bit-identical across hosts, PYTHONHASHSEED values, and checkpoint
restores.  All mutable state (signature cache, bucket tables, undrained
``blocking.lsh.*`` counter deltas) lives on the collection object, which
rides through :class:`~repro.resilience.checkpoint.EngineCheckpoint`
snapshots via ``copy.deepcopy`` of the owning blocker.
"""

from __future__ import annotations

import random
from hashlib import blake2b
from typing import Iterable

from repro.blocking.blocks import BlockCollection
from repro.core.profile import EntityProfile

__all__ = ["MinHasher", "LSHBlockCollection", "LSHPrefilterCollection"]

#: Mersenne prime 2^61 - 1: the universal-hash modulus.  Larger than any
#: 61-bit token hash, so ``(a*h + b) % _PRIME`` is a proper permutation
#: family over the token-hash domain.
_PRIME = (1 << 61) - 1


def _token_hash(token: str) -> int:
    """A 61-bit integer hash of a token — hash-seed and host independent."""
    digest = blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % _PRIME


class MinHasher:
    """Seeded MinHash signatures with banded bucket keys.

    ``bands * rows`` universal-hash permutations ``h_i(x) = (a_i*x + b_i)
    mod p`` are drawn once from ``random.Random(seed)``; a profile's
    signature is the per-permutation minimum over its token hashes.  Token
    base hashes are cached across profiles (the vocabulary repeats heavily
    within a dataset), and the cache is plain data, so the hasher deep-copies
    and pickles cleanly inside checkpoints.
    """

    __slots__ = ("bands", "rows", "seed", "_params", "_token_cache")

    def __init__(self, bands: int, rows: int, seed: int = 0) -> None:
        if bands < 1:
            raise ValueError(f"bands must be >= 1, got {bands}")
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        self.bands = bands
        self.rows = rows
        self.seed = seed
        rng = random.Random(seed)
        self._params = tuple(
            (rng.randrange(1, _PRIME), rng.randrange(0, _PRIME))
            for _ in range(bands * rows)
        )
        self._token_cache: dict[str, int] = {}

    def signature(self, tokens: Iterable[str]) -> tuple[int, ...]:
        """The MinHash signature of a token set (empty set → empty tuple).

        ``min`` is commutative, so the (hash-seed dependent) iteration
        order of a token frozenset cannot affect the result.
        """
        cache = self._token_cache
        hashes = []
        for token in tokens:
            value = cache.get(token)
            if value is None:
                value = _token_hash(token)
                cache[token] = value
            hashes.append(value)
        if not hashes:
            return ()
        return tuple(
            min((a * value + b) % _PRIME for value in hashes)
            for a, b in self._params
        )

    def bucket_keys(self, signature: tuple[int, ...]) -> tuple[str, ...]:
        """One bucket key per band: the band index plus its signature slice.

        Keys are explicit strings (no further hashing), so equal slices
        collide by construction and keys sort deterministically.
        """
        rows = self.rows
        return tuple(
            f"b{band}:" + ".".join(map(str, signature[band * rows : (band + 1) * rows]))
            for band in range(self.bands)
        )


class _MinHashCollection(BlockCollection):
    """Shared signature cache + telemetry buffer of the two LSH substrates."""

    __slots__ = ("hasher", "_signatures", "_pending_metrics")

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        *,
        bands: int = 16,
        rows: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(clean_clean=clean_clean, max_block_size=max_block_size)
        self.hasher = MinHasher(bands, rows, seed)
        #: pid → signature; computed once per profile and kept for the
        #: collection's lifetime (checkpoints carry it, restores reuse it).
        self._signatures: dict[int, tuple[int, ...]] = {}
        self._pending_metrics: dict[str, float] = {}

    def _count(self, name: str, value: float = 1) -> None:
        pending = self._pending_metrics
        pending[name] = pending.get(name, 0) + value

    def drain_metrics(self) -> dict[str, float]:
        if not self._pending_metrics:
            return {}
        pending = self._pending_metrics
        self._pending_metrics = {}
        return pending

    def signature_of(self, profile: EntityProfile) -> tuple[int, ...]:
        """The profile's cached MinHash signature (computed on first use)."""
        signature = self._signatures.get(profile.pid)
        if signature is None:
            signature = self.hasher.signature(profile.tokens())
            self._signatures[profile.pid] = signature
            if signature:
                self._count("blocking.lsh.signatures")
        return signature

    def signature_count(self) -> int:
        """Cached signatures (for tests and describe-style reporting)."""
        return len(self._signatures)


class LSHBlockCollection(_MinHashCollection):
    """The standalone MinHash-LSH blocking tier: buckets are the blocks.

    Only the key-derivation hook differs from token blocking — a profile
    lands in its ``bands`` banded bucket keys instead of its tokens.  All
    other semantics (cross-source member bookkeeping, ``max_block_size``
    purging of degenerate buckets, dense key interning, the sorted cached
    block tuples behind the sweep kernel) are inherited.
    """

    __slots__ = ()

    def profile_keys(self, profile: EntityProfile) -> Iterable[str]:
        signature = self.signature_of(profile)
        if not signature:
            return ()
        keys = self.hasher.bucket_keys(signature)
        fresh = sum(1 for key in keys if key not in self._key_ids)
        if fresh:
            self._count("blocking.lsh.buckets", fresh)
        return keys


class LSHPrefilterCollection(_MinHashCollection):
    """Token blocking composed with an LSH co-bucket candidate filter.

    ``profile_keys`` stays the inherited token hook, so blocks, weights and
    purge behavior are exactly the token substrate's.  On top, every added
    profile is signed and bucketed into an interned side-table;
    :meth:`allows_pair` then prunes candidate pairs whose bucket sets are
    disjoint — before any weighting happens — and counts the prunes into
    ``blocking.lsh.candidates_pruned``.
    """

    __slots__ = ("_bucket_ids", "_profile_buckets")

    prunes_candidates = True

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        *,
        bands: int = 16,
        rows: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(
            clean_clean=clean_clean,
            max_block_size=max_block_size,
            bands=bands,
            rows=rows,
            seed=seed,
        )
        #: bucket key → dense id (interned; pair tests compare int sets).
        self._bucket_ids: dict[str, int] = {}
        self._profile_buckets: dict[int, frozenset[int]] = {}

    def add_profile(self, profile: EntityProfile) -> set[str]:
        keys = super().add_profile(profile)
        signature = self.signature_of(profile)
        if signature:
            bucket_ids = []
            intern = self._bucket_ids
            for key in self.hasher.bucket_keys(signature):
                bucket = intern.get(key)
                if bucket is None:
                    bucket = len(intern)
                    intern[key] = bucket
                    self._count("blocking.lsh.buckets")
                bucket_ids.append(bucket)
            self._profile_buckets[profile.pid] = frozenset(bucket_ids)
        else:
            self._profile_buckets[profile.pid] = frozenset()
        return keys

    def allows_pair(self, pid_x: int, pid_y: int) -> bool:
        buckets_x = self._profile_buckets.get(pid_x)
        buckets_y = self._profile_buckets.get(pid_y)
        if not buckets_x or not buckets_y:
            # No signature evidence (token-less profile, or a pid indexed
            # elsewhere): stay permissive — the filter only ever prunes on
            # positive disagreement.
            return True
        if buckets_x.isdisjoint(buckets_y):
            self._count("blocking.lsh.candidates_pruned")
            return False
        return True

    def bucket_count(self) -> int:
        """Distinct buckets interned so far."""
        return len(self._bucket_ids)
