"""The blocking-substrate contract: what every candidate index must expose.

Token blocking was the only substrate for the first seven growth steps, so
its concrete classes (:class:`~repro.blocking.blocks.BlockCollection` inside
:class:`~repro.blocking.token_blocking.IncrementalTokenBlocking`) *were* the
interface: the sweep kernel, the weighting schemes, the strategies and the
checkpoint layer all called the same dozen methods without a name for the
contract.  This module gives it one.

:class:`BlockingSubstrate` is that de-facto interface, written down as a
runtime-checkable protocol.  Three substrates implement it:

``token``
    Classic token blocking (:class:`~repro.blocking.blocks.BlockCollection`)
    — one block per token, the paper's configuration.
``lsh``
    Incremental MinHash-LSH (:class:`~repro.blocking.lsh.LSHBlockCollection`)
    — banded signature buckets *are* the blocks, so candidate volume scales
    with the number of near-duplicates instead of the token vocabulary.
``lsh-prefilter``
    Token blocking composed with an LSH co-bucket test
    (:class:`~repro.blocking.lsh.LSHPrefilterCollection`): blocks and
    weights stay token-based, but candidate pairs whose MinHash signatures
    share no bucket are pruned before weighting
    (:attr:`BlockingSubstrate.prunes_candidates` /
    :meth:`BlockingSubstrate.allows_pair`).

The protocol deliberately includes the purge/intern semantics
(``purged_keys`` / ``key_id``) and the telemetry drain hook: substrates ride
through engine checkpoints via ``copy.deepcopy`` of the owning blocker, so
*everything* a substrate accumulates — bucket tables, signature caches,
undrained counter deltas — must live on the collection object itself.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.blocking.blocks import Block, BlockCollection
from repro.core.profile import EntityProfile

__all__ = [
    "BLOCKING_SUBSTRATES",
    "BlockingConfig",
    "BlockingSubstrate",
    "make_collection",
]

#: The substrate names accepted by ``EngineOptions.blocking`` / ``--blocking``.
BLOCKING_SUBSTRATES = ("token", "lsh", "lsh-prefilter")


@dataclass(frozen=True, slots=True)
class BlockingConfig:
    """Substrate choice plus the MinHash-LSH shape parameters.

    ``lsh_bands`` × ``lsh_rows`` is the signature length; the banding
    threshold — the Jaccard similarity at which a pair has a ~50% chance of
    sharing a bucket — is approximately ``(1 / bands) ** (1 / rows)``.
    ``lsh_seed`` seeds the universal-hash permutations, so two collections
    built with the same config bucket identically on any host and hash seed.
    The LSH knobs are carried (and ignored) for the ``token`` substrate so
    one config value can describe every substrate.
    """

    substrate: str = "token"
    lsh_bands: int = 16
    lsh_rows: int = 2
    lsh_seed: int = 0

    def __post_init__(self) -> None:
        if self.substrate not in BLOCKING_SUBSTRATES:
            raise ValueError(
                f"substrate must be one of {BLOCKING_SUBSTRATES}, "
                f"got {self.substrate!r}"
            )
        if self.lsh_bands < 1:
            raise ValueError(f"lsh_bands must be >= 1, got {self.lsh_bands}")
        if self.lsh_rows < 1:
            raise ValueError(f"lsh_rows must be >= 1, got {self.lsh_rows}")

    @property
    def threshold(self) -> float:
        """Approximate Jaccard similarity at 50% bucket-collision probability."""
        return (1.0 / self.lsh_bands) ** (1.0 / self.lsh_rows)


@runtime_checkable
class BlockingSubstrate(Protocol):
    """What the metablocking layer requires from a candidate index.

    Semantics every implementation must honor:

    * **Add-only maintenance** — profiles are only ever added; re-adding an
      indexed pid raises (re-indexing would double-count comparisons).
    * **Purge-and-blacklist** — keys whose block grows past
      ``max_block_size`` are purged and never recreated; ``purged_keys``
      reports them, ``key_id`` keeps their dense id reserved.
    * **Deterministic block order** — ``iter_partner_blocks`` returns the
      profile's live blocks sorted by key, so weighting and candidate
      generation are bit-identical across hosts, hash seeds, and
      checkpoint restores.
    * **Deep-copy snapshots** — all mutable state (including undrained
      telemetry) lives on the object, so ``copy.deepcopy`` is a complete
      snapshot.
    """

    clean_clean: bool
    max_block_size: int | None
    #: Whether :meth:`allows_pair` can ever return ``False``.  Callers on
    #: hot paths read this once instead of paying a no-op call per pair.
    prunes_candidates: bool

    # -- incremental maintenance ---------------------------------------
    def add_profile(self, profile: EntityProfile) -> set[str]: ...

    # -- lookup ---------------------------------------------------------
    def __len__(self) -> int: ...
    def __iter__(self) -> Iterator[Block]: ...
    def __contains__(self, key: str) -> bool: ...
    def get(self, key: str) -> Block | None: ...
    def keys(self) -> Iterable[str]: ...
    def key_id(self, key: str) -> int | None: ...
    def blocks_of(self, pid: int) -> frozenset[str]: ...
    def block_count_of(self, pid: int) -> int: ...
    def iter_partner_blocks(self, pid: int) -> tuple[Block, ...]: ...
    def blocks_of_as_blocks(self, pid: int) -> tuple[Block, ...]: ...
    def partner_counts(self, pid: int, source: int | None = None) -> Counter: ...
    def common_blocks(self, pid_x: int, pid_y: int) -> int: ...
    def profiles_indexed(self) -> int: ...
    def is_indexed(self, pid: int) -> bool: ...
    def total_comparisons(self) -> int: ...
    def purged_keys(self) -> frozenset[str]: ...

    # -- candidate pre-filtering ----------------------------------------
    def allows_pair(self, pid_x: int, pid_y: int) -> bool: ...

    # -- observability ---------------------------------------------------
    def drain_metrics(self) -> dict[str, float]: ...


def make_collection(
    config: BlockingConfig | None,
    *,
    clean_clean: bool = False,
    max_block_size: int | None = 200,
) -> BlockingSubstrate:
    """Build the collection a :class:`BlockingConfig` describes.

    ``None`` means the default token substrate — callers that never heard
    of LSH keep working unchanged.
    """
    if config is None or config.substrate == "token":
        return BlockCollection(clean_clean=clean_clean, max_block_size=max_block_size)
    from repro.blocking.lsh import LSHBlockCollection, LSHPrefilterCollection

    cls = LSHBlockCollection if config.substrate == "lsh" else LSHPrefilterCollection
    return cls(
        clean_clean=clean_clean,
        max_block_size=max_block_size,
        bands=config.lsh_bands,
        rows=config.lsh_rows,
        seed=config.lsh_seed,
    )
