"""Blocks and the incrementally maintained block collection.

Token blocking places each profile in one block per token appearing in its
attribute values.  The :class:`BlockCollection` is the shared substrate of
every algorithm in this library: it is built incrementally (profiles are
only ever *added*, as increments arrive) and maintains both the token →
profiles mapping and its inverse (profile → blocks), which the CBS weighting
scheme reads on every comparison.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.profile import EntityProfile

__all__ = ["Block", "BlockCollection"]


class Block:
    """A single block: the profiles sharing one blocking key (token).

    Profiles are kept per source so that Clean-Clean ER can generate only
    cross-source comparisons without filtering after the fact.
    """

    __slots__ = ("key", "members_by_source", "_size")

    def __init__(self, key: str) -> None:
        self.key = key
        self.members_by_source: dict[int, list[int]] = {}
        self._size = 0

    def add(self, pid: int, source: int) -> None:
        self.members_by_source.setdefault(source, []).append(pid)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        for members in self.members_by_source.values():
            yield from members

    def members(self, source: int) -> list[int]:
        return self.members_by_source.get(source, [])

    def comparison_count(self, clean_clean: bool) -> int:
        """Number of comparisons ||b|| this block can generate."""
        if clean_clean:
            return len(self.members_by_source.get(0, ())) * len(
                self.members_by_source.get(1, ())
            )
        return self._size * (self._size - 1) // 2

    def pairs(self, clean_clean: bool) -> Iterator[tuple[int, int]]:
        """Yield all candidate pid pairs of this block (not canonicalized)."""
        if clean_clean:
            left_members = self.members_by_source.get(0, ())
            right_members = self.members_by_source.get(1, ())
            for pid_x in left_members:
                for pid_y in right_members:
                    yield (pid_x, pid_y)
        else:
            flat = list(self)
            for i, pid_x in enumerate(flat):
                for pid_y in flat[i + 1 :]:
                    yield (pid_x, pid_y)

    def __repr__(self) -> str:
        return f"Block(key={self.key!r}, size={self._size})"


class BlockCollection:
    """Incrementally maintained token → block index with its inverse.

    Parameters
    ----------
    clean_clean:
        Whether the dataset is Clean-Clean (controls pair generation and
        comparison counting inside blocks).
    max_block_size:
        Block purging threshold: a block that grows beyond this many
        profiles is dropped and its token blacklisted, since oversized
        blocks yield an excessive number of uninformative comparisons
        (incremental block purging, per Gazzarri & Herschel ICDE 2021).
        ``None`` disables purging.
    """

    __slots__ = (
        "clean_clean",
        "max_block_size",
        "_blocks",
        "_blocks_of",
        "_purged_keys",
        "_total_comparisons",
    )

    def __init__(self, clean_clean: bool = False, max_block_size: int | None = 200) -> None:
        if max_block_size is not None and max_block_size < 2:
            raise ValueError("max_block_size must be >= 2 (or None)")
        self.clean_clean = clean_clean
        self.max_block_size = max_block_size
        self._blocks: dict[str, Block] = {}
        self._blocks_of: dict[int, set[str]] = {}
        self._purged_keys: set[str] = set()
        self._total_comparisons = 0

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_profile(self, profile: EntityProfile) -> set[str]:
        """Index a newly arrived profile; return the keys of its live blocks.

        Idempotent per profile: re-adding a pid that is already indexed is an
        error, because re-indexing would double-count comparisons.
        """
        if profile.pid in self._blocks_of:
            raise ValueError(f"profile {profile.pid} already indexed")
        keys: set[str] = set()
        for token in profile.tokens():
            if token in self._purged_keys:
                continue
            block = self._blocks.get(token)
            if block is None:
                block = Block(token)
                self._blocks[token] = block
            if self.clean_clean:
                gained = len(block.members_by_source.get(1 - profile.source, ()))
            else:
                gained = len(block)
            block.add(profile.pid, profile.source)
            self._total_comparisons += gained
            if self.max_block_size is not None and len(block) > self.max_block_size:
                self._purge_block(token)
            else:
                keys.add(token)
        self._blocks_of[profile.pid] = keys
        return keys

    def _purge_block(self, key: str) -> None:
        block = self._blocks.pop(key)
        self._purged_keys.add(key)
        self._total_comparisons -= block.comparison_count(self.clean_clean)
        for pid in block:
            member_keys = self._blocks_of.get(pid)
            if member_keys is not None:
                member_keys.discard(key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def get(self, key: str) -> Block | None:
        return self._blocks.get(key)

    def blocks_of(self, pid: int) -> set[str]:
        """Keys of the live blocks containing ``pid`` (B(p) in the paper)."""
        return self._blocks_of.get(pid, set())

    def blocks_of_as_blocks(self, pid: int) -> list[Block]:
        """The live blocks containing ``pid``, as Block objects.

        Returned in sorted key order: ``_blocks_of`` stores key *sets*, whose
        iteration order varies with the interpreter's hash seed, and this
        order feeds candidate generation (block ghosting, I-WNP, queue
        tie-breaking).  Sorting keeps runs bit-identical across hosts and
        checkpoint restores.
        """
        result = []
        for key in sorted(self._blocks_of.get(pid, ())):
            block = self._blocks.get(key)
            if block is not None:
                result.append(block)
        return result

    def profiles_indexed(self) -> int:
        return len(self._blocks_of)

    def is_indexed(self, pid: int) -> bool:
        return pid in self._blocks_of

    def total_comparisons(self) -> int:
        """Aggregate ||b|| over all live blocks (with multiplicity).

        Maintained incrementally, so this is O(1) — it is consulted on every
        increment by the GLOBAL baseline adaptations.
        """
        return self._total_comparisons

    def keys(self) -> Iterable[str]:
        return self._blocks.keys()

    def purged_keys(self) -> frozenset[str]:
        return frozenset(self._purged_keys)

    def common_blocks(self, pid_x: int, pid_y: int) -> int:
        """|B(p_x) ∩ B(p_y)| — the raw ingredient of the CBS weight."""
        keys_x = self._blocks_of.get(pid_x)
        keys_y = self._blocks_of.get(pid_y)
        if not keys_x or not keys_y:
            return 0
        if len(keys_x) > len(keys_y):
            keys_x, keys_y = keys_y, keys_x
        return sum(1 for key in keys_x if key in keys_y)

    def __repr__(self) -> str:
        return (
            f"BlockCollection(blocks={len(self._blocks)}, "
            f"profiles={len(self._blocks_of)}, purged={len(self._purged_keys)})"
        )
