"""Blocks and the incrementally maintained block collection.

Token blocking places each profile in one block per token appearing in its
attribute values.  The :class:`BlockCollection` is the shared substrate of
every algorithm in this library: it is built incrementally (profiles are
only ever *added*, as increments arrive) and maintains both the token →
profiles mapping and its inverse (profile → blocks), which the weighting
schemes and the single-sweep weighting kernel
(:mod:`repro.metablocking.sweep`) read on every comparison.

:class:`BlockCollection` is also the reference implementation of the
:class:`~repro.blocking.substrate.BlockingSubstrate` protocol: alternative
substrates (the MinHash-LSH tier in :mod:`repro.blocking.lsh`) subclass it
and override :meth:`BlockCollection.profile_keys` — the single hook that
decides which blocking keys a profile lands in — inheriting the purge,
intern, cache-invalidation and snapshot semantics unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.core.profile import EntityProfile

__all__ = ["Block", "BlockCollection"]


class Block:
    """A single block: the profiles sharing one blocking key (token).

    Profiles are kept per source so that Clean-Clean ER can generate only
    cross-source comparisons without filtering after the fact.  Each block
    carries a dense integer id (``bid``) interned by its owning collection;
    ids are assigned in key-creation order and survive purging, so they are
    stable for the lifetime of a run.
    """

    __slots__ = ("key", "bid", "members_by_source", "_size", "_cc_value", "_cc_kind")

    def __init__(self, key: str, bid: int = -1) -> None:
        self.key = key
        self.bid = bid
        self.members_by_source: dict[int, list[int]] = {}
        self._size = 0
        self._cc_value = 0
        self._cc_kind: bool | None = None  # None → cardinality cache invalid

    def add(self, pid: int, source: int) -> None:
        self.members_by_source.setdefault(source, []).append(pid)
        self._size += 1
        self._cc_kind = None

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        for members in self.members_by_source.values():
            yield from members

    def members(self, source: int) -> tuple[int, ...]:
        """Members of one source, as an immutable snapshot.

        A tuple is returned (not the internal list) so that strategies
        cannot corrupt the index by mutating what they are handed.
        """
        return tuple(self.members_by_source.get(source, ()))

    def comparison_count(self, clean_clean: bool) -> int:
        """Number of comparisons ||b|| this block can generate.

        Cached until the next :meth:`add` — ARCS weighting and the
        smallest-block-first refill consult it once per co-occurrence, so
        recomputing the product per call is measurable on hot paths.
        """
        if self._cc_kind is clean_clean:
            return self._cc_value
        if clean_clean:
            count = len(self.members_by_source.get(0, ())) * len(
                self.members_by_source.get(1, ())
            )
        else:
            count = self._size * (self._size - 1) // 2
        self._cc_value = count
        self._cc_kind = clean_clean
        return count

    def pairs(self, clean_clean: bool) -> Iterator[tuple[int, int]]:
        """Yield all candidate pid pairs of this block (not canonicalized)."""
        if clean_clean:
            left_members = self.members_by_source.get(0, ())
            right_members = self.members_by_source.get(1, ())
            for pid_x in left_members:
                for pid_y in right_members:
                    yield (pid_x, pid_y)
        else:
            flat = list(self)
            for i, pid_x in enumerate(flat):
                for pid_y in flat[i + 1 :]:
                    yield (pid_x, pid_y)

    def __repr__(self) -> str:
        return f"Block(key={self.key!r}, size={self._size})"


class BlockCollection:
    """Incrementally maintained token → block index with its inverse.

    Parameters
    ----------
    clean_clean:
        Whether the dataset is Clean-Clean (controls pair generation and
        comparison counting inside blocks).
    max_block_size:
        Block purging threshold: a block that grows beyond this many
        profiles is dropped and its token blacklisted, since oversized
        blocks yield an excessive number of uninformative comparisons
        (incremental block purging, per Gazzarri & Herschel ICDE 2021).
        ``None`` disables purging.
    """

    #: Whether :meth:`allows_pair` can ever prune — ``False`` here, so hot
    #: paths skip the per-pair call entirely on the token substrate.  The
    #: LSH prefilter substrate overrides this.
    prunes_candidates = False

    __slots__ = (
        "clean_clean",
        "max_block_size",
        "_blocks",
        "_blocks_of",
        "_purged_keys",
        "_total_comparisons",
        "_key_ids",
        "_profile_blocks",
    )

    def __init__(self, clean_clean: bool = False, max_block_size: int | None = 200) -> None:
        if max_block_size is not None and max_block_size < 2:
            raise ValueError("max_block_size must be >= 2 (or None)")
        self.clean_clean = clean_clean
        self.max_block_size = max_block_size
        self._blocks: dict[str, Block] = {}
        self._blocks_of: dict[int, set[str]] = {}
        self._purged_keys: set[str] = set()
        self._total_comparisons = 0
        # Dense int id per block key, assigned in creation order.  Purged
        # keys keep their id (they are blacklisted, never recreated), so ids
        # are stable and never reused.
        self._key_ids: dict[str, int] = {}
        # Per-profile cache of the sorted live-block tuple behind
        # iter_partner_blocks/blocks_of_as_blocks; invalidated when the
        # profile's key set changes (its own add, or a purge touching it).
        self._profile_blocks: dict[int, tuple[Block, ...]] = {}

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_profile(self, profile: EntityProfile) -> set[str]:
        """Index a newly arrived profile; return the keys of its live blocks.

        Idempotent per profile: re-adding a pid that is already indexed is an
        error, because re-indexing would double-count comparisons.
        """
        if profile.pid in self._blocks_of:
            raise ValueError(f"profile {profile.pid} already indexed")
        keys: set[str] = set()
        for token in self.profile_keys(profile):
            if token in self._purged_keys:
                continue
            block = self._blocks.get(token)
            if block is None:
                block = Block(token, self._intern_key(token))
                self._blocks[token] = block
            if self.clean_clean:
                gained = len(block.members_by_source.get(1 - profile.source, ()))
            else:
                gained = len(block)
            block.add(profile.pid, profile.source)
            self._total_comparisons += gained
            if self.max_block_size is not None and len(block) > self.max_block_size:
                self._purge_block(token)
            else:
                keys.add(token)
        self._blocks_of[profile.pid] = keys
        self._profile_blocks.pop(profile.pid, None)
        return keys

    def profile_keys(self, profile: EntityProfile) -> Iterable[str]:
        """The blocking keys ``profile`` belongs in — the substrate hook.

        Token blocking keys a profile by its tokens; subclasses derive keys
        differently (MinHash bucket keys in :mod:`repro.blocking.lsh`).
        Per-key indexing effects are order-independent, so any iteration
        order produces the identical collection.
        """
        return profile.tokens()

    def _intern_key(self, key: str) -> int:
        bid = self._key_ids.get(key)
        if bid is None:
            bid = len(self._key_ids)
            self._key_ids[key] = bid
        return bid

    def _purge_block(self, key: str) -> None:
        block = self._blocks.pop(key)
        self._purged_keys.add(key)
        self._total_comparisons -= block.comparison_count(self.clean_clean)
        for pid in block:
            member_keys = self._blocks_of.get(pid)
            if member_keys is not None:
                member_keys.discard(key)
            self._profile_blocks.pop(pid, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: str) -> bool:
        return key in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def get(self, key: str) -> Block | None:
        return self._blocks.get(key)

    def key_id(self, key: str) -> int | None:
        """Dense interned id of a block key (stable, survives purging)."""
        return self._key_ids.get(key)

    def blocks_of(self, pid: int) -> frozenset[str]:
        """Keys of the live blocks containing ``pid`` (B(p) in the paper).

        An immutable view: the internal key set is live, shared state
        (purges mutate it in place), so handing it out would let callers
        alias-mutate the index.
        """
        keys = self._blocks_of.get(pid)
        return frozenset(keys) if keys else frozenset()

    def block_count_of(self, pid: int) -> int:
        """|B(p)| — number of live blocks containing ``pid`` (O(1))."""
        keys = self._blocks_of.get(pid)
        return len(keys) if keys else 0

    def iter_partner_blocks(self, pid: int) -> tuple[Block, ...]:
        """The live blocks containing ``pid``, sorted by key — cached.

        This is the substrate of the single-sweep weighting kernel: one
        call hands back every block whose members are ``pid``'s candidate
        partners, purged blocks already skipped, in a deterministic
        (hash-seed independent) order.  The tuple is cached per profile and
        invalidated only when the profile's key set changes, so repeated
        sweeps over the same profile do not re-sort.
        """
        cached = self._profile_blocks.get(pid)
        if cached is None:
            blocks = self._blocks
            cached = tuple(
                block
                for block in (blocks.get(key) for key in sorted(self._blocks_of.get(pid, ())))
                if block is not None
            )
            self._profile_blocks[pid] = cached
        return cached

    def blocks_of_as_blocks(self, pid: int) -> tuple[Block, ...]:
        """The live blocks containing ``pid``, as Block objects.

        Returned in sorted key order: ``_blocks_of`` stores key *sets*, whose
        iteration order varies with the interpreter's hash seed, and this
        order feeds candidate generation (block ghosting, I-WNP, queue
        tie-breaking).  Sorting keeps runs bit-identical across hosts and
        checkpoint restores.  Alias of :meth:`iter_partner_blocks`.
        """
        return self.iter_partner_blocks(pid)

    def partner_counts(self, pid: int, source: int | None = None) -> Counter:
        """Co-occurrence counts ``|B(pid) ∩ B(y)|`` for every partner ``y``.

        One sweep over ``pid``'s live blocks; the CBS weight of every
        candidate comparison of ``pid`` in a single pass (``pid`` itself is
        removed from the result).  With ``source`` given on a Clean-Clean
        collection, only cross-source partners are counted.
        """
        counts: Counter = Counter()
        if self.clean_clean and source is not None:
            other = 1 - source
            for block in self.iter_partner_blocks(pid):
                members = block.members_by_source.get(other)
                if members:
                    counts.update(members)
        else:
            for block in self.iter_partner_blocks(pid):
                for members in block.members_by_source.values():
                    counts.update(members)
            del counts[pid]
        return counts

    def profiles_indexed(self) -> int:
        return len(self._blocks_of)

    def is_indexed(self, pid: int) -> bool:
        return pid in self._blocks_of

    def total_comparisons(self) -> int:
        """Aggregate ||b|| over all live blocks (with multiplicity).

        Maintained incrementally, so this is O(1) — it is consulted on every
        increment by the GLOBAL baseline adaptations.
        """
        return self._total_comparisons

    def keys(self) -> Iterable[str]:
        return self._blocks.keys()

    def purged_keys(self) -> frozenset[str]:
        return frozenset(self._purged_keys)

    def allows_pair(self, pid_x: int, pid_y: int) -> bool:
        """Candidate pre-filter hook: may this pair become a candidate?

        Token blocking never prunes (``prunes_candidates`` is ``False``, so
        callers do not even dispatch here); the LSH prefilter substrate
        overrides this with a signature co-bucket test.
        """
        return True

    def drain_metrics(self) -> dict[str, float]:
        """Counter deltas accumulated since the last drain (then reset).

        Substrates with their own telemetry (``blocking.lsh.*``) buffer it
        on the collection — which rides through checkpoints via deepcopy —
        and the owning system flushes the deltas into the run's metrics
        registry at its ingest/idle boundaries.  The token substrate has
        nothing to report.
        """
        return {}

    def common_blocks(self, pid_x: int, pid_y: int) -> int:
        """|B(p_x) ∩ B(p_y)| — the raw ingredient of the CBS weight."""
        keys_x = self._blocks_of.get(pid_x)
        keys_y = self._blocks_of.get(pid_y)
        if not keys_x or not keys_y:
            return 0
        if len(keys_x) > len(keys_y):
            keys_x, keys_y = keys_y, keys_x
        return sum(1 for key in keys_x if key in keys_y)

    def __repr__(self) -> str:
        return (
            f"BlockCollection(blocks={len(self._blocks)}, "
            f"profiles={len(self._blocks_of)}, purged={len(self._purged_keys)})"
        )
