"""Block cleaning techniques: ghosting and filtering.

Block *purging* (dropping oversized blocks globally) lives inside
:class:`~repro.blocking.blocks.BlockCollection` because it is part of
incremental index maintenance.  This module implements the per-profile
cleaning steps applied at comparison-generation time:

* **Block ghosting** (Gazzarri & Herschel, ICDE 2021) — given the set of
  blocks ``B_x`` containing a profile ``p_x``, drop the least representative
  (largest) blocks: every block ``b`` with ``|b| > |b_min| / β`` is removed,
  where ``b_min`` is the smallest block in ``B_x`` and ``β ∈ (0, 1]``.
  Smaller β keeps more blocks; β = 1 keeps only blocks as small as the
  smallest.
* **Block filtering** (Papadakis et al.) — keep only the ``ratio`` fraction
  of smallest blocks per profile; provided as an optional alternative
  cleaning stage.
"""

from __future__ import annotations

from repro.blocking.blocks import Block

__all__ = ["block_ghosting", "block_filtering"]


def block_ghosting(blocks: list[Block], beta: float) -> list[Block]:
    """Apply block ghosting to a profile's block list.

    Returns the blocks whose size does not exceed ``|b_min| / beta``.  The
    result preserves the input order.  An empty input yields an empty list.
    """
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    if not blocks:
        return []
    min_size = min(len(block) for block in blocks)
    threshold = min_size / beta
    return [block for block in blocks if len(block) <= threshold]


def block_filtering(blocks: list[Block], ratio: float) -> list[Block]:
    """Keep the ``ratio`` fraction of smallest blocks (at least one).

    Standard block filtering: a profile's largest blocks contribute mostly
    superfluous comparisons, so each profile retains only its smallest
    blocks.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    if not blocks:
        return []
    keep = max(1, int(round(len(blocks) * ratio)))
    return sorted(blocks, key=len)[:keep]
