"""Blocking substrates (token, MinHash-LSH) and block cleaning."""

from repro.blocking.blocks import Block, BlockCollection
from repro.blocking.cleaning import block_filtering, block_ghosting
from repro.blocking.lsh import LSHBlockCollection, LSHPrefilterCollection, MinHasher
from repro.blocking.substrate import (
    BLOCKING_SUBSTRATES,
    BlockingConfig,
    BlockingSubstrate,
    make_collection,
)
from repro.blocking.token_blocking import BlockingCosts, IncrementalTokenBlocking

__all__ = [
    "BLOCKING_SUBSTRATES",
    "Block",
    "BlockCollection",
    "BlockingConfig",
    "BlockingCosts",
    "BlockingSubstrate",
    "IncrementalTokenBlocking",
    "LSHBlockCollection",
    "LSHPrefilterCollection",
    "MinHasher",
    "block_filtering",
    "block_ghosting",
    "make_collection",
]
