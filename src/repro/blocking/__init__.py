"""Incremental token blocking and block cleaning."""

from repro.blocking.blocks import Block, BlockCollection
from repro.blocking.cleaning import block_filtering, block_ghosting
from repro.blocking.token_blocking import BlockingCosts, IncrementalTokenBlocking

__all__ = [
    "Block",
    "BlockCollection",
    "BlockingCosts",
    "IncrementalTokenBlocking",
    "block_filtering",
    "block_ghosting",
]
