"""Incremental blocking — the Incremental Blocking framework component.

This component receives data increments, indexes their profiles into the
shared blocking substrate, and charges virtual time for the work done
(tokenization + per-key index updates).  It mirrors the "Incremental
Blocking" box of the paper's Figure 3: it outputs the maintained block
collection together with the increment that was just indexed, and it can
emit *empty* increments to trigger downstream prioritization when no new
data is available.

The substrate defaults to token blocking (the class predates the substrate
protocol, hence its name); a :class:`~repro.blocking.substrate.BlockingConfig`
swaps in the MinHash-LSH tier or the LSH prefilter without touching any
consumer — everything downstream reads the collection through the
:class:`~repro.blocking.substrate.BlockingSubstrate` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.substrate import BlockingConfig, BlockingSubstrate, make_collection
from repro.core.increments import Increment
from repro.core.profile import EntityProfile

__all__ = ["BlockingCosts", "IncrementalTokenBlocking"]


@dataclass(frozen=True, slots=True)
class BlockingCosts:
    """Virtual cost parameters of the blocking step.

    ``per_profile`` covers reading/scrubbing/tokenizing one profile;
    ``per_token`` covers one inverted-index update.
    """

    per_profile: float = 5e-5
    per_token: float = 2e-6


class IncrementalTokenBlocking:
    """Maintains a blocking substrate across increments, with cost accounting.

    ``blocking`` selects the substrate (token / lsh / lsh-prefilter);
    ``None`` keeps the historic token-blocking default.
    """

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        costs: BlockingCosts | None = None,
        blocking: BlockingConfig | None = None,
    ) -> None:
        self.collection: BlockingSubstrate = make_collection(
            blocking, clean_clean=clean_clean, max_block_size=max_block_size
        )
        self.costs = costs or BlockingCosts()
        self.profiles_processed = 0
        self.total_cost = 0.0
        self._profiles: dict[int, EntityProfile] = {}

    def process_increment(self, increment: Increment) -> float:
        """Index all profiles of an increment; return the virtual cost."""
        cost = 0.0
        for profile in increment:
            cost += self.process_profile(profile)
        return cost

    def process_profile(self, profile: EntityProfile) -> float:
        """Index one profile; return the virtual cost charged."""
        self.collection.add_profile(profile)
        self._profiles[profile.pid] = profile
        self.profiles_processed += 1
        cost = self.costs.per_profile + self.costs.per_token * len(profile.tokens())
        self.total_cost += cost
        return cost

    # ------------------------------------------------------------------
    # Profile store (the pipeline needs profiles back by pid when matching)
    # ------------------------------------------------------------------
    def profile(self, pid: int) -> EntityProfile:
        return self._profiles[pid]

    def get_profile(self, pid: int) -> EntityProfile | None:
        return self._profiles.get(pid)

    def known_profiles(self) -> int:
        return len(self._profiles)
