"""Datasets and ground truth.

A :class:`Dataset` bundles entity profiles with the ground-truth match set
used for evaluation.  Two ER task kinds are supported, mirroring the paper:

* **Dirty ER** — one collection that contains duplicates; every pair of
  distinct profiles is a potential comparison.
* **Clean-Clean ER** — two duplicate-free collections; only cross-source
  pairs are potential comparisons.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.comparison import canonical_pair
from repro.core.profile import EntityProfile

__all__ = ["ERKind", "GroundTruth", "Dataset"]


class ERKind(enum.Enum):
    """The ER task flavour of a dataset."""

    DIRTY = "dirty"
    CLEAN_CLEAN = "clean-clean"


class GroundTruth:
    """The set of true matches of a dataset, as canonical pid pairs."""

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Iterable[tuple[int, int]] = ()) -> None:
        self._pairs: frozenset[tuple[int, int]] = frozenset(
            canonical_pair(x, y) for x, y in pairs
        )

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return canonical_pair(*pair) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._pairs)

    def pair_completeness(self, found: Iterable[tuple[int, int]]) -> float:
        """PC = |found ∩ truth| / |truth| (1.0 for an empty truth set)."""
        if not self._pairs:
            return 1.0
        hits = sum(1 for pair in found if canonical_pair(*pair) in self._pairs)
        return hits / len(self._pairs)


class Dataset:
    """A named collection of profiles plus ground truth.

    Parameters
    ----------
    name:
        Human-readable dataset key (e.g. ``"movies"``).
    profiles:
        All profiles.  For Clean-Clean ER, profiles carry ``source`` 0 or 1.
    ground_truth:
        True matches, used only for evaluation — never by the algorithms.
    kind:
        Dirty or Clean-Clean.
    """

    __slots__ = ("name", "profiles", "ground_truth", "kind", "_by_pid")

    def __init__(
        self,
        name: str,
        profiles: Sequence[EntityProfile],
        ground_truth: GroundTruth,
        kind: ERKind,
    ) -> None:
        self.name = name
        self.profiles: tuple[EntityProfile, ...] = tuple(profiles)
        self.ground_truth = ground_truth
        self.kind = kind
        self._by_pid: dict[int, EntityProfile] = {p.pid: p for p in self.profiles}
        if len(self._by_pid) != len(self.profiles):
            raise ValueError(f"dataset {name!r} contains duplicate profile ids")
        if kind is ERKind.CLEAN_CLEAN:
            sources = {p.source for p in self.profiles}
            if not sources <= {0, 1}:
                raise ValueError(
                    f"clean-clean dataset {name!r} must use sources 0/1, got {sorted(sources)}"
                )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self) -> Iterator[EntityProfile]:
        return iter(self.profiles)

    def __getitem__(self, pid: int) -> EntityProfile:
        return self._by_pid[pid]

    def get(self, pid: int) -> EntityProfile | None:
        return self._by_pid.get(pid)

    def source_sizes(self) -> dict[int, int]:
        """Number of profiles per source collection."""
        sizes: dict[int, int] = {}
        for profile in self.profiles:
            sizes[profile.source] = sizes.get(profile.source, 0) + 1
        return sizes

    # ------------------------------------------------------------------
    # Comparison validity
    # ------------------------------------------------------------------
    def comparison_predicate(self) -> Callable[[EntityProfile, EntityProfile], bool]:
        """Return the predicate deciding whether a pair is a valid candidate.

        Dirty ER admits every pair of distinct profiles; Clean-Clean ER only
        admits cross-source pairs.  All blocking/prioritization components
        consult this predicate so that Clean-Clean never generates
        intra-source comparisons (matching the paper's setup).
        """
        if self.kind is ERKind.DIRTY:
            return lambda px, py: px.pid != py.pid
        return lambda px, py: px.pid != py.pid and px.source != py.source

    def describe(self) -> dict[str, object]:
        """Summary statistics in the style of the paper's Table 1."""
        sizes = self.source_sizes()
        return {
            "name": self.name,
            "kind": self.kind.value,
            "profiles": len(self.profiles),
            "profiles_by_source": sizes,
            "matches": len(self.ground_truth),
        }

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, kind={self.kind.value}, "
            f"profiles={len(self.profiles)}, matches={len(self.ground_truth)})"
        )
