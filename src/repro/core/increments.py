"""Splitting datasets into data increments and describing streams.

The paper evaluates PIER over sequences of equi-sized increments arriving at
a fixed rate (e.g. 30000 increments at 32 ΔD/s).  This module produces those
increment sequences deterministically and bundles them with arrival times
into a :class:`StreamPlan` consumed by the streaming engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.dataset import Dataset
from repro.core.profile import EntityProfile

__all__ = [
    "Increment",
    "StreamPlan",
    "split_into_increments",
    "make_stream_plan",
    "make_poisson_stream_plan",
    "make_bursty_stream_plan",
]


@dataclass(frozen=True, slots=True)
class Increment:
    """A data increment ΔD_i: the profiles that become available together."""

    index: int
    profiles: tuple[EntityProfile, ...]

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self) -> Iterator[EntityProfile]:
        return iter(self.profiles)

    @property
    def is_empty(self) -> bool:
        return not self.profiles


def split_into_increments(
    dataset: Dataset,
    n_increments: int,
    seed: int = 0,
    shuffle: bool = True,
) -> list[Increment]:
    """Split a dataset into ``n_increments`` (nearly) equi-sized increments.

    For Clean-Clean datasets the two source collections are interleaved so
    that matches span increments — the situation PIER's *globality* property
    is designed for.  The split is deterministic for a given seed.
    """
    if n_increments < 1:
        raise ValueError("n_increments must be >= 1")
    profiles = list(dataset.profiles)
    if shuffle:
        rng = random.Random(seed)
        rng.shuffle(profiles)
    n_increments = min(n_increments, max(1, len(profiles)))
    base, extra = divmod(len(profiles), n_increments)
    increments: list[Increment] = []
    cursor = 0
    for index in range(n_increments):
        size = base + (1 if index < extra else 0)
        chunk = tuple(profiles[cursor : cursor + size])
        cursor += size
        increments.append(Increment(index=index, profiles=chunk))
    return increments


@dataclass(frozen=True, slots=True)
class StreamPlan:
    """A sequence of increments together with their arrival times.

    ``arrival_times[i]`` is the (virtual) time at which ``increments[i]``
    becomes available to the pipeline.  ``rate`` is retained for reporting.

    Plans are validated at construction: arrival times must be finite,
    non-negative and non-decreasing (the engines' ``bisect``-based backlog
    computation silently corrupts otherwise), and increment ids must be
    unique — unless ``allow_redelivery`` is set, which fault-injected plans
    use to model at-least-once delivery (the engines deduplicate by id).
    """

    increments: tuple[Increment, ...]
    arrival_times: tuple[float, ...]
    rate: float | None = None
    allow_redelivery: bool = False

    def __post_init__(self) -> None:
        if len(self.increments) != len(self.arrival_times):
            raise ValueError("increments and arrival_times must align")
        previous = 0.0
        for time in self.arrival_times:
            if not math.isfinite(time):
                raise ValueError(f"arrival times must be finite, got {time}")
            if time < 0.0:
                raise ValueError(f"arrival times must be non-negative, got {time}")
            if time < previous:
                raise ValueError("arrival times must be non-decreasing")
            previous = time
        if not self.allow_redelivery:
            ids = [increment.index for increment in self.increments]
            if len(set(ids)) != len(ids):
                raise ValueError(
                    "increment ids must be unique (pass allow_redelivery=True "
                    "for at-least-once delivery plans)"
                )

    def __len__(self) -> int:
        return len(self.increments)

    def __iter__(self) -> Iterator[tuple[float, Increment]]:
        return iter(zip(self.arrival_times, self.increments))

    @property
    def total_profiles(self) -> int:
        return sum(len(increment) for increment in self.increments)

    @property
    def last_arrival(self) -> float:
        return self.arrival_times[-1] if self.arrival_times else 0.0


def make_stream_plan(
    increments: Sequence[Increment],
    rate: float | None = None,
    start_time: float = 0.0,
) -> StreamPlan:
    """Attach arrival times to increments.

    ``rate`` is the increment input rate in ΔD per virtual second; ``None``
    means a *static* setting where every increment is available at
    ``start_time`` (the batch/progressive experiments of the paper).
    """
    if rate is not None and rate <= 0:
        raise ValueError("rate must be positive (or None for static data)")
    if rate is None:
        times = tuple(start_time for _ in increments)
    else:
        interval = 1.0 / rate
        times = tuple(start_time + i * interval for i in range(len(increments)))
    return StreamPlan(increments=tuple(increments), arrival_times=times, rate=rate)


def make_poisson_stream_plan(
    increments: Sequence[Increment],
    rate: float,
    seed: int = 0,
    start_time: float = 0.0,
) -> StreamPlan:
    """Arrival times from a Poisson process with mean ``rate`` ΔD/s.

    The paper's problem statement allows "a possibly varying rate"; a
    Poisson process is the standard model for irregular arrivals.  The plan
    is deterministic for a given seed.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    times: list[float] = []
    clock = start_time
    for _ in increments:
        times.append(clock)
        clock += rng.expovariate(rate)
    return StreamPlan(increments=tuple(increments), arrival_times=tuple(times), rate=rate)


def make_bursty_stream_plan(
    increments: Sequence[Increment],
    burst_size: int,
    burst_interval: float,
    start_time: float = 0.0,
) -> StreamPlan:
    """Arrivals in bursts: ``burst_size`` increments land simultaneously
    every ``burst_interval`` virtual seconds.

    Models batch-exporting upstream sources (e.g. periodic sensor dumps in
    the paper's construction scenario).
    """
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_interval <= 0:
        raise ValueError("burst_interval must be positive")
    times = tuple(
        start_time + (index // burst_size) * burst_interval
        for index in range(len(increments))
    )
    return StreamPlan(increments=tuple(increments), arrival_times=times, rate=None)
