"""Comparison candidates.

A comparison is an unordered pair of profile ids.  The pair is always stored
in canonical order (``left < right``) so that set/bloom-filter membership and
deduplication behave consistently across all prioritization strategies.
"""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = ["Comparison", "WeightedComparison", "canonical_pair"]


def canonical_pair(pid_x: int, pid_y: int) -> tuple[int, int]:
    """Return the pair ``(min, max)`` — the canonical identity of a comparison."""
    if pid_x == pid_y:
        raise ValueError(f"a profile cannot be compared with itself (pid={pid_x})")
    if pid_x < pid_y:
        return (pid_x, pid_y)
    return (pid_y, pid_x)


class Comparison(NamedTuple):
    """An unweighted comparison candidate between two profiles."""

    left: int
    right: int

    @classmethod
    def of(cls, pid_x: int, pid_y: int) -> "Comparison":
        return cls(*canonical_pair(pid_x, pid_y))

    def involves(self, pid: int) -> bool:
        return pid == self.left or pid == self.right

    def other(self, pid: int) -> int:
        """Return the partner of ``pid`` in this comparison."""
        if pid == self.left:
            return self.right
        if pid == self.right:
            return self.left
        raise ValueError(f"profile {pid} is not part of comparison {self}")


class WeightedComparison(NamedTuple):
    """A comparison candidate annotated with a match-likelihood weight.

    ``weight`` is either a float (I-PCS, I-PES: a meta-blocking weight such
    as CBS) or any comparable key (I-PBS uses ``(-block_size, cbs)`` pairs so
    that smaller generating blocks win and CBS breaks ties).  Priority queues
    in this library order *descending* by weight.
    """

    left: int
    right: int
    weight: Any

    @classmethod
    def of(cls, pid_x: int, pid_y: int, weight: Any) -> "WeightedComparison":
        pair = canonical_pair(pid_x, pid_y)
        return cls(pair[0], pair[1], weight)

    @property
    def pair(self) -> tuple[int, int]:
        return (self.left, self.right)

    def comparison(self) -> Comparison:
        return Comparison(self.left, self.right)
