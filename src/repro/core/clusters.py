"""Entity clustering: turning pairwise duplicates into entity clusters.

ER pipelines output pairwise matches; applications usually need the
*entities* — the transitive closure of the match relation.  This module
provides a classic union-find and an :class:`EntityClusters` view that is
maintainable incrementally (add matches as the stream discovers them).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["UnionFind", "EntityClusters"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    __slots__ = ("_parent", "_size")

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}

    def find(self, item: int) -> int:
        """Representative of ``item``'s set (item itself if never seen)."""
        parent = self._parent
        if item not in parent:
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, left: int, right: int) -> bool:
        """Merge the sets of ``left`` and ``right``; True if they were
        separate."""
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return False
        for item in (root_left, root_right):
            if item not in self._parent:
                self._parent[item] = item
                self._size[item] = 1
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        return True

    def connected(self, left: int, right: int) -> bool:
        return self.find(left) == self.find(right)

    def component_size(self, item: int) -> int:
        root = self.find(item)
        return self._size.get(root, 1)


class EntityClusters:
    """Incrementally maintained entity clusters over matched pairs.

    Feed it duplicate pairs as they are found; query clusters at any time.
    Only profiles that appear in at least one match are tracked (singletons
    are implicit).
    """

    def __init__(self, matches: Iterable[tuple[int, int]] = ()) -> None:
        self._union_find = UnionFind()
        self._members: set[int] = set()
        for left, right in matches:
            self.add_match(left, right)

    def add_match(self, left: int, right: int) -> bool:
        """Record a duplicate pair; True if it merged two clusters."""
        if left == right:
            raise ValueError("a profile cannot match itself")
        self._members.add(left)
        self._members.add(right)
        return self._union_find.union(left, right)

    def cluster_of(self, pid: int) -> frozenset[int]:
        """All profiles matched (transitively) with ``pid``, including it."""
        if pid not in self._members:
            return frozenset({pid})
        root = self._union_find.find(pid)
        return frozenset(
            member for member in self._members if self._union_find.find(member) == root
        )

    def are_same_entity(self, left: int, right: int) -> bool:
        if left == right:
            return True
        if left not in self._members or right not in self._members:
            return False
        return self._union_find.connected(left, right)

    def clusters(self) -> Iterator[frozenset[int]]:
        """All non-singleton clusters."""
        by_root: dict[int, set[int]] = {}
        for member in self._members:
            by_root.setdefault(self._union_find.find(member), set()).add(member)
        for members in by_root.values():
            yield frozenset(members)

    def __len__(self) -> int:
        """Number of non-singleton clusters."""
        return sum(1 for _ in self.clusters())

    def pair_count(self) -> int:
        """Total implied duplicate pairs (Σ C(|cluster|, 2))."""
        return sum(
            len(cluster) * (len(cluster) - 1) // 2 for cluster in self.clusters()
        )
