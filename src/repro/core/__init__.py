"""Core data model: profiles, comparisons, datasets, increments, clusters."""

from repro.core.clusters import EntityClusters, UnionFind
from repro.core.comparison import Comparison, WeightedComparison, canonical_pair
from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.increments import (
    Increment,
    StreamPlan,
    make_bursty_stream_plan,
    make_poisson_stream_plan,
    make_stream_plan,
    split_into_increments,
)
from repro.core.profile import Attribute, EntityProfile
from repro.core.tokenizer import Tokenizer, default_tokenizer

__all__ = [
    "Attribute",
    "Comparison",
    "Dataset",
    "ERKind",
    "EntityClusters",
    "EntityProfile",
    "GroundTruth",
    "Increment",
    "StreamPlan",
    "Tokenizer",
    "UnionFind",
    "WeightedComparison",
    "canonical_pair",
    "default_tokenizer",
    "make_bursty_stream_plan",
    "make_poisson_stream_plan",
    "make_stream_plan",
    "split_into_increments",
]
