"""Schema-agnostic entity profiles.

An :class:`EntityProfile` is the atomic unit of input data in the PIER
framework.  Profiles are *schema agnostic*: they carry a bag of
attribute-value pairs whose attribute names are never interpreted by any
algorithm in this library.  All blocking and weighting decisions are based
solely on the tokens appearing in attribute values, following the
schema-agnostic ER literature (Papadakis et al.; Simonini et al.; Gazzarri &
Herschel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.tokenizer import Tokenizer, default_tokenizer

__all__ = ["Attribute", "EntityProfile"]


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single attribute-value pair of an entity profile.

    Attribute names are opaque labels: the ER algorithms never rely on them,
    which is what makes the pipeline applicable to heterogeneous data where
    profiles of the same real-world entity may use disjoint vocabularies.
    """

    name: str
    value: str

    def __post_init__(self) -> None:
        if not isinstance(self.value, str):
            raise TypeError(f"attribute value must be str, got {type(self.value).__name__}")


class EntityProfile:
    """A profile describing one real-world entity candidate.

    Parameters
    ----------
    pid:
        Globally unique integer identifier.  Identifiers are assigned by the
        data reader and are stable for the lifetime of a stream.
    attributes:
        Either a mapping ``{name: value}`` or an iterable of
        ``(name, value)`` pairs / :class:`Attribute` objects.  Values must be
        strings; ``None`` values are dropped.
    source:
        Identifier of the originating collection.  For Dirty ER all profiles
        share source ``0``; for Clean-Clean ER the two clean collections use
        sources ``0`` and ``1`` and only cross-source pairs are candidates.
    """

    __slots__ = ("pid", "source", "attributes", "_tokens", "_text_length")

    def __init__(
        self,
        pid: int,
        attributes: Mapping[str, str] | Iterable[tuple[str, str] | Attribute] = (),
        source: int = 0,
    ) -> None:
        if pid < 0:
            raise ValueError(f"profile id must be non-negative, got {pid}")
        self.pid = int(pid)
        self.source = int(source)
        self.attributes: tuple[Attribute, ...] = _normalize_attributes(attributes)
        self._tokens: frozenset[str] | None = None
        self._text_length: int | None = None

    # ------------------------------------------------------------------
    # Token view
    # ------------------------------------------------------------------
    def tokens(self, tokenizer: Tokenizer | None = None) -> frozenset[str]:
        """Return the set of blocking tokens of this profile.

        The token set produced with the *default* tokenizer is cached because
        every component of the pipeline (blocking, weighting, Jaccard
        matching) re-reads it.  Passing a custom tokenizer bypasses the
        cache.
        """
        if tokenizer is not None:
            return frozenset(tokenizer.tokenize_profile(self.values()))
        if self._tokens is None:
            self._tokens = frozenset(default_tokenizer().tokenize_profile(self.values()))
        return self._tokens

    def values(self) -> Iterator[str]:
        """Yield all attribute values of this profile."""
        for attribute in self.attributes:
            yield attribute.value

    def text(self) -> str:
        """Return the concatenation of all values (used by edit distance)."""
        return " ".join(self.values())

    def text_length(self) -> int:
        """Total number of characters across values (cost-model input)."""
        if self._text_length is None:
            total = sum(len(attribute.value) for attribute in self.attributes)
            # account for separating blanks inserted by text()
            if self.attributes:
                total += len(self.attributes) - 1
            self._text_length = total
        return self._text_length

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityProfile):
            return NotImplemented
        return self.pid == other.pid

    def __hash__(self) -> int:
        return hash(self.pid)

    def __copy__(self) -> "EntityProfile":
        # Profiles are immutable (and their token cache idempotent), so
        # copies — notably the deep copies checkpointing performs over
        # system state — can alias the original.
        return self

    def __deepcopy__(self, memo: dict) -> "EntityProfile":
        return self

    def __repr__(self) -> str:
        preview = ", ".join(f"{a.name}={a.value!r}" for a in self.attributes[:2])
        suffix = ", ..." if len(self.attributes) > 2 else ""
        return f"EntityProfile(pid={self.pid}, source={self.source}, {preview}{suffix})"


def _normalize_attributes(
    attributes: Mapping[str, str] | Iterable[tuple[str, str] | Attribute],
) -> tuple[Attribute, ...]:
    if isinstance(attributes, Mapping):
        pairs: Iterable[tuple[str, str] | Attribute] = attributes.items()
    else:
        pairs = attributes
    normalized: list[Attribute] = []
    for pair in pairs:
        if isinstance(pair, Attribute):
            attribute = pair
        else:
            name, value = pair
            if value is None:
                continue
            attribute = Attribute(str(name), str(value))
        if attribute.value:
            normalized.append(attribute)
    return tuple(normalized)
