"""Schema-agnostic tokenization of attribute values.

Token blocking treats every token appearing in any attribute value as a
blocking key.  The tokenizer is deliberately simple — lowercase, split on
non-alphanumeric characters — matching the standard schema-agnostic setup
used in the paper and in JedAI.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterable, Iterator

__all__ = ["Tokenizer", "default_tokenizer"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

# A tiny stopword list: extremely frequent glue words produce enormous,
# uninformative blocks that block purging would drop anyway; filtering them
# at tokenization time keeps the block index lean.
_DEFAULT_STOPWORDS = frozenset(
    "a an and are as at be by for from in is it of on or the to with".split()
)


class Tokenizer:
    """Configurable value tokenizer.

    Parameters
    ----------
    min_length:
        Tokens shorter than this are dropped (single characters rarely make
        useful blocking keys).
    stopwords:
        Tokens to drop regardless of length.
    max_tokens_per_value:
        Safety valve for pathological values; ``None`` disables the cap.
    """

    __slots__ = ("min_length", "stopwords", "max_tokens_per_value")

    def __init__(
        self,
        min_length: int = 2,
        stopwords: frozenset[str] = _DEFAULT_STOPWORDS,
        max_tokens_per_value: int | None = None,
    ) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        self.min_length = min_length
        self.stopwords = frozenset(stopwords)
        self.max_tokens_per_value = max_tokens_per_value

    def tokenize(self, value: str) -> Iterator[str]:
        """Yield the tokens of a single attribute value."""
        count = 0
        for match in _TOKEN_PATTERN.finditer(value.lower()):
            token = match.group()
            if len(token) < self.min_length or token in self.stopwords:
                continue
            yield token
            count += 1
            if self.max_tokens_per_value is not None and count >= self.max_tokens_per_value:
                return

    def tokenize_profile(self, values: Iterable[str]) -> set[str]:
        """Return the union of tokens across all values of a profile."""
        tokens: set[str] = set()
        for value in values:
            tokens.update(self.tokenize(value))
        return tokens


@lru_cache(maxsize=1)
def default_tokenizer() -> Tokenizer:
    """The tokenizer shared by all components unless overridden."""
    return Tokenizer()
