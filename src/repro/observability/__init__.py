"""Pipeline observability: counters, phase timers, per-round gauges.

See ``docs/observability.md`` for the metric catalogue and the snapshot
JSON schema.
"""

from repro.observability.metrics import (
    SCHEMA_VERSION,
    MetricsRegistry,
    PhaseTotals,
    RoundLog,
)

__all__ = ["SCHEMA_VERSION", "MetricsRegistry", "PhaseTotals", "RoundLog"]
