"""Zero-dependency run instrumentation: counters, phase timers, round log.

The streaming engines, the PIER strategies, the baselines and the matchers
all report into one :class:`MetricsRegistry` per run.  The registry is the
single source of truth for *what the pipeline actually did*: how much
virtual (and wall) time each phase consumed, how the adaptive ``K`` and the
ingestion backlog evolved round by round, and how many comparisons were
enqueued, executed, deduplicated or cut off by the budget deadline.

Design constraints (in order):

1. **Deterministic.**  Everything derived from the virtual clock is exactly
   reproducible across runs and hosts; wall-clock figures are clearly
   separated (``wall_s`` fields) so exports can strip them.
2. **Cheap.**  Recording a counter is one dict operation; the per-round log
   is bounded by deterministic stride doubling, so month-long virtual runs
   cannot exhaust memory.
3. **Dependency-free and schema-stable.**  :meth:`MetricsRegistry.snapshot`
   emits plain dicts/lists/scalars documented in ``docs/observability.md``
   and guarded by ``SCHEMA_VERSION``; the benchmark smoke harness fails on
   unannounced schema drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["SCHEMA_VERSION", "PhaseTotals", "PhaseTimer", "RoundLog", "MetricsRegistry"]

#: Bump whenever the structure (not the values) of :meth:`snapshot` changes,
#: and update ``docs/observability.md`` plus the checked-in BENCH baselines.
SCHEMA_VERSION = 1


@dataclass(slots=True)
class PhaseTotals:
    """Accumulated time of one named pipeline phase."""

    virtual_s: float = 0.0
    wall_s: float = 0.0
    count: int = 0

    def add(self, virtual_s: float, wall_s: float = 0.0) -> None:
        self.virtual_s += virtual_s
        self.wall_s += wall_s
        self.count += 1


class RoundLog:
    """Bounded log of per-round gauge samples.

    Every emission round offers one sample (a flat ``str -> number | None``
    dict).  When the log exceeds ``max_samples``, every other retained
    sample is dropped and the sampling stride doubles — so the log always
    covers the whole run at uniform density, stays within a fixed memory
    bound, and behaves identically on every host (no randomness, no time).
    """

    __slots__ = ("max_samples", "stride", "_samples", "_offered")

    def __init__(self, max_samples: int = 512) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.max_samples = max_samples
        self.stride = 1
        self._samples: list[dict[str, float | int | None]] = []
        self._offered = 0

    def offer(self, sample: dict[str, float | int | None]) -> None:
        """Record ``sample`` if the current stride selects this round."""
        index = self._offered
        self._offered += 1
        if index % self.stride:
            return
        self._samples.append(sample)
        if len(self._samples) > self.max_samples:
            self._samples = self._samples[::2]
            self.stride *= 2

    @property
    def offered(self) -> int:
        return self._offered

    @property
    def samples(self) -> list[dict[str, float | int | None]]:
        return list(self._samples)

    # -- checkpoint support ---------------------------------------------
    def dump_state(self) -> dict[str, object]:
        return {
            "max_samples": self.max_samples,
            "stride": self.stride,
            "offered": self._offered,
            "samples": [dict(sample) for sample in self._samples],
        }

    def load_state(self, state: dict[str, object]) -> None:
        self.max_samples = state["max_samples"]
        self.stride = state["stride"]
        self._offered = state["offered"]
        self._samples = [dict(sample) for sample in state["samples"]]


class MetricsRegistry:
    """Named counters, gauges, phase timers and the per-round log of one run."""

    __slots__ = ("_counters", "_gauges", "_phases", "rounds")

    def __init__(self, max_round_samples: int = 512) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._phases: dict[str, PhaseTotals] = {}
        self.rounds = RoundLog(max_samples=max_round_samples)

    # -- counters -------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named monotone counter."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge (e.g. final bloom slice count)."""
        self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0) -> float:
        return self._gauges.get(name, default)

    # -- phase timers ---------------------------------------------------
    def phase(self, name: str) -> PhaseTotals:
        totals = self._phases.get(name)
        if totals is None:
            totals = self._phases[name] = PhaseTotals()
        return totals

    def time_phase(self, name: str) -> "_PhaseTimer":
        """Context manager charging wall time (and optional virtual time).

        Usage::

            with metrics.time_phase("match") as timer:
                ...
                timer.virtual += cost
        """
        return _PhaseTimer(self.phase(name))

    # -- per-round samples ---------------------------------------------
    def record_round(self, **sample: float | int | None) -> None:
        self.rounds.offer(sample)

    # -- checkpoint support ---------------------------------------------
    def dump_state(self) -> dict[str, object]:
        """Everything :meth:`load_state` needs to rebuild this registry.

        Unlike :meth:`snapshot` (the reporting export), the dump keeps wall
        times and the round log's internal cursor, so a restored registry
        continues accumulating exactly where the original stopped.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "phases": {
                name: (totals.virtual_s, totals.wall_s, totals.count)
                for name, totals in self._phases.items()
            },
            "rounds": self.rounds.dump_state(),
        }

    def load_state(self, state: dict[str, object]) -> None:
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._phases = {
            name: PhaseTotals(virtual_s, wall_s, count)
            for name, (virtual_s, wall_s, count) in state["phases"].items()
        }
        self.rounds.load_state(state["rounds"])

    # -- export ---------------------------------------------------------
    def snapshot(self, include_wall: bool = True) -> dict[str, object]:
        """The run's metrics as a JSON-serializable dict.

        With ``include_wall=False`` every host-dependent field is dropped,
        so the result is byte-for-byte reproducible across machines — the
        form the benchmark baselines are stored in.
        """
        phases: dict[str, dict[str, float | int]] = {}
        for name in sorted(self._phases):
            totals = self._phases[name]
            entry: dict[str, float | int] = {
                "virtual_s": totals.virtual_s,
                "count": totals.count,
            }
            if include_wall:
                entry["wall_s"] = totals.wall_s
            phases[name] = entry
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "phases": phases,
            "rounds": {
                "offered": self.rounds.offered,
                "stride": self.rounds.stride,
                "samples": self.rounds.samples,
            },
        }


class _PhaseTimer:
    """Context manager produced by :meth:`MetricsRegistry.time_phase`."""

    __slots__ = ("_totals", "virtual", "_start")

    def __init__(self, totals: PhaseTotals) -> None:
        self._totals = totals
        self.virtual = 0.0
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._totals.add(self.virtual, time.perf_counter() - self._start)


#: Public name for the phase-timer type: the execution core passes timers
#: into its ingestion/matching helpers, so the type is part of its API.
PhaseTimer = _PhaseTimer
