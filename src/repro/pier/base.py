"""The PIER framework: Algorithm 1 plus shared strategy scaffolding.

:class:`PierSystem` implements Algorithm 1 of the paper once; the three
prioritization strategies (I-PCS, I-PBS, I-PES) plug in through the
:class:`IncrPrioritization` interface, exactly mirroring the paper's
``Strategy: IncrPrioritization`` parameter.

This module also hosts the two generation utilities shared across
strategies and the incremental baseline:

* :class:`ComparisonGenerator` — Algorithm 2 lines 1-9: for each new
  profile, gather candidates from its (block-ghosted) blocks and clean them
  with I-WNP, producing a weighted comparison list.
* :class:`GetComparisons` — the fallback of Algorithm 2 lines 10-11: when
  both the increment and the comparison index are empty, pull comparisons
  from the block collection, smallest block first, so useful work continues
  while waiting for the next increment.
"""

from __future__ import annotations

import copy
import heapq
from typing import Callable, Iterable

from repro.blocking.cleaning import block_ghosting
from repro.blocking.substrate import BlockingConfig, BlockingSubstrate
from repro.blocking.token_blocking import BlockingCosts, IncrementalTokenBlocking
from repro.core.comparison import WeightedComparison, canonical_pair
from repro.core.increments import Increment
from repro.core.profile import EntityProfile
from repro.execution.store import ComparisonStore
from repro.metablocking.sweep import partner_weights
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme
from repro.metablocking.wnp import incremental_wnp, sweep_wnp
from repro.priority.rates import AdaptiveK
from repro.streaming.system import EmitResult, ERSystem, PipelineCosts, PipelineStats

__all__ = ["ComparisonGenerator", "GetComparisons", "IncrPrioritization", "PierSystem"]


def _always_valid(pid: int) -> bool:
    return True


#: Marks a partner predicate as constant-true so the sweep kernel can skip
#: one Python call per candidate (see ``ComparisonGenerator.generate``).
_always_valid.always_true = True  # type: ignore[attr-defined]


class ComparisonGenerator:
    """Candidate generation for one newly arrived profile (Alg. 2, l. 1-9).

    Applies block ghosting with parameter β to the profile's block list,
    collects co-block partners that form valid comparisons, and cleans the
    candidate list with I-WNP.  Returns the surviving weighted comparisons
    together with the number of weighting operations performed (for cost
    accounting).

    By default candidates and weights come from the single-sweep kernel
    (:func:`~repro.metablocking.wnp.sweep_wnp`); ``per_pair=True`` selects
    the legacy one-``scheme.weight()``-call-per-candidate path, which is
    bit-identical and exists for bisection (``--per-pair-weighting``).
    """

    __slots__ = ("beta", "scheme", "per_pair")

    def __init__(
        self,
        beta: float = 0.2,
        scheme: WeightingScheme | None = None,
        per_pair: bool = False,
    ) -> None:
        self.beta = beta
        self.scheme = scheme or CommonBlocksScheme()
        self.per_pair = per_pair

    def generate(
        self,
        collection: BlockingSubstrate,
        profile: EntityProfile,
        valid_partner: Callable[[int], bool],
    ) -> tuple[tuple[WeightedComparison, ...], int]:
        if not self.per_pair:
            # Drop the per-candidate filter when the predicate declares
            # itself redundant: a constant-true predicate filters nothing,
            # and a cross-source-only predicate is already guaranteed by the
            # sweep reading only other-source member lists (source hint).
            predicate: Callable[[int], bool] | None = valid_partner
            if getattr(predicate, "always_true", False) or (
                collection.clean_clean
                and getattr(predicate, "cross_source_only", False)
            ):
                predicate = None
            result = sweep_wnp(
                collection,
                profile.pid,
                predicate,
                self.scheme,
                beta=self.beta,
                source=profile.source if collection.clean_clean else None,
            )
            return result.kept, result.weighting_cost_units
        blocks = block_ghosting(list(collection.blocks_of_as_blocks(profile.pid)), self.beta)
        candidates: list[int] = []
        for block in blocks:
            if collection.clean_clean:
                partners = block.members(1 - profile.source)
            else:
                partners = tuple(block)
            for pid in partners:
                if pid != profile.pid and valid_partner(pid):
                    candidates.append(pid)
        result = incremental_wnp(collection, profile.pid, candidates, self.scheme)
        return result.kept, result.weighting_cost_units


class GetComparisons:
    """Smallest-block-first comparison refill (Alg. 2, l. 10-11).

    Each :meth:`next_batch` call drains one eligible block (smallest first,
    by current size) and returns its valid, weighted comparisons.  A block
    is eligible if it has never been drained or has *grown* since its last
    drain — refills may fire in idle gaps mid-stream, so blocks that gain
    members afterwards must be revisited once the stream goes quiet.
    Already-executed pairs are filtered out by the caller-supplied
    predicate, so revisits only pay for the genuinely new comparisons.

    Weights come from the sweep kernel, one aggregate sweep per distinct
    left profile of the drained block (``per_pair=True`` restores the
    legacy one-call-per-pair weighting; results are bit-identical).
    """

    __slots__ = ("scheme", "per_pair", "_drained_size", "_heap")

    def __init__(
        self, scheme: WeightingScheme | None = None, per_pair: bool = False
    ) -> None:
        self.scheme = scheme or CommonBlocksScheme()
        self.per_pair = per_pair
        self._drained_size: dict[str, int] = {}
        # Cached min-heap of (size, key) over eligible blocks; rebuilt by a
        # full scan only when it runs dry, revalidated lazily on pop.
        self._heap: list[tuple[int, str]] = []

    def _eligible(self, block) -> bool:
        size = len(block)
        if size < 2:
            return False
        return size > self._drained_size.get(block.key, 0)

    def _pop_smallest(self, collection: BlockingSubstrate):
        """Smallest eligible block, or ``None``; amortizes scans via a heap."""
        for attempt in range(2):
            while self._heap:
                size, key = heapq.heappop(self._heap)
                block = collection.get(key)
                if block is None or not self._eligible(block):
                    continue
                if len(block) != size:
                    heapq.heappush(self._heap, (len(block), key))
                    continue
                return block
            if attempt == 0:
                self._heap = [
                    (len(block), block.key) for block in collection if self._eligible(block)
                ]
                heapq.heapify(self._heap)
        return None

    def next_batch(
        self,
        collection: BlockingSubstrate,
        already_executed: Callable[[int, int], bool],
    ) -> tuple[list[WeightedComparison], int] | None:
        """Drain the next eligible block.

        Returns ``None`` when no eligible block remains (exhausted), or a
        ``(weighted comparisons, weighting ops)`` tuple otherwise — possibly
        with an empty list when every pair of the block was executed before.
        """
        block = self._pop_smallest(collection)
        if block is None:
            return None
        self._drained_size[block.key] = len(block)
        prune = collection.allows_pair if collection.prunes_candidates else None
        pairs: list[tuple[int, int]] = []
        for pid_x, pid_y in block.pairs(collection.clean_clean):
            pair = canonical_pair(pid_x, pid_y)
            if prune is not None and not prune(*pair):
                continue
            if already_executed(*pair):
                continue
            pairs.append(pair)
        if self.per_pair:
            weighted = [
                WeightedComparison(left, right, self.scheme.weight(collection, left, right))
                for left, right in pairs
            ]
        else:
            by_left: dict[int, list[int]] = {}
            for left, right in pairs:
                by_left.setdefault(left, []).append(right)
            weights = {
                left: partner_weights(collection, left, rights, self.scheme)
                for left, rights in by_left.items()
            }
            weighted = [
                WeightedComparison(left, right, weights[left][right])
                for left, right in pairs
            ]
        return weighted, len(pairs)

    def is_exhausted(self, collection: BlockingSubstrate) -> bool:
        return not any(self._eligible(block) for block in collection)

    def reset(self) -> None:
        self._drained_size.clear()
        self._heap.clear()

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        return {"drained": dict(self._drained_size), "heap": list(self._heap)}

    def restore_state(self, state: dict[str, object]) -> None:
        self._drained_size = dict(state["drained"])
        self._heap = list(state["heap"])


class IncrPrioritization:
    """Strategy interface of Algorithm 1 (``IncrPrioritization``).

    Implementations maintain the global comparison index ``CmpIndex``.
    All methods that perform work return their virtual cost, computed from
    the shared :class:`PipelineCosts`.
    """

    name = "incr-prioritization"

    def bind_store(self, store: ComparisonStore) -> None:
        """Attach the host system's shared :class:`ComparisonStore`.

        Called once by :class:`PierSystem` before any ingestion.  Strategies
        with their own dedup structures (the Bloom filter of I-PBS) rebind
        them onto the store here so checkpoints serialize them exactly once;
        the default is a no-op.
        """

    def ingest_profiles(
        self,
        system: "PierSystem",
        profiles: Iterable[EntityProfile],
    ) -> float:
        """``updateCmpIndex`` for a non-empty increment."""
        raise NotImplementedError

    def on_empty_increment(self, system: "PierSystem") -> float:
        """``updateCmpIndex`` with an empty increment (refill trigger)."""
        raise NotImplementedError

    def dequeue(self) -> tuple[int, int] | None:
        """Retrieve and remove the best comparison, or ``None`` if empty."""
        raise NotImplementedError

    def gauges(self) -> dict[str, float]:
        """Strategy-specific gauge readings for the per-round metrics log."""
        return {}

    def __len__(self) -> int:
        raise NotImplementedError

    def exhausted(self, system: "PierSystem") -> bool:
        """No comparisons left and no refill possible."""
        raise NotImplementedError

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Deep copy of the strategy's ``CmpIndex`` state.

        The default walks ``__dict__``; strategies with custom serialization
        needs (e.g. the Bloom filter of I-PBS) override this.
        """
        return {key: copy.deepcopy(value) for key, value in self.__dict__.items()}

    def restore_state(self, state: dict[str, object]) -> None:
        self.__dict__.update(copy.deepcopy(state))


class PierSystem(ERSystem):
    """Algorithm 1: the progressive incremental ER framework.

    Wires incremental token blocking, a prioritization strategy, and the
    adaptive ``findK`` controller into one :class:`ERSystem`.

    Parameters
    ----------
    strategy:
        One of the I-PCS / I-PBS / I-PES strategies.
    clean_clean:
        ER task kind (drives candidate generation inside blocks).
    max_block_size:
        Incremental block-purging threshold.
    costs / blocking_costs:
        Virtual cost parameters.
    adaptive_k:
        The ``findK`` controller; a fresh default one if omitted.
    blocking:
        Blocking-substrate choice (token / lsh / lsh-prefilter); ``None``
        keeps the paper's token blocking.
    """

    def __init__(
        self,
        strategy: IncrPrioritization,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        costs: PipelineCosts | None = None,
        blocking_costs: BlockingCosts | None = None,
        adaptive_k: AdaptiveK | None = None,
        blocking: BlockingConfig | None = None,
    ) -> None:
        self.strategy = strategy
        self.costs = costs or PipelineCosts()
        blocking_costs = blocking_costs or BlockingCosts(
            per_profile=self.costs.per_profile, per_token=self.costs.per_token
        )
        self.blocker = IncrementalTokenBlocking(
            clean_clean=clean_clean,
            max_block_size=max_block_size,
            costs=blocking_costs,
            blocking=blocking,
        )
        self.adaptive_k = adaptive_k or AdaptiveK()
        self.store = ComparisonStore()
        strategy.bind_store(self.store)
        self.name = f"PIER[{strategy.name}]"

    # ------------------------------------------------------------------
    # ERSystem interface
    # ------------------------------------------------------------------
    def ingest(self, increment: Increment) -> float:
        cost = self.blocker.process_increment(increment)
        if increment.is_empty:
            cost += self.strategy.on_empty_increment(self)
        else:
            cost += self.strategy.ingest_profiles(self, increment.profiles)
        self._flush_blocking_metrics(self.collection)
        return cost

    def emit(self, stats: PipelineStats) -> EmitResult:
        budget = self._find_k(stats)
        store = self.store
        batch: list[tuple[int, int]] = []
        stale = 0
        while len(batch) < budget:
            pair = self.strategy.dequeue()
            if pair is None:
                break
            if not store.mark_executed(pair):
                stale += 1
                continue
            batch.append(pair)
        if batch:
            self.metrics.count("pier.comparisons_emitted", len(batch))
        if stale:
            self.metrics.count("pier.dequeued_already_executed", stale)
        store.record_emission(len(batch), stale)
        cost = self.costs.per_round + self.costs.per_enqueue * len(batch)
        return EmitResult(batch=tuple(batch), cost=cost)

    def on_idle(self, stats: PipelineStats) -> float | None:
        cost = self.strategy.on_empty_increment(self)
        self._flush_blocking_metrics(self.collection)
        if len(self.strategy) == 0:
            # Even the refill produced nothing: all work is exhausted.
            return None
        return cost

    def profile(self, pid: int) -> EntityProfile:
        return self.blocker.profile(pid)

    def has_pending_comparisons(self) -> bool:
        return len(self.strategy) > 0

    def gauges(self) -> dict[str, float]:
        return {
            "k": self.adaptive_k.value,
            "queue_depth": len(self.strategy),
            **self.strategy.gauges(),
        }

    # ------------------------------------------------------------------
    # Internals shared with strategies
    # ------------------------------------------------------------------
    @property
    def collection(self) -> BlockingSubstrate:
        return self.blocker.collection

    def valid_partner(self, profile: EntityProfile) -> Callable[[int], bool]:
        """Partner predicate for candidate generation of ``profile``.

        The returned predicates carry self-describing markers
        (``always_true`` / ``cross_source_only``) that let the sweep kernel
        skip the per-candidate filter when it is provably redundant.  On a
        pruning substrate (the LSH prefilter) the co-bucket test composes
        into the predicate — *without* markers, so the sweep always applies
        it.
        """
        collection = self.collection
        if collection.prunes_candidates:
            pid_x = profile.pid
            allows = collection.allows_pair
            if not collection.clean_clean:
                return lambda pid: allows(pid_x, pid)
            source = profile.source
            blocker = self.blocker
            return lambda pid: (
                allows(pid_x, pid) and blocker.profile(pid).source != source
            )
        if not collection.clean_clean:
            return _always_valid
        source = profile.source
        blocker = self.blocker
        predicate = lambda pid: blocker.profile(pid).source != source
        predicate.cross_source_only = True  # type: ignore[attr-defined]
        return predicate

    def was_executed(self, pid_x: int, pid_y: int) -> bool:
        return self.store.was_executed(pid_x, pid_y)

    @property
    def _executed(self) -> set[tuple[int, int]]:
        """Back-compat view of the store's executed-set (tests peek at it)."""
        return self.store.executed

    # -- checkpoint support ---------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Blocking state, findK state, the shared comparison store, and the
        strategy's ``CmpIndex`` — everything Algorithm 1 mutates during a
        run."""
        return {
            "blocker": copy.deepcopy(self.blocker),
            "adaptive_k": copy.deepcopy(self.adaptive_k),
            "store": self.store.snapshot_state(),
            "strategy": self.strategy.snapshot_state(),
        }

    def restore(self, state: dict[str, object]) -> None:
        self.blocker = copy.deepcopy(state["blocker"])
        self.adaptive_k = copy.deepcopy(state["adaptive_k"])
        # In-place restore keeps the store's identity, so strategy-bound
        # references (the I-PBS Bloom filter) stay valid.
        self.store.restore_state(state["store"])
        self.strategy.restore_state(state["strategy"])

    def _find_k(self, stats: PipelineStats) -> int:
        """The ``findK()`` of Algorithm 1.

        The service rate is the rate at which full emission rounds complete:
        one round costs ``K`` matcher evaluations plus fixed overhead.
        """
        mean_cost = max(stats.mean_match_cost, 1e-9)
        round_cost = self.adaptive_k.value * mean_cost + self.costs.per_round
        service_rate = 1.0 / round_cost
        return self.adaptive_k.update(stats.input_rate, service_rate)

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "strategy": self.strategy.name,
            "k": self.adaptive_k.value,
            "blocks": len(self.collection),
            "executed": len(self.store.executed),
        }
