"""I-PCS: Incremental Progressive Comparison Scheduling (paper §4, Alg. 2).

The comparison-centric strategy: every comparison that survives block
ghosting and I-WNP is pushed, with its CBS weight, into one global bounded
priority queue.  Effectiveness therefore hinges entirely on the weighting
scheme — the limitation that motivates I-PES.
"""

from __future__ import annotations

import copy
from typing import Iterable

from repro.core.profile import EntityProfile
from repro.metablocking.weights import WeightingScheme
from repro.pier.base import ComparisonGenerator, GetComparisons, IncrPrioritization, PierSystem
from repro.priority.bounded_pq import BoundedPriorityQueue

__all__ = ["IPCS"]


class IPCS(IncrPrioritization):
    """Comparison-centric prioritization with a bounded global queue.

    Parameters
    ----------
    beta:
        Block-ghosting parameter β.
    scheme:
        Meta-blocking weighting scheme (CBS by default, as in the paper).
    capacity:
        Bound of the global comparison queue; low-weight comparisons are
        evicted under pressure, trading eventual quality for memory.
    per_pair_weighting:
        Use the legacy one-``weight()``-call-per-candidate path instead of
        the single-sweep kernel (bit-identical; for bisection).
    """

    name = "I-PCS"

    def __init__(
        self,
        beta: float = 0.2,
        scheme: WeightingScheme | None = None,
        capacity: int | None = 500_000,
        per_pair_weighting: bool = False,
    ) -> None:
        self.generator = ComparisonGenerator(beta=beta, scheme=scheme, per_pair=per_pair_weighting)
        self.refill = GetComparisons(scheme=self.generator.scheme, per_pair=per_pair_weighting)
        self.index: BoundedPriorityQueue[tuple[int, int]] = BoundedPriorityQueue(capacity)

    # ------------------------------------------------------------------
    def ingest_profiles(self, system: PierSystem, profiles: Iterable[EntityProfile]) -> float:
        costs = system.costs
        metrics = system.metrics
        cost = 0.0
        for profile in profiles:
            kept, operations = self.generator.generate(
                system.collection, profile, system.valid_partner(profile)
            )
            cost += operations * costs.per_weight
            metrics.count("strategy.weighting_ops", operations)
            for weighted in kept:
                if system.was_executed(weighted.left, weighted.right):
                    metrics.count("strategy.skipped_already_executed")
                    continue
                self.index.enqueue(weighted.pair, weighted.weight)
                metrics.count("strategy.comparisons_enqueued")
                cost += costs.per_enqueue
        return cost

    def on_empty_increment(self, system: PierSystem) -> float:
        # Alg. 2, lines 10-11: only refill when the index has run dry; keep
        # draining blocks until the index holds fresh work or nothing is left.
        metrics = system.metrics
        cost = system.costs.per_round
        while not len(self.index):
            result = self.refill.next_batch(system.collection, system.was_executed)
            if result is None:
                break
            batch, operations = result
            metrics.count("strategy.refill_batches")
            metrics.count("strategy.weighting_ops", operations)
            cost += operations * system.costs.per_weight
            for weighted in batch:
                self.index.enqueue(weighted.pair, weighted.weight)
                metrics.count("strategy.comparisons_enqueued")
                cost += system.costs.per_enqueue
        return cost

    def dequeue(self) -> tuple[int, int] | None:
        if not self.index:
            return None
        return self.index.dequeue()

    def __len__(self) -> int:
        return len(self.index)

    def exhausted(self, system: PierSystem) -> bool:
        return not self.index and self.refill.is_exhausted(system.collection)

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        # generator/scheme are pure configuration; only the queue and the
        # refill drain cursor mutate during a run.
        return {
            "index": copy.deepcopy(self.index),
            "refill": self.refill.snapshot_state(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self.index = copy.deepcopy(state["index"])
        self.refill.restore_state(state["refill"])
