"""Strategy-selection heuristic (the paper's stated future work).

The paper concludes: *"Future work includes the integration of a heuristic
for determining the best appropriate method to use for the given data."*
Its evaluation gives the decision evidence:

* on **relational** data with short, uniform values (the census/Febrl
  dataset), the smallest blocks are highly informative and the
  block-centric **I-PBS** wins;
* on **heterogeneous** data with skewed value lengths (dbpedia, movies),
  CBS-driven orders are polluted by long profiles and tiny coincidental
  blocks, so the entity-centric **I-PES** is the robust choice.

:func:`choose_strategy` operationalizes this on a profile sample using two
cheap statistics: the coefficient of variation of profile text lengths
(length skew) and the attribute-name diversity (schema heterogeneity).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.profile import EntityProfile
from repro.pier.base import IncrPrioritization
from repro.pier.ipbs import IPBS
from repro.pier.ipes import IPES

__all__ = ["DataProfileStats", "profile_sample_stats", "choose_strategy", "make_chosen_strategy"]


class DataProfileStats:
    """Summary statistics of a profile sample used by the heuristic."""

    __slots__ = ("sample_size", "length_cv", "schema_diversity", "mean_tokens")

    def __init__(self, sample_size: int, length_cv: float, schema_diversity: float,
                 mean_tokens: float) -> None:
        self.sample_size = sample_size
        self.length_cv = length_cv
        self.schema_diversity = schema_diversity
        self.mean_tokens = mean_tokens

    def __repr__(self) -> str:
        return (
            f"DataProfileStats(n={self.sample_size}, length_cv={self.length_cv:.2f}, "
            f"schema_diversity={self.schema_diversity:.2f}, mean_tokens={self.mean_tokens:.1f})"
        )


def profile_sample_stats(profiles: Iterable[EntityProfile]) -> DataProfileStats:
    """Compute the heuristic's inputs from a profile sample."""
    lengths: list[int] = []
    attribute_names: set[str] = set()
    attribute_slots = 0
    token_counts: list[int] = []
    for profile in profiles:
        lengths.append(profile.text_length())
        token_counts.append(len(profile.tokens()))
        for attribute in profile.attributes:
            attribute_names.add(attribute.name)
            attribute_slots += 1
    n = len(lengths)
    if n == 0:
        return DataProfileStats(0, 0.0, 0.0, 0.0)
    mean_length = sum(lengths) / n
    if mean_length > 0:
        variance = sum((length - mean_length) ** 2 for length in lengths) / n
        length_cv = math.sqrt(variance) / mean_length
    else:
        length_cv = 0.0
    # Distinct attribute names per attribute slot: ~0 for one fixed schema
    # over a large sample, →1 for fully heterogeneous data.
    schema_diversity = len(attribute_names) / attribute_slots if attribute_slots else 0.0
    mean_tokens = sum(token_counts) / n
    return DataProfileStats(n, length_cv, schema_diversity, mean_tokens)


def choose_strategy(
    sample: Sequence[EntityProfile],
    length_cv_threshold: float = 0.45,
    mean_tokens_threshold: float = 14.0,
) -> str:
    """Pick ``"I-PBS"`` or ``"I-PES"`` for a data sample.

    Relational-looking data (uniform short values) → I-PBS; anything with
    pronounced length skew or verbose profiles → I-PES (the paper's default
    method of choice).
    """
    stats = profile_sample_stats(sample)
    looks_relational = (
        stats.length_cv <= length_cv_threshold
        and stats.mean_tokens <= mean_tokens_threshold
    )
    return "I-PBS" if looks_relational else "I-PES"


def make_chosen_strategy(sample: Sequence[EntityProfile], **kwargs) -> IncrPrioritization:
    """Instantiate the heuristic's pick."""
    if choose_strategy(sample) == "I-PBS":
        supported = ("scheme", "capacity", "per_pair_weighting")
        return IPBS(**{k: v for k, v in kwargs.items() if k in supported})
    return IPES(**kwargs)
