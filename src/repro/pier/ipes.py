"""I-PES: Incremental Progressive Entity Scheduling (paper §6, Alg. 4).

The entity-centric strategy.  Instead of one global comparison order (whose
quality stands or falls with the weighting scheme), I-PES ranks *entities*
by the weight of their best pending comparison and emits comparisons entity
by entity.  Three structures constitute its ``CmpIndex``:

* ``E_PQ`` — per-entity priority queues of weighted comparisons;
* ``EntityQueue`` — a priority queue of ``(entity, weight)`` tuples, where
  the weight is the entity's best comparison weight at insertion time;
* ``PQ`` — a bounded overflow queue for low-weighted comparisons.

Insertion applies the paper's double pruning: a comparison that does not
improve either endpoint's best, is only stored (a) with the endpoint owning
the smaller queue, and (b) if its weight beats both the global average
weight and that endpoint's per-entity average — otherwise it is demoted to
the bounded ``PQ``, keeping it out of the entity structures while never
losing it outright (refills offer each comparison once, so a hard drop
would shrink I-PES's comparison universe below the other strategies').
This bounds memory and sheds superfluous comparisons, making I-PES far less
sensitive to a poorly suited weighting scheme than I-PCS.
"""

from __future__ import annotations

import copy
from typing import Iterable

from repro.core.comparison import WeightedComparison
from repro.core.profile import EntityProfile
from repro.metablocking.weights import WeightingScheme
from repro.pier.base import ComparisonGenerator, GetComparisons, IncrPrioritization, PierSystem
from repro.priority.bounded_pq import BoundedPriorityQueue

__all__ = ["IPES"]


class IPES(IncrPrioritization):
    """Entity-centric prioritization (Algorithm 4).

    Parameters
    ----------
    beta:
        Block-ghosting parameter β used during candidate generation.
    scheme:
        Weighting scheme (CBS by default).
    overflow_capacity:
        Bound of the low-weight overflow queue ``PQ``.
    per_pair_weighting:
        Use the legacy one-``weight()``-call-per-candidate path instead of
        the single-sweep kernel (bit-identical; for bisection).
    """

    name = "I-PES"

    def __init__(
        self,
        beta: float = 0.2,
        scheme: WeightingScheme | None = None,
        overflow_capacity: int = 100_000,
        per_pair_weighting: bool = False,
    ) -> None:
        self.generator = ComparisonGenerator(beta=beta, scheme=scheme, per_pair=per_pair_weighting)
        self.refill = GetComparisons(scheme=self.generator.scheme, per_pair=per_pair_weighting)
        self.entity_pq: dict[int, BoundedPriorityQueue[tuple[int, int]]] = {}
        self.entity_queue: BoundedPriorityQueue[int] = BoundedPriorityQueue()
        self.overflow: BoundedPriorityQueue[tuple[int, int]] = BoundedPriorityQueue(
            overflow_capacity
        )
        # Global running average of inserted comparison weights (Total/Count).
        self.total_weight = 0.0
        self.count = 0
        # Per-entity running averages for the insert() pruning condition.
        self._entity_totals: dict[int, tuple[float, int]] = {}
        self._entity_items = 0

    # ------------------------------------------------------------------
    # Ingestion (Algorithm 4)
    # ------------------------------------------------------------------
    def ingest_profiles(self, system: PierSystem, profiles: Iterable[EntityProfile]) -> float:
        costs = system.costs
        metrics = system.metrics
        cost = 0.0
        for profile in profiles:
            kept, operations = self.generator.generate(
                system.collection, profile, system.valid_partner(profile)
            )
            cost += operations * costs.per_weight
            metrics.count("strategy.weighting_ops", operations)
            for weighted in kept:
                if system.was_executed(weighted.left, weighted.right):
                    metrics.count("strategy.skipped_already_executed")
                    continue
                metrics.count(f"strategy.inserted_{self._insert_weighted(weighted)}")
                cost += costs.per_enqueue
        return cost

    def on_empty_increment(self, system: PierSystem) -> float:
        metrics = system.metrics
        cost = system.costs.per_round
        while not len(self):
            result = self.refill.next_batch(system.collection, system.was_executed)
            if result is None:
                break
            batch, operations = result
            metrics.count("strategy.refill_batches")
            metrics.count("strategy.weighting_ops", operations)
            cost += operations * system.costs.per_weight
            for weighted in batch:
                metrics.count(f"strategy.inserted_{self._insert_weighted(weighted)}")
                cost += system.costs.per_enqueue
        return cost

    def _insert_weighted(self, weighted: WeightedComparison) -> str:
        """Lines 1-14 of Algorithm 4 for a single weighted comparison.

        Returns where the comparison ended up (``entity`` / ``balanced`` /
        ``pruned`` / ``overflow``) so callers can count dispositions.
        """
        weight = weighted.weight
        self.total_weight += weight
        self.count += 1
        pid_x, pid_y = weighted.left, weighted.right

        if self._top_weight(pid_x) < weight:
            self._entity_enqueue(pid_x, weighted)
            self.entity_queue.enqueue(pid_x, weight)
            return "entity"
        if self._top_weight(pid_y) < weight:
            self._entity_enqueue(pid_y, weighted)
            self.entity_queue.enqueue(pid_y, weight)
            return "entity"
        if weight > self.total_weight / self.count:
            queue_x = self.entity_pq.get(pid_x)
            queue_y = self.entity_pq.get(pid_y)
            size_x = len(queue_x) if queue_x else 0
            size_y = len(queue_y) if queue_y else 0
            owner = pid_x if size_x <= size_y else pid_y
            return self._insert_if_above_entity_average(weighted, owner)
        self.overflow.enqueue(weighted.pair, weight)
        return "overflow"

    def _insert_if_above_entity_average(self, weighted: WeightedComparison, owner: int) -> str:
        """The ``insert()`` function: admit only above the entity average.

        A comparison below the owner's average is pruned *from the entity
        structures*, not lost: it falls through to the bounded overflow
        queue.  Dropping it outright would break the cross-strategy
        agreement contract — refills drain each block once, so a dropped
        comparison would never be offered again and I-PES would execute a
        strictly smaller comparison universe than I-PCS/I-PBS.
        """
        total, count = self._entity_totals.get(owner, (0.0, 0))
        if count and weighted.weight <= total / count:
            self.overflow.enqueue(weighted.pair, weighted.weight)
            return "pruned"
        self._entity_enqueue(owner, weighted)
        return "balanced"

    def _entity_enqueue(self, owner: int, weighted: WeightedComparison) -> None:
        queue = self.entity_pq.get(owner)
        if queue is None:
            queue = BoundedPriorityQueue()
            self.entity_pq[owner] = queue
        queue.enqueue(weighted.pair, weighted.weight)
        self._entity_items += 1
        total, count = self._entity_totals.get(owner, (0.0, 0))
        self._entity_totals[owner] = (total + weighted.weight, count + 1)

    def _top_weight(self, pid: int) -> float:
        """Weight of the best pending comparison of an entity (-inf if none)."""
        queue = self.entity_pq.get(pid)
        if not queue:
            return float("-inf")
        return queue.peek_key()

    # ------------------------------------------------------------------
    # Emission (CmpIndex.dequeue of §6)
    # ------------------------------------------------------------------
    def dequeue(self) -> tuple[int, int] | None:
        while True:
            if not self.entity_queue:
                self._refill_entity_queue()
            if not self.entity_queue:
                break
            entity = self.entity_queue.dequeue()
            queue = self.entity_pq.get(entity)
            if not queue:
                continue  # stale EntityQueue entry
            pair = queue.dequeue()
            self._entity_items -= 1
            if not queue:
                del self.entity_pq[entity]
                self._entity_totals.pop(entity, None)
            return pair
        # Entity structures exhausted: fall back to the overflow queue.
        if self.overflow:
            return self.overflow.dequeue()
        return None

    def _refill_entity_queue(self) -> None:
        """When EntityQueue drains, reseed it from all live entity queues."""
        for entity, queue in self.entity_pq.items():
            if queue:
                self.entity_queue.enqueue(entity, queue.peek_key())

    # ------------------------------------------------------------------
    def gauges(self) -> dict[str, float]:
        return {
            "entity_queues": len(self.entity_pq),
            "overflow_depth": len(self.overflow),
        }

    def __len__(self) -> int:
        return self._entity_items + len(self.overflow)

    def exhausted(self, system: PierSystem) -> bool:
        if len(self):
            return False
        return self.refill.is_exhausted(system.collection)

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        return {
            "entity_pq": {pid: copy.deepcopy(queue) for pid, queue in self.entity_pq.items()},
            "entity_queue": copy.deepcopy(self.entity_queue),
            "overflow": copy.deepcopy(self.overflow),
            "total_weight": self.total_weight,
            "count": self.count,
            "entity_totals": dict(self._entity_totals),
            "entity_items": self._entity_items,
            "refill": self.refill.snapshot_state(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self.entity_pq = {pid: copy.deepcopy(queue) for pid, queue in state["entity_pq"].items()}
        self.entity_queue = copy.deepcopy(state["entity_queue"])
        self.overflow = copy.deepcopy(state["overflow"])
        self.total_weight = state["total_weight"]
        self.count = state["count"]
        self._entity_totals = dict(state["entity_totals"])
        self._entity_items = state["entity_items"]
        self.refill.restore_state(state["refill"])
