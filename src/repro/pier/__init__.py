"""PIER: progressive + incremental ER — framework and strategies."""

from repro.pier.base import (
    ComparisonGenerator,
    GetComparisons,
    IncrPrioritization,
    PierSystem,
)
from repro.pier.heuristic import (
    DataProfileStats,
    choose_strategy,
    make_chosen_strategy,
    profile_sample_stats,
)
from repro.pier.ipbs import IPBS
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES

__all__ = [
    "ComparisonGenerator",
    "DataProfileStats",
    "GetComparisons",
    "IPBS",
    "IPCS",
    "IPES",
    "IncrPrioritization",
    "PierSystem",
    "choose_strategy",
    "make_chosen_strategy",
    "profile_sample_stats",
]
