"""I-PBS: Incremental Progressive Block Scheduling (paper §5, Alg. 3).

Block-centric prioritization: blocks are processed smallest-first (small
blocks are most likely to contain duplicates).  Two global indexes track the
pending work per block:

* ``CI`` (cardinality index): block key → number of unexecuted comparisons
  its pending profiles can generate (the paper initializes entries to +∞ to
  mean "nothing pending"; we model that state by *absence* from the dict,
  which is equivalent and avoids ∞ arithmetic);
* ``PI`` (profile index): block key → set of pending (unexecuted) profiles.

Comparisons enter the global queue with the composite priority
``(-block_size, cbs_weight)``: comparisons from smaller generating blocks
come first, CBS breaks ties within a block.  A scalable Bloom filter drops
comparisons already generated from an earlier block.

The queue is refilled from the current smallest pending block ``b_min``
lazily: only when the queue is empty, or when ``b_min`` is *smaller* than
the block that generated the current queue head (so newly discovered small
blocks jump the line, while larger blocks wait until the queue drains —
this keeps the queue from growing without bound while preferring
comparisons from smaller blocks, the stated goals of the paper).
"""

from __future__ import annotations

import copy
import heapq
from typing import Iterable

from repro.core.comparison import canonical_pair
from repro.core.profile import EntityProfile
from repro.execution.store import ComparisonStore
from repro.metablocking.sweep import partner_weights
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme
from repro.pier.base import IncrPrioritization, PierSystem
from repro.priority.bloom import ScalableBloomFilter
from repro.priority.bounded_pq import BoundedPriorityQueue

__all__ = ["IPBS"]


class IPBS(IncrPrioritization):
    """Block-centric prioritization over smallest-pending-block refills."""

    name = "I-PBS"

    def __init__(
        self,
        scheme: WeightingScheme | None = None,
        capacity: int | None = 500_000,
        filter_initial_capacity: int = 4096,
        per_pair_weighting: bool = False,
    ) -> None:
        self.scheme = scheme or CommonBlocksScheme()
        self.per_pair_weighting = per_pair_weighting
        self.index: BoundedPriorityQueue[tuple[int, int]] = BoundedPriorityQueue(capacity)
        self.cardinality_index: dict[str, int] = {}
        self.profile_index: dict[str, set[int]] = {}
        self.filter_initial_capacity = filter_initial_capacity
        # Standalone default so the strategy works unbound (unit tests);
        # bind_store replaces it with the host system's shared filter.
        self.comparison_filter = ScalableBloomFilter(initial_capacity=filter_initial_capacity)
        # Lazy min-heap over (pending_count, key); entries whose count is
        # stale are discarded on pop, keeping b_min selection O(log n).
        self._pending_heap: list[tuple[int, str]] = []

    def bind_store(self, store: ComparisonStore) -> None:
        # Share the store's Bloom filter: one dedup structure per system,
        # serialized exactly once inside the store's snapshot.
        self.comparison_filter = store.bloom_filter(self.filter_initial_capacity)

    # ------------------------------------------------------------------
    def ingest_profiles(self, system: PierSystem, profiles: Iterable[EntityProfile]) -> float:
        costs = system.costs
        collection = system.collection
        cost = 0.0
        for profile in profiles:
            for key in collection.blocks_of(profile.pid):
                block = collection.get(key)
                if block is None:
                    continue
                if collection.clean_clean:
                    new_comparisons = len(block.members(1 - profile.source))
                else:
                    new_comparisons = len(block) - 1
                count = self.cardinality_index.get(key, 0) + max(new_comparisons, 0)
                self.cardinality_index[key] = count
                self.profile_index.setdefault(key, set()).add(profile.pid)
                if count > 0:
                    heapq.heappush(self._pending_heap, (count, key))
                cost += costs.per_enqueue
        cost += self._consider_refill(system)
        return cost

    def on_empty_increment(self, system: PierSystem) -> float:
        return system.costs.per_round + self._consider_refill(system)

    # ------------------------------------------------------------------
    def _consider_refill(self, system: PierSystem) -> float:
        """Process ``b_min`` when the lazy-refill condition holds (Alg. 3)."""
        cost = 0.0
        while True:
            b_min_key, b_min_block = self._smallest_pending_block(system)
            if b_min_key is None:
                return cost
            if len(self.index):
                top_block_size = -self.index.peek_key()[0]
                if len(b_min_block) >= top_block_size:
                    return cost
            cost += self._process_block(system, b_min_key, b_min_block)
            # After processing one block, loop: an even smaller block may now
            # satisfy the condition (or the queue may still be empty).
            if len(self.index):
                return cost

    def _smallest_pending_block(self, system: PierSystem):
        """The live block with the fewest pending comparisons (``b_min``).

        Pops the lazy heap until an entry matches the current cardinality
        index; stale entries (block processed, purged, or count changed) are
        discarded, and changed counts are pushed back for a later pass.
        """
        collection = system.collection
        heap = self._pending_heap
        while heap:
            count, key = heap[0]
            current = self.cardinality_index.get(key)
            block = collection.get(key)
            if current is None or current <= 0 or block is None:
                heapq.heappop(heap)
                if block is None or (current is not None and current <= 0):
                    self._reset_block(key)
                continue
            if current != count:
                heapq.heapreplace(heap, (current, key))
                continue
            return key, block
        return None, None

    def _process_block(self, system: PierSystem, key: str, block) -> float:
        """Generate the pending comparisons of a block into the queue."""
        costs = system.costs
        collection = system.collection
        metrics = system.metrics
        pending = self.profile_index.get(key, set())
        block_size = len(block)
        cost = costs.per_block_open
        metrics.count("strategy.blocks_processed")
        # Sorted iteration keeps generation order independent of set-table
        # history, so a checkpoint-restored run replays identically.
        prune = collection.allows_pair if collection.prunes_candidates else None
        survivors: list[tuple[int, int]] = []
        for pid_x in sorted(pending):
            profile_x = system.profile(pid_x)
            if collection.clean_clean:
                partners = block.members(1 - profile_x.source)
            else:
                partners = [pid for pid in block if pid != pid_x]
            for pid_y in partners:
                if pid_y == pid_x:
                    continue
                pair = canonical_pair(pid_x, pid_y)
                if prune is not None and not prune(*pair):
                    continue
                if self.comparison_filter.contains(*pair):
                    metrics.count("strategy.bloom_filtered")
                    continue
                self.comparison_filter.add(*pair)
                if system.was_executed(*pair):
                    metrics.count("strategy.skipped_already_executed")
                    continue
                survivors.append(pair)
        if self.per_pair_weighting:
            weighted = [
                (pair, self.scheme.weight(collection, *pair)) for pair in survivors
            ]
        else:
            by_left: dict[int, list[int]] = {}
            for left, right in survivors:
                by_left.setdefault(left, []).append(right)
            weights = {
                left: partner_weights(collection, left, rights, self.scheme)
                for left, rights in by_left.items()
            }
            weighted = [(pair, weights[pair[0]][pair[1]]) for pair in survivors]
        for pair, weight in weighted:
            self.index.enqueue(pair, (-block_size, weight))
            metrics.count("strategy.comparisons_enqueued")
            cost += costs.per_weight + costs.per_enqueue
        self._reset_block(key)
        return cost

    def _reset_block(self, key: str) -> None:
        """Lines 15-16 of Alg. 3: mark the block as having nothing pending."""
        self.cardinality_index.pop(key, None)
        self.profile_index.pop(key, None)

    # ------------------------------------------------------------------
    def dequeue(self) -> tuple[int, int] | None:
        if not self.index:
            return None
        return self.index.dequeue()

    def gauges(self) -> dict[str, float]:
        return {
            "bloom_slices": self.comparison_filter.num_slices,
            "bloom_items": self.comparison_filter.count,
            "pending_blocks": len(self.cardinality_index),
        }

    def __len__(self) -> int:
        return len(self.index)

    def exhausted(self, system: PierSystem) -> bool:
        if self.index:
            return False
        collection = system.collection
        return not any(
            count > 0 and collection.get(key) is not None
            for key, count in self.cardinality_index.items()
        )

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        # The Bloom filter is serialized by the comparison store it is bound
        # to (bit-exactly, so restored runs reproduce the identical
        # false-positive pattern); restoring it here as well would break the
        # filter's shared identity.
        return {
            "index": copy.deepcopy(self.index),
            "cardinality_index": dict(self.cardinality_index),
            "profile_index": {key: set(pids) for key, pids in self.profile_index.items()},
            "pending_heap": list(self._pending_heap),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        self.index = copy.deepcopy(state["index"])
        self.cardinality_index = dict(state["cardinality_index"])
        self.profile_index = {key: set(pids) for key, pids in state["profile_index"].items()}
        self._pending_heap = list(state["pending_heap"])
