"""The discrete-event streaming engine.

The engine drives one :class:`ERSystem` over a :class:`StreamPlan` on a
*virtual clock*: every pipeline action (ingesting an increment, updating the
comparison index, evaluating a comparison) advances the clock by its
reported virtual cost.  Increment arrivals are pinned to their plan times,
so the interplay the paper studies — idle time on slow streams, backlog and
back-pressure on fast streams, initialization stalls of the batch
adaptations, the adaptive budget of PIER — emerges deterministically and
reproducibly from one loop, independent of the host machine.

Loop structure per iteration:

1. ingest every increment that has arrived by ``clock`` (subject to the
   system's back-pressure hook), charging ingestion costs;
2. ask the system for one emission round and execute its batch through the
   matcher, recording each executed comparison against the ground truth;
3. if the system emitted nothing: let it manufacture idle work (the paper's
   "empty increment" trigger), or fast-forward to the next arrival, or stop
   when both the stream and the system are exhausted.

Budget semantics: the budget is a hard deadline on the virtual clock.  A
comparison whose (deterministic) cost would push the clock past the budget
is *not* executed and *not* credited to the progress curve — the engine
charges the remaining time as cut-off work and stops, so no point of the
reported curve ever lies beyond the budget.

Resilience semantics (see :mod:`repro.resilience`): increments are delivered
exactly once (redeliveries deduplicated by id), transient matcher failures
are retried with capped exponential backoff *charged to the virtual clock*,
pathological pairs are quarantined instead of crashing the run, backlog
beyond a watermark is shed, and the engine can checkpoint at a configurable
cadence and resume from an :class:`~repro.resilience.checkpoint.EngineCheckpoint`
with bit-identical virtual results.  All of this is off by default
(:data:`~repro.resilience.retry.DEFAULT_RESILIENCE` changes nothing about a
fault-free run).

Every run is instrumented through a fresh
:class:`~repro.observability.metrics.MetricsRegistry` (bound to the system
and the matcher): named counters, per-phase virtual/wall timers and a
bounded per-round gauge log, exported as ``details["metrics"]`` on the
:class:`RunResult`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace

from repro.core.dataset import GroundTruth
from repro.core.increments import StreamPlan
from repro.evaluation.recorder import ProgressCurve, ProgressRecorder
from repro.matching.matcher import Matcher
from repro.observability.metrics import MetricsRegistry, _PhaseTimer
from repro.priority.rates import RateEstimator
from repro.resilience.checkpoint import EngineCheckpoint, SimulatedCrash, plan_token
from repro.resilience.faults import TransientMatcherError
from repro.resilience.retry import DEFAULT_RESILIENCE, ResilienceConfig
from repro.streaming.system import ERSystem, PipelineStats

__all__ = ["RunResult", "StreamingEngine"]

#: Counters every run exports even when they stay zero, so dashboards and
#: schema gates see the resilience surface on healthy runs too.
_PRESEEDED_COUNTERS = (
    "engine.retries",
    "engine.quarantined_pairs",
    "engine.shed_increments",
)


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one simulated run."""

    system_name: str
    matcher_name: str
    curve: ProgressCurve
    duplicates: frozenset[tuple[int, int]]
    comparisons_executed: int
    clock_end: float
    budget: float
    stream_consumed_at: float | None     # when the last increment was ingested
    work_exhausted: bool                 # system + stream fully drained
    increments_ingested: int
    match_events: tuple[tuple[float, tuple[int, int]], ...] = ()
    details: dict[str, object] = field(default_factory=dict)

    @property
    def final_pc(self) -> float:
        return self.curve.final_pc


def _execute_batch(
    *,
    batch: tuple[tuple[int, int], ...],
    system: ERSystem,
    matcher: Matcher,
    recorder: ProgressRecorder,
    duplicates: set[tuple[int, int]],
    quarantined: set[tuple[int, int]],
    metrics: MetricsRegistry,
    match_timer: _PhaseTimer,
    clock: float,
    budget: float,
    resilience: ResilienceConfig,
) -> tuple[float, bool]:
    """Execute one emission batch under deadline/retry/quarantine rules.

    Shared by both engines so the budget-boundary semantics stay pinned in
    exactly one place.  Returns ``(clock, deadline_cut)``; the clock never
    exceeds ``budget`` on return.
    """
    retry = resilience.retry
    ceiling = resilience.cost_ceiling
    deadline_cut = False
    for position, (pid_x, pid_y) in enumerate(batch):
        profile_x = system.profile(pid_x)
        profile_y = system.profile(pid_y)
        cost = matcher.estimate_cost(profile_x, profile_y)
        if ceiling is not None and cost > ceiling:
            # Pathological pair: estimated cost alone busts the ceiling.
            # Quarantine (count, never execute) instead of starving the run.
            quarantined.add((min(pid_x, pid_y), max(pid_x, pid_y)))
            metrics.count("engine.quarantined_pairs")
            continue
        if clock + cost > budget:
            # The comparison cannot finish by the deadline: charge the
            # cut-off time, credit nothing.
            metrics.count("engine.comparisons_cut_by_deadline", len(batch) - position)
            match_timer.virtual += budget - clock
            clock = budget
            deadline_cut = True
            break
        result = None
        for attempt in range(1, retry.max_attempts + 1):
            try:
                result = matcher.evaluate(profile_x, profile_y)
                break
            except TransientMatcherError as fault:
                wasted = min(max(fault.cost, 0.0), budget - clock)
                clock += wasted
                match_timer.virtual += wasted
                metrics.count("engine.matcher_faults")
                if clock >= budget:
                    metrics.count(
                        "engine.comparisons_cut_by_deadline", len(batch) - position
                    )
                    deadline_cut = True
                    break
                if attempt == retry.max_attempts:
                    quarantined.add((min(pid_x, pid_y), max(pid_x, pid_y)))
                    metrics.count("engine.quarantined_pairs")
                    break
                backoff = min(retry.backoff(attempt), budget - clock)
                clock += backoff
                match_timer.virtual += backoff
                metrics.count("engine.retries")
                metrics.count("engine.retry_backoff_s", backoff)
                if clock >= budget:
                    metrics.count(
                        "engine.comparisons_cut_by_deadline", len(batch) - position
                    )
                    deadline_cut = True
                    break
        if deadline_cut:
            break
        if result is None:
            continue  # quarantined after exhausting its retry attempts
        clock += result.cost
        match_timer.virtual += result.cost
        if clock > budget:
            # The actual cost overshot the estimate (latency spike): the
            # comparison did not finish by the deadline, so it is not
            # credited and the overshoot is not charged.
            match_timer.virtual -= clock - budget
            clock = budget
            metrics.count("engine.comparisons_cut_by_deadline", len(batch) - position)
            deadline_cut = True
            break
        metrics.count("engine.comparisons_executed")
        if recorder.record(pid_x, pid_y, clock):
            metrics.count("engine.matches_recorded")
        if result.is_match:
            duplicates.add((min(pid_x, pid_y), max(pid_x, pid_y)))
        if clock >= budget:
            break
    return clock, deadline_cut


class StreamingEngine:
    """Runs ER systems against stream plans under a virtual time budget.

    Parameters
    ----------
    matcher / budget / match_cost_prior / sample_every:
        As before: the match function, the virtual-time budget, the prior
        mean comparison cost, and the progress-curve sampling stride.
    resilience:
        Fault-tolerance knobs (retry, quarantine, shedding, checkpointing);
        the default changes nothing about a fault-free run.
    checkpoint_every:
        Convenience override for ``resilience.checkpoint_every``.
    """

    _KIND = "serial"

    def __init__(
        self,
        matcher: Matcher,
        budget: float,
        match_cost_prior: float = 1e-4,
        sample_every: int = 64,
        resilience: ResilienceConfig | None = None,
        checkpoint_every: float | None = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.matcher = matcher
        self.budget = budget
        self.match_cost_prior = match_cost_prior
        self.sample_every = sample_every
        resilience = resilience or DEFAULT_RESILIENCE
        if checkpoint_every is not None:
            resilience = replace(resilience, checkpoint_every=checkpoint_every)
        self.resilience = resilience
        #: Latest checkpoint of the most recent run (``None`` before any).
        self.last_checkpoint: EngineCheckpoint | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
        resume_from: EngineCheckpoint | None = None,
    ) -> RunResult:
        """Simulate ``system`` over ``plan`` and return its progress curve.

        With ``resume_from``, the engine restores every component from the
        checkpoint and continues the run from its consistent cut; the
        completed run is then bit-identical (curve, duplicates, counters)
        to one that was never interrupted.
        """
        matcher = self.matcher
        resilience = self.resilience
        matcher.reset_stats()
        metrics = MetricsRegistry()
        system.bind_metrics(metrics)
        matcher.bind_metrics(metrics)
        recorder = ProgressRecorder(ground_truth, sample_every=self.sample_every)
        arrival_estimator = RateEstimator()
        duplicates: set[tuple[int, int]] = set()
        quarantined: set[tuple[int, int]] = set()
        seen_increments: set[int] = set()

        arrival_times = plan.arrival_times
        increments = plan.increments
        n_arrivals = len(plan)
        plan_fingerprint = plan_token(plan)
        next_arrival = 0
        clock = arrival_times[0] if n_arrivals else 0.0
        consumed_at: float | None = None if n_arrivals else 0.0
        work_exhausted = False
        rounds = 0
        ingested = 0
        shed = 0
        duplicates_dropped = 0

        if resume_from is not None:
            self._check_resumable(resume_from, plan_fingerprint)
            metrics.load_state(resume_from.metrics_state)
            system.restore(resume_from.system_state)
            matcher.restore_state(resume_from.matcher_state)
            recorder.restore_state(resume_from.recorder_state)
            arrival_estimator.restore_state(resume_from.estimator_state)
            duplicates = set(resume_from.duplicates)
            quarantined = set(resume_from.quarantined)
            seen_increments = set(resume_from.seen_increments)
            next_arrival = resume_from.next_arrival
            clock = resume_from.clock
            consumed_at = resume_from.consumed_at
            rounds = resume_from.rounds
            ingested = resume_from.ingested
            shed = resume_from.shed
            duplicates_dropped = resume_from.duplicates_dropped
            self.last_checkpoint = resume_from
        for name in _PRESEEDED_COUNTERS:
            metrics.count(name, 0)
        last_checkpoint_clock = clock

        while clock < self.budget:
            # -- 0. resilience bookkeeping at the loop-top cut ----------
            if (
                resilience.checkpoint_every is not None
                and clock - last_checkpoint_clock >= resilience.checkpoint_every
            ):
                metrics.count("engine.checkpoints_taken")
                self.last_checkpoint = EngineCheckpoint(
                    engine=self._KIND,
                    budget=self.budget,
                    plan_fingerprint=plan_fingerprint,
                    clock=clock,
                    ingest_clock=None,
                    next_arrival=next_arrival,
                    consumed_at=consumed_at,
                    rounds=rounds,
                    ingested=ingested,
                    shed=shed,
                    duplicates_dropped=duplicates_dropped,
                    seen_increments=frozenset(seen_increments),
                    duplicates=frozenset(duplicates),
                    quarantined=frozenset(quarantined),
                    system_state=system.snapshot(),
                    matcher_state=matcher.snapshot_state(),
                    recorder_state=recorder.snapshot_state(),
                    estimator_state=arrival_estimator.snapshot_state(),
                    metrics_state=metrics.dump_state(),
                )
                last_checkpoint_clock = clock
            if resilience.crash_at is not None and clock >= resilience.crash_at:
                raise SimulatedCrash(self.last_checkpoint, clock)
            if resilience.shed_watermark is not None:
                due = bisect.bisect_right(arrival_times, clock, next_arrival)
                excess = (due - next_arrival) - resilience.shed_watermark
                while excess > 0:
                    # Overload: drop the oldest due increments outright.  A
                    # later redelivery of the same id may still be ingested.
                    metrics.count("engine.shed_increments")
                    shed += 1
                    next_arrival += 1
                    excess -= 1
                    if next_arrival == n_arrivals:
                        consumed_at = clock

            # -- 1. ingest all due increments ---------------------------
            ingested_now = False
            with metrics.time_phase("ingest") as ingest_timer:
                while (
                    next_arrival < n_arrivals
                    and arrival_times[next_arrival] <= clock
                    and system.ready_for_ingest()
                ):
                    increment = increments[next_arrival]
                    if increment.index in seen_increments:
                        metrics.count("engine.duplicate_increments_dropped")
                        duplicates_dropped += 1
                        next_arrival += 1
                        ingested_now = True
                        if next_arrival == n_arrivals:
                            consumed_at = clock
                        continue
                    seen_increments.add(increment.index)
                    arrival_estimator.record(arrival_times[next_arrival])
                    cost = system.ingest(increment)
                    clock += cost
                    ingest_timer.virtual += cost
                    metrics.count("engine.increments_ingested")
                    ingested += 1
                    next_arrival += 1
                    ingested_now = True
                    if next_arrival == n_arrivals:
                        consumed_at = clock
                    if clock >= self.budget:
                        break
            if clock >= self.budget:
                break

            # -- 2. one emission round ----------------------------------
            stats = self._stats(clock, arrival_estimator, self._backlog(plan, next_arrival, clock))
            with metrics.time_phase("emit") as emit_timer:
                emit = system.emit(stats)
                clock += emit.cost
                emit_timer.virtual += emit.cost
            rounds += 1
            metrics.count("engine.emission_rounds")
            executed_before = recorder.comparisons_executed
            if emit.batch:
                with metrics.time_phase("match") as match_timer:
                    clock, _ = _execute_batch(
                        batch=emit.batch,
                        system=system,
                        matcher=matcher,
                        recorder=recorder,
                        duplicates=duplicates,
                        quarantined=quarantined,
                        metrics=metrics,
                        match_timer=match_timer,
                        clock=clock,
                        budget=self.budget,
                        resilience=resilience,
                    )
                self._record_round(
                    metrics, system, stats, rounds, clock,
                    emitted=len(emit.batch),
                    executed=recorder.comparisons_executed - executed_before,
                )
                continue
            self._record_round(metrics, system, stats, rounds, clock, emitted=0, executed=0)
            if ingested_now or clock >= self.budget:
                continue

            # -- 3. nothing emitted: idle handling ----------------------
            if next_arrival < n_arrivals and arrival_times[next_arrival] <= clock:
                # Back-pressure refused ingestion but there is no work
                # either: force-feed one increment to avoid a livelock.
                increment = increments[next_arrival]
                if increment.index in seen_increments:
                    metrics.count("engine.duplicate_increments_dropped")
                    duplicates_dropped += 1
                    next_arrival += 1
                    if next_arrival == n_arrivals:
                        consumed_at = clock
                    continue
                with metrics.time_phase("ingest") as ingest_timer:
                    seen_increments.add(increment.index)
                    arrival_estimator.record(arrival_times[next_arrival])
                    cost = system.ingest(increment)
                    clock += cost
                    ingest_timer.virtual += cost
                    metrics.count("engine.increments_ingested")
                    metrics.count("engine.forced_ingests")
                    ingested += 1
                    next_arrival += 1
                    if next_arrival == n_arrivals:
                        consumed_at = clock
                continue
            with metrics.time_phase("idle") as idle_timer:
                idle_cost = system.on_idle(
                    self._stats(clock, arrival_estimator, self._backlog(plan, next_arrival, clock))
                )
                if idle_cost is not None:
                    clock += idle_cost
                    idle_timer.virtual += idle_cost
            if idle_cost is not None:
                metrics.count("engine.idle_rounds")
                continue
            if next_arrival < n_arrivals:
                gap = arrival_times[next_arrival] - clock
                clock = arrival_times[next_arrival]  # sleep until next arrival
                metrics.count("engine.fast_forwards")
                metrics.phase("sleep").add(gap)
                continue
            work_exhausted = True
            break

        final_clock = min(clock, self.budget) if not work_exhausted else clock
        recorder.mark(final_clock)
        metrics.gauge("engine.clock_end", final_clock)
        metrics.gauge("engine.budget", self.budget)
        details = dict(system.describe())
        details["resilience"] = {
            "retries": metrics.counter("engine.retries"),
            "quarantined_pairs": tuple(sorted(quarantined)),
            "shed_increments": shed,
            "duplicate_increments_dropped": duplicates_dropped,
            "checkpoints_taken": metrics.counter("engine.checkpoints_taken"),
        }
        details["metrics"] = metrics.snapshot()
        return RunResult(
            system_name=system.name,
            matcher_name=matcher.name,
            curve=recorder.curve(),
            duplicates=frozenset(duplicates),
            comparisons_executed=recorder.comparisons_executed,
            clock_end=final_clock,
            budget=self.budget,
            stream_consumed_at=consumed_at,
            work_exhausted=work_exhausted,
            increments_ingested=ingested,
            match_events=recorder.match_events(),
            details=details,
        )

    # ------------------------------------------------------------------
    def _check_resumable(self, checkpoint: EngineCheckpoint, plan_fingerprint: int) -> None:
        """Refuse resumes that would silently corrupt the run."""
        if checkpoint.engine != self._KIND:
            raise ValueError(
                f"checkpoint was taken by a {checkpoint.engine!r} engine, "
                f"cannot resume on {self._KIND!r}"
            )
        if checkpoint.budget != self.budget:
            raise ValueError(
                f"checkpoint budget {checkpoint.budget} does not match "
                f"engine budget {self.budget}"
            )
        if checkpoint.plan_fingerprint != plan_fingerprint:
            raise ValueError("checkpoint was taken against a different stream plan")

    @staticmethod
    def _backlog(plan: StreamPlan, next_arrival: int, clock: float) -> int:
        """Increments that have arrived by ``clock`` but are not yet ingested."""
        due = bisect.bisect_right(plan.arrival_times, clock, next_arrival)
        return due - next_arrival

    @staticmethod
    def _record_round(
        metrics: MetricsRegistry,
        system: ERSystem,
        stats: PipelineStats,
        round_index: int,
        clock: float,
        emitted: int,
        executed: int,
    ) -> None:
        metrics.record_round(
            round=round_index,
            clock=clock,
            backlog=stats.backlog,
            input_rate=stats.input_rate,
            emitted=emitted,
            executed=executed,
            **system.gauges(),
        )

    def _stats(
        self, clock: float, arrival_estimator: RateEstimator, backlog: int
    ) -> PipelineStats:
        mean_cost = self.matcher.mean_cost or self.match_cost_prior
        return PipelineStats(
            now=clock,
            input_rate=arrival_estimator.rate_at(clock),
            mean_match_cost=mean_cost,
            backlog=backlog,
            remaining_budget=self.budget - clock,
        )
