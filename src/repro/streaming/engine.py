"""The discrete-event streaming engine.

The engine drives one :class:`ERSystem` over a :class:`StreamPlan` on a
*virtual clock*: every pipeline action (ingesting an increment, updating the
comparison index, evaluating a comparison) advances the clock by its
reported virtual cost.  Increment arrivals are pinned to their plan times,
so the interplay the paper studies — idle time on slow streams, backlog and
back-pressure on fast streams, initialization stalls of the batch
adaptations, the adaptive budget of PIER — emerges deterministically and
reproducibly from one loop, independent of the host machine.

Loop structure per iteration:

1. ingest every increment that has arrived by ``clock`` (subject to the
   system's back-pressure hook), charging ingestion costs;
2. ask the system for one emission round and execute its batch through the
   matcher, recording each executed comparison against the ground truth;
3. if the system emitted nothing: let it manufacture idle work (the paper's
   "empty increment" trigger), or fast-forward to the next arrival, or stop
   when both the stream and the system are exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import GroundTruth
from repro.core.increments import StreamPlan
from repro.evaluation.recorder import ProgressCurve, ProgressRecorder
from repro.matching.matcher import Matcher
from repro.priority.rates import RateEstimator
from repro.streaming.system import ERSystem, PipelineStats

__all__ = ["RunResult", "StreamingEngine"]


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one simulated run."""

    system_name: str
    matcher_name: str
    curve: ProgressCurve
    duplicates: frozenset[tuple[int, int]]
    comparisons_executed: int
    clock_end: float
    budget: float
    stream_consumed_at: float | None     # when the last increment was ingested
    work_exhausted: bool                 # system + stream fully drained
    increments_ingested: int
    match_events: tuple[tuple[float, tuple[int, int]], ...] = ()
    details: dict[str, object] = field(default_factory=dict)

    @property
    def final_pc(self) -> float:
        return self.curve.final_pc


class StreamingEngine:
    """Runs ER systems against stream plans under a virtual time budget."""

    def __init__(
        self,
        matcher: Matcher,
        budget: float,
        match_cost_prior: float = 1e-4,
        sample_every: int = 64,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.matcher = matcher
        self.budget = budget
        self.match_cost_prior = match_cost_prior
        self.sample_every = sample_every

    # ------------------------------------------------------------------
    def run(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
    ) -> RunResult:
        """Simulate ``system`` over ``plan`` and return its progress curve."""
        matcher = self.matcher
        matcher.reset_stats()
        recorder = ProgressRecorder(ground_truth, sample_every=self.sample_every)
        arrival_estimator = RateEstimator()
        duplicates: set[tuple[int, int]] = set()

        arrival_times = plan.arrival_times
        increments = plan.increments
        n_arrivals = len(plan)
        next_arrival = 0
        clock = arrival_times[0] if n_arrivals else 0.0
        consumed_at: float | None = None if n_arrivals else 0.0
        work_exhausted = False

        while clock < self.budget:
            # -- 1. ingest all due increments ---------------------------
            ingested_now = False
            while (
                next_arrival < n_arrivals
                and arrival_times[next_arrival] <= clock
                and system.ready_for_ingest()
            ):
                arrival_estimator.record(arrival_times[next_arrival])
                clock += system.ingest(increments[next_arrival])
                next_arrival += 1
                ingested_now = True
                if next_arrival == n_arrivals:
                    consumed_at = clock
                if clock >= self.budget:
                    break
            if clock >= self.budget:
                break

            # -- 2. one emission round ----------------------------------
            stats = self._stats(clock, arrival_estimator)
            emit = system.emit(stats)
            clock += emit.cost
            if emit.batch:
                for pid_x, pid_y in emit.batch:
                    result = matcher.evaluate(system.profile(pid_x), system.profile(pid_y))
                    clock += result.cost
                    recorder.record(pid_x, pid_y, clock)
                    if result.is_match:
                        duplicates.add((min(pid_x, pid_y), max(pid_x, pid_y)))
                    if clock >= self.budget:
                        break
                continue
            if ingested_now or clock >= self.budget:
                continue

            # -- 3. nothing emitted: idle handling ----------------------
            if next_arrival < n_arrivals and arrival_times[next_arrival] <= clock:
                # Back-pressure refused ingestion but there is no work
                # either: force-feed one increment to avoid a livelock.
                arrival_estimator.record(arrival_times[next_arrival])
                clock += system.ingest(increments[next_arrival])
                next_arrival += 1
                if next_arrival == n_arrivals:
                    consumed_at = clock
                continue
            idle_cost = system.on_idle(self._stats(clock, arrival_estimator))
            if idle_cost is not None:
                clock += idle_cost
                continue
            if next_arrival < n_arrivals:
                clock = arrival_times[next_arrival]  # sleep until next arrival
                continue
            work_exhausted = True
            break

        final_clock = min(clock, self.budget) if not work_exhausted else clock
        recorder.mark(final_clock)
        return RunResult(
            system_name=system.name,
            matcher_name=matcher.name,
            curve=recorder.curve(),
            duplicates=frozenset(duplicates),
            comparisons_executed=recorder.comparisons_executed,
            clock_end=final_clock,
            budget=self.budget,
            stream_consumed_at=consumed_at,
            work_exhausted=work_exhausted,
            increments_ingested=next_arrival,
            match_events=recorder.match_events(),
            details=system.describe(),
        )

    # ------------------------------------------------------------------
    def _stats(self, clock: float, arrival_estimator: RateEstimator) -> PipelineStats:
        mean_cost = self.matcher.mean_cost or self.match_cost_prior
        return PipelineStats(
            now=clock,
            input_rate=arrival_estimator.rate_at(clock),
            mean_match_cost=mean_cost,
            backlog=0,
            remaining_budget=self.budget - clock,
        )
