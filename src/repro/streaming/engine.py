"""The serial discrete-event streaming engine.

The engine drives one :class:`ERSystem` over a :class:`StreamPlan` on a
*virtual clock*: every pipeline action (ingesting an increment, updating the
comparison index, evaluating a comparison) advances the clock by its
reported virtual cost.  Increment arrivals are pinned to their plan times,
so the interplay the paper studies — idle time on slow streams, backlog and
back-pressure on fast streams, initialization stalls of the batch
adaptations, the adaptive budget of PIER — emerges deterministically and
reproducibly from one loop, independent of the host machine.

All policy-free machinery (budget clamping, retry/backoff, quarantine,
load shedding, exactly-once dedup, checkpoint cadence, metrics, and the
scalar/batched matching kernels) lives in
:class:`~repro.execution.core.ExecutionCore`; this class contributes only
the *serial* step-ordering policy, one loop iteration being:

1. ingest every increment that has arrived by ``clock`` (subject to the
   system's back-pressure hook), charging ingestion costs;
2. ask the system for one emission round and execute its batch through the
   matcher, recording each executed comparison against the ground truth;
3. if the system emitted nothing: let it manufacture idle work (the paper's
   "empty increment" trigger), or fast-forward to the next arrival, or stop
   when both the stream and the system are exhausted.

Because every stage charges the same clock, an expensive matcher delays
ingestion (and vice versa) — the fully sequential execution model.
"""

from __future__ import annotations

from repro.execution.core import PRESEEDED_COUNTERS, ExecutionCore, RunResult, RunState

__all__ = ["RunResult", "StreamingEngine"]

# Backwards-compatible alias (the preseed list moved into the core, which
# seeds it identically for every engine).
_PRESEEDED_COUNTERS = PRESEEDED_COUNTERS


class StreamingEngine(ExecutionCore):
    """Runs ER systems against stream plans on one shared virtual clock.

    See :class:`~repro.execution.core.ExecutionCore` for the constructor
    parameters (matcher, budget, resilience, batch_matching, ...).
    """

    _KIND = "serial"
    _TRACKS_INGEST_CLOCK = False

    # ------------------------------------------------------------------
    def _drive(self, state: RunState) -> None:
        system = state.system
        metrics = state.metrics
        arrival_times = state.arrival_times
        budget = self.budget

        while state.clock < budget:
            # -- 0. resilience bookkeeping at the loop-top cut ----------
            self._loop_top(state)

            # -- 1. ingest all due increments ---------------------------
            ingested_now = False
            with metrics.time_phase("ingest") as ingest_timer:
                while (
                    state.next_arrival < state.n_arrivals
                    and arrival_times[state.next_arrival] <= state.clock
                    and system.ready_for_ingest()
                ):
                    if state.increments[state.next_arrival].index in state.seen_increments:
                        self._drop_redelivered(state, state.clock)
                        ingested_now = True
                        continue
                    self._ingest_one(state, ingest_timer)
                    ingested_now = True
                    if state.clock >= budget:
                        break
            if state.clock >= budget:
                break

            # -- 2. one emission round ----------------------------------
            stats = self._pipeline_stats(state)
            with metrics.time_phase("emit") as emit_timer:
                emit = system.emit(stats)
                state.clock += emit.cost
                emit_timer.virtual += emit.cost
            state.rounds += 1
            metrics.count("engine.emission_rounds")
            executed_before = state.recorder.comparisons_executed
            if emit.batch:
                with metrics.time_phase("match") as match_timer:
                    self._execute_emission(state, emit.batch, match_timer)
                self._record_round(
                    state, stats,
                    emitted=len(emit.batch),
                    executed=state.recorder.comparisons_executed - executed_before,
                )
                continue
            self._record_round(state, stats, emitted=0, executed=0)
            if ingested_now or state.clock >= budget:
                continue

            # -- 3. nothing emitted: idle handling ----------------------
            if state.next_arrival < state.n_arrivals and arrival_times[state.next_arrival] <= state.clock:
                # Back-pressure refused ingestion but there is no work
                # either: force-feed one increment to avoid a livelock.
                if state.increments[state.next_arrival].index in state.seen_increments:
                    self._drop_redelivered(state, state.clock)
                    continue
                with metrics.time_phase("ingest") as ingest_timer:
                    self._ingest_one(state, ingest_timer, forced=True)
                continue
            with metrics.time_phase("idle") as idle_timer:
                idle_cost = system.on_idle(self._pipeline_stats(state))
                if idle_cost is not None:
                    state.clock += idle_cost
                    idle_timer.virtual += idle_cost
            if idle_cost is not None:
                metrics.count("engine.idle_rounds")
                continue
            if state.next_arrival < state.n_arrivals:
                gap = arrival_times[state.next_arrival] - state.clock
                state.clock = arrival_times[state.next_arrival]  # sleep until next arrival
                metrics.count("engine.fast_forwards")
                metrics.phase("sleep").add(gap)
                continue
            state.work_exhausted = True
            break

    # ------------------------------------------------------------------
    def _advance_ingest(self, state: RunState, arrival: float, cost: float) -> float:
        # Serial policy: ingestion charges the one shared clock.
        state.clock += cost
        return state.clock
