"""The discrete-event streaming engine.

The engine drives one :class:`ERSystem` over a :class:`StreamPlan` on a
*virtual clock*: every pipeline action (ingesting an increment, updating the
comparison index, evaluating a comparison) advances the clock by its
reported virtual cost.  Increment arrivals are pinned to their plan times,
so the interplay the paper studies — idle time on slow streams, backlog and
back-pressure on fast streams, initialization stalls of the batch
adaptations, the adaptive budget of PIER — emerges deterministically and
reproducibly from one loop, independent of the host machine.

Loop structure per iteration:

1. ingest every increment that has arrived by ``clock`` (subject to the
   system's back-pressure hook), charging ingestion costs;
2. ask the system for one emission round and execute its batch through the
   matcher, recording each executed comparison against the ground truth;
3. if the system emitted nothing: let it manufacture idle work (the paper's
   "empty increment" trigger), or fast-forward to the next arrival, or stop
   when both the stream and the system are exhausted.

Budget semantics: the budget is a hard deadline on the virtual clock.  A
comparison whose (deterministic) cost would push the clock past the budget
is *not* executed and *not* credited to the progress curve — the engine
charges the remaining time as cut-off work and stops, so no point of the
reported curve ever lies beyond the budget.

Every run is instrumented through a fresh
:class:`~repro.observability.metrics.MetricsRegistry` (bound to the system
and the matcher): named counters, per-phase virtual/wall timers and a
bounded per-round gauge log, exported as ``details["metrics"]`` on the
:class:`RunResult`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.core.dataset import GroundTruth
from repro.core.increments import StreamPlan
from repro.evaluation.recorder import ProgressCurve, ProgressRecorder
from repro.matching.matcher import Matcher
from repro.observability.metrics import MetricsRegistry
from repro.priority.rates import RateEstimator
from repro.streaming.system import ERSystem, PipelineStats

__all__ = ["RunResult", "StreamingEngine"]


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one simulated run."""

    system_name: str
    matcher_name: str
    curve: ProgressCurve
    duplicates: frozenset[tuple[int, int]]
    comparisons_executed: int
    clock_end: float
    budget: float
    stream_consumed_at: float | None     # when the last increment was ingested
    work_exhausted: bool                 # system + stream fully drained
    increments_ingested: int
    match_events: tuple[tuple[float, tuple[int, int]], ...] = ()
    details: dict[str, object] = field(default_factory=dict)

    @property
    def final_pc(self) -> float:
        return self.curve.final_pc


class StreamingEngine:
    """Runs ER systems against stream plans under a virtual time budget."""

    def __init__(
        self,
        matcher: Matcher,
        budget: float,
        match_cost_prior: float = 1e-4,
        sample_every: int = 64,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.matcher = matcher
        self.budget = budget
        self.match_cost_prior = match_cost_prior
        self.sample_every = sample_every

    # ------------------------------------------------------------------
    def run(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
    ) -> RunResult:
        """Simulate ``system`` over ``plan`` and return its progress curve."""
        matcher = self.matcher
        matcher.reset_stats()
        metrics = MetricsRegistry()
        system.bind_metrics(metrics)
        matcher.bind_metrics(metrics)
        recorder = ProgressRecorder(ground_truth, sample_every=self.sample_every)
        arrival_estimator = RateEstimator()
        duplicates: set[tuple[int, int]] = set()

        arrival_times = plan.arrival_times
        increments = plan.increments
        n_arrivals = len(plan)
        next_arrival = 0
        clock = arrival_times[0] if n_arrivals else 0.0
        consumed_at: float | None = None if n_arrivals else 0.0
        work_exhausted = False
        rounds = 0

        while clock < self.budget:
            # -- 1. ingest all due increments ---------------------------
            ingested_now = False
            with metrics.time_phase("ingest") as ingest_timer:
                while (
                    next_arrival < n_arrivals
                    and arrival_times[next_arrival] <= clock
                    and system.ready_for_ingest()
                ):
                    arrival_estimator.record(arrival_times[next_arrival])
                    cost = system.ingest(increments[next_arrival])
                    clock += cost
                    ingest_timer.virtual += cost
                    metrics.count("engine.increments_ingested")
                    next_arrival += 1
                    ingested_now = True
                    if next_arrival == n_arrivals:
                        consumed_at = clock
                    if clock >= self.budget:
                        break
            if clock >= self.budget:
                break

            # -- 2. one emission round ----------------------------------
            stats = self._stats(clock, arrival_estimator, self._backlog(plan, next_arrival, clock))
            with metrics.time_phase("emit") as emit_timer:
                emit = system.emit(stats)
                clock += emit.cost
                emit_timer.virtual += emit.cost
            rounds += 1
            metrics.count("engine.emission_rounds")
            executed_before = recorder.comparisons_executed
            if emit.batch:
                with metrics.time_phase("match") as match_timer:
                    for position, (pid_x, pid_y) in enumerate(emit.batch):
                        profile_x = system.profile(pid_x)
                        profile_y = system.profile(pid_y)
                        cost = matcher.estimate_cost(profile_x, profile_y)
                        if clock + cost > self.budget:
                            # The comparison cannot finish by the deadline:
                            # charge the cut-off time, credit nothing.
                            metrics.count(
                                "engine.comparisons_cut_by_deadline",
                                len(emit.batch) - position,
                            )
                            match_timer.virtual += self.budget - clock
                            clock = self.budget
                            break
                        result = matcher.evaluate(profile_x, profile_y)
                        clock += result.cost
                        match_timer.virtual += result.cost
                        metrics.count("engine.comparisons_executed")
                        if recorder.record(pid_x, pid_y, clock):
                            metrics.count("engine.matches_recorded")
                        if result.is_match:
                            duplicates.add((min(pid_x, pid_y), max(pid_x, pid_y)))
                        if clock >= self.budget:
                            break
                self._record_round(
                    metrics, system, stats, rounds, clock,
                    emitted=len(emit.batch),
                    executed=recorder.comparisons_executed - executed_before,
                )
                continue
            self._record_round(metrics, system, stats, rounds, clock, emitted=0, executed=0)
            if ingested_now or clock >= self.budget:
                continue

            # -- 3. nothing emitted: idle handling ----------------------
            if next_arrival < n_arrivals and arrival_times[next_arrival] <= clock:
                # Back-pressure refused ingestion but there is no work
                # either: force-feed one increment to avoid a livelock.
                with metrics.time_phase("ingest") as ingest_timer:
                    arrival_estimator.record(arrival_times[next_arrival])
                    cost = system.ingest(increments[next_arrival])
                    clock += cost
                    ingest_timer.virtual += cost
                    metrics.count("engine.increments_ingested")
                    metrics.count("engine.forced_ingests")
                    next_arrival += 1
                    if next_arrival == n_arrivals:
                        consumed_at = clock
                continue
            with metrics.time_phase("idle") as idle_timer:
                idle_cost = system.on_idle(
                    self._stats(clock, arrival_estimator, self._backlog(plan, next_arrival, clock))
                )
                if idle_cost is not None:
                    clock += idle_cost
                    idle_timer.virtual += idle_cost
            if idle_cost is not None:
                metrics.count("engine.idle_rounds")
                continue
            if next_arrival < n_arrivals:
                gap = arrival_times[next_arrival] - clock
                clock = arrival_times[next_arrival]  # sleep until next arrival
                metrics.count("engine.fast_forwards")
                metrics.phase("sleep").add(gap)
                continue
            work_exhausted = True
            break

        final_clock = min(clock, self.budget) if not work_exhausted else clock
        recorder.mark(final_clock)
        metrics.gauge("engine.clock_end", final_clock)
        metrics.gauge("engine.budget", self.budget)
        details = dict(system.describe())
        details["metrics"] = metrics.snapshot()
        return RunResult(
            system_name=system.name,
            matcher_name=matcher.name,
            curve=recorder.curve(),
            duplicates=frozenset(duplicates),
            comparisons_executed=recorder.comparisons_executed,
            clock_end=final_clock,
            budget=self.budget,
            stream_consumed_at=consumed_at,
            work_exhausted=work_exhausted,
            increments_ingested=next_arrival,
            match_events=recorder.match_events(),
            details=details,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _backlog(plan: StreamPlan, next_arrival: int, clock: float) -> int:
        """Increments that have arrived by ``clock`` but are not yet ingested."""
        due = bisect.bisect_right(plan.arrival_times, clock, next_arrival)
        return due - next_arrival

    @staticmethod
    def _record_round(
        metrics: MetricsRegistry,
        system: ERSystem,
        stats: PipelineStats,
        round_index: int,
        clock: float,
        emitted: int,
        executed: int,
    ) -> None:
        metrics.record_round(
            round=round_index,
            clock=clock,
            backlog=stats.backlog,
            input_rate=stats.input_rate,
            emitted=emitted,
            executed=executed,
            **system.gauges(),
        )

    def _stats(
        self, clock: float, arrival_estimator: RateEstimator, backlog: int
    ) -> PipelineStats:
        mean_cost = self.matcher.mean_cost or self.match_cost_prior
        return PipelineStats(
            now=clock,
            input_rate=arrival_estimator.rate_at(clock),
            mean_match_cost=mean_cost,
            backlog=backlog,
            remaining_budget=self.budget - clock,
        )
