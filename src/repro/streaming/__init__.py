"""Virtual-time streaming substrate: system contract and simulation engine."""

from repro.streaming.engine import RunResult, StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine
from repro.streaming.system import EmitResult, ERSystem, PipelineCosts, PipelineStats

__all__ = [
    "EmitResult",
    "ERSystem",
    "PipelineCosts",
    "PipelineStats",
    "PipelinedStreamingEngine",
    "RunResult",
    "StreamingEngine",
]
