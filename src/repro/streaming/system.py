"""The contract between ER systems and the streaming engine.

Every algorithm in this library — batch progressive baselines (PPS, PBS),
the incremental baseline (I-BASE), the PIER algorithms (I-PCS, I-PBS,
I-PES) and the naive GLOBAL/LOCAL adaptations — is packaged as an
:class:`ERSystem`.  The engine feeds it increments, asks it for comparison
batches, and charges all virtual costs the system reports, so that the
paper's throughput phenomena (initialization stalls, back-pressure,
adaptive budgets) emerge from one shared simulation loop.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.core.increments import Increment
from repro.core.profile import EntityProfile
from repro.execution.store import ComparisonStore
from repro.observability.metrics import MetricsRegistry

__all__ = ["PipelineCosts", "PipelineStats", "EmitResult", "ERSystem"]


@dataclass(frozen=True, slots=True)
class PipelineCosts:
    """Virtual cost parameters of the non-matching pipeline stages.

    All values are virtual seconds per unit of work.  They are deliberately
    orders of magnitude below typical match costs (the matcher is the usual
    ER bottleneck), but initialization-heavy algorithms multiply them by
    very large unit counts.
    """

    per_profile: float = 5e-5       # data reading / scrubbing / tokenizing
    per_token: float = 2e-6         # one inverted-index update
    per_weight: float = 5e-6        # one weighting-scheme evaluation
    per_enqueue: float = 1e-6       # one priority-queue operation
    per_edge_enumeration: float = 1e-6   # one block-graph edge visit (PPS init)
    per_block_open: float = 5e-6    # opening/sorting one block (PBS/I-PBS)
    per_round: float = 1e-5         # fixed overhead of one emission round


@dataclass(frozen=True, slots=True)
class PipelineStats:
    """Runtime estimates the engine shares with adaptive systems (findK)."""

    now: float
    input_rate: float | None        # increments per virtual second (EMA)
    mean_match_cost: float          # virtual seconds per executed comparison
    backlog: int                    # increments arrived but not yet ingested
    remaining_budget: float | None = None  # virtual seconds left in this run


@dataclass(frozen=True, slots=True)
class EmitResult:
    """One emission round: the comparisons to execute next and their
    prioritization cost (matching costs are charged separately)."""

    batch: tuple[tuple[int, int], ...]
    cost: float

    @property
    def is_empty(self) -> bool:
        return not self.batch


class ERSystem:
    """Base class for all ER systems driven by the streaming engine.

    Subclasses must implement :meth:`ingest`, :meth:`emit` and
    :meth:`profile`; the remaining hooks have sensible defaults.
    """

    name: str = "er-system"
    _metrics: MetricsRegistry | None = None
    #: The system's comparison registry (executed-set / Bloom / quarantine).
    #: Systems that dedup comparisons create one eagerly in ``__init__``;
    #: for everything else the :attr:`comparison_store` property lazily
    #: provides one on first engine access.
    store: ComparisonStore | None = None

    @property
    def comparison_store(self) -> ComparisonStore:
        """The shared :class:`ComparisonStore` the engines bind to.

        It shares the system's lifetime (like the executed sets it
        replaced), and ``snapshot``/``restore`` carry it with the rest of
        the mutable state, so checkpoints serialize it exactly once.
        """
        if self.store is None:
            self.store = ComparisonStore()
        return self.store

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry (a private one until an engine binds its own)."""
        if self._metrics is None:
            self._metrics = MetricsRegistry()
        return self._metrics

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Attach the engine's per-run registry; called at the start of a run."""
        self._metrics = registry

    def _flush_blocking_metrics(self, collection) -> None:
        """Drain a blocking substrate's buffered counter deltas.

        Substrate telemetry (``blocking.lsh.*``) accrues on the collection
        object — which is what engine checkpoints deep-copy — and systems
        flush it here at their ingest/idle boundaries, so a restored run
        replays both the metrics registry and the undrained buffer from one
        consistent snapshot.
        """
        pending = collection.drain_metrics()
        if pending:
            metrics = self.metrics
            for name, value in pending.items():
                metrics.count(name, value)

    def gauges(self) -> dict[str, float]:
        """Current gauge readings sampled into the per-round log.

        Subclasses report whatever describes their internal pressure — the
        adaptive ``K``, queue depths, bloom filter growth.  Keys should be
        flat dotted names; values must be plain numbers.
        """
        return {}

    def ingest(self, increment: Increment) -> float:
        """Consume a data increment; return the virtual cost of doing so."""
        raise NotImplementedError

    def emit(self, stats: PipelineStats) -> EmitResult:
        """Produce the next batch of comparisons to execute."""
        raise NotImplementedError

    def profile(self, pid: int) -> EntityProfile:
        """Profile lookup for the classification step."""
        raise NotImplementedError

    def ready_for_ingest(self) -> bool:
        """Back-pressure hook: may the engine hand over the next increment?

        Non-adaptive systems with bounded internal queues (I-BASE) return
        ``False`` while their backlog is above the high watermark, which
        delays stream consumption exactly as the paper describes.
        """
        return True

    def has_pending_comparisons(self) -> bool:
        """Cheap probe: would :meth:`emit` (likely) return work right now?

        Used by the pipelined engine to decide whether the match stage can
        proceed without waiting for the ingest stage.  ``True`` is a safe
        default (the engine tolerates empty emissions).
        """
        return True

    def on_idle(self, stats: PipelineStats) -> float | None:
        """Called when no increment is due and :meth:`emit` returned empty.

        Systems that can manufacture more work (the paper's "empty
        increment" trigger, e.g. ``GetComparisons`` refills) do so and
        return the virtual cost.  Returning ``None`` signals exhaustion.
        """
        return None

    def snapshot(self) -> dict[str, object]:
        """A deep snapshot of all mutable system state.

        The default walks ``__dict__`` (excluding the metrics binding),
        which covers any system built from plain containers; systems with
        structure-sharing internals override this for tighter control.
        Profiles alias rather than copy (``EntityProfile.__deepcopy__``),
        so snapshots cost memory proportional to the *index* state only.
        """
        return {
            key: copy.deepcopy(value)
            for key, value in self.__dict__.items()
            if key != "_metrics"
        }

    def restore(self, state: dict[str, object]) -> None:
        """Rewind to a snapshot, keeping the current metrics binding.

        The state is deep-copied on the way in, so one checkpoint can seed
        any number of restores.
        """
        metrics = self._metrics
        self.__dict__.update(copy.deepcopy(state))
        self._metrics = metrics

    def describe(self) -> dict[str, object]:
        """Reporting metadata."""
        return {"name": self.name}
