"""Two-stage pipelined engine: ingest and matching on concurrent clocks.

The paper's actual deployment (Scala / Akka Streams; Figure 3) is *task
parallel*: Incremental Blocking and Incremental Prioritization process new
increments while Incremental Classification is still executing comparisons
of earlier ones.  The serial :class:`~repro.streaming.engine.StreamingEngine`
charges all work to one clock; this engine models the dominant parallelism
with two virtual clocks:

* the **ingest clock** advances with blocking + prioritization work; an
  increment's ingestion starts at ``max(arrival, ingest_clock)``;
* the **match clock** advances with emission rounds and matcher
  evaluations.

Visibility rule (one-increment granularity): the match stage only emits
from system state whose ingests *started* at or before the current match
clock — the ingest stage is caught up to the match clock before every
emission round, and comparisons produced by ingests that complete during a
long match batch become visible at the next round, as they would in the
real pipeline.

The reported curve timestamps, budget, and stream-consumed marker use the
same conventions as the serial engine, so results are directly comparable;
under load, the pipelined engine consumes the stream strictly earlier
because ingestion no longer waits for the matcher.  The budget is a hard
deadline for *both* clocks: an ingest that cannot start before the deadline
is not performed (the run ends budget-bound), and the reported
``engine.ingest_clock_end`` gauge never exceeds the budget.

Resilience semantics (exactly-once increments, matcher retry with backoff,
cost-ceiling quarantine, load shedding, checkpoint/restore) are shared with
the serial engine — see :mod:`repro.resilience` and
:func:`repro.streaming.engine._execute_batch`.
"""

from __future__ import annotations

import bisect

from repro.core.dataset import GroundTruth
from repro.core.increments import StreamPlan
from repro.evaluation.recorder import ProgressRecorder
from repro.matching.matcher import Matcher
from repro.observability.metrics import MetricsRegistry
from repro.priority.rates import RateEstimator
from repro.resilience.checkpoint import EngineCheckpoint, SimulatedCrash, plan_token
from repro.resilience.retry import DEFAULT_RESILIENCE, ResilienceConfig
from repro.streaming.engine import (
    _PRESEEDED_COUNTERS,
    RunResult,
    StreamingEngine,
    _execute_batch,
)
from repro.streaming.system import ERSystem, PipelineStats

__all__ = ["PipelinedStreamingEngine"]


class PipelinedStreamingEngine:
    """Runs an :class:`ERSystem` with concurrent ingest and match stages."""

    _KIND = "pipelined"

    def __init__(
        self,
        matcher: Matcher,
        budget: float,
        match_cost_prior: float = 1e-4,
        sample_every: int = 64,
        resilience: ResilienceConfig | None = None,
        checkpoint_every: float | None = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.matcher = matcher
        self.budget = budget
        self.match_cost_prior = match_cost_prior
        self.sample_every = sample_every
        resilience = resilience or DEFAULT_RESILIENCE
        if checkpoint_every is not None:
            from dataclasses import replace

            resilience = replace(resilience, checkpoint_every=checkpoint_every)
        self.resilience = resilience
        self.last_checkpoint: EngineCheckpoint | None = None

    # Same validation rules as the serial engine (kind/budget/plan match).
    _check_resumable = StreamingEngine._check_resumable

    # ------------------------------------------------------------------
    def run(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
        resume_from: EngineCheckpoint | None = None,
    ) -> RunResult:
        matcher = self.matcher
        resilience = self.resilience
        matcher.reset_stats()
        metrics = MetricsRegistry()
        system.bind_metrics(metrics)
        matcher.bind_metrics(metrics)
        recorder = ProgressRecorder(ground_truth, sample_every=self.sample_every)
        arrival_estimator = RateEstimator()
        duplicates: set[tuple[int, int]] = set()
        quarantined: set[tuple[int, int]] = set()
        seen_increments: set[int] = set()

        arrival_times = plan.arrival_times
        increments = plan.increments
        n_arrivals = len(plan)
        plan_fingerprint = plan_token(plan)
        next_arrival = 0
        ingest_clock = arrival_times[0] if n_arrivals else 0.0
        match_clock = ingest_clock
        consumed_at: float | None = None if n_arrivals else 0.0
        work_exhausted = False
        rounds = 0
        ingested = 0
        shed = 0
        duplicates_dropped = 0

        if resume_from is not None:
            self._check_resumable(resume_from, plan_fingerprint)
            metrics.load_state(resume_from.metrics_state)
            system.restore(resume_from.system_state)
            matcher.restore_state(resume_from.matcher_state)
            recorder.restore_state(resume_from.recorder_state)
            arrival_estimator.restore_state(resume_from.estimator_state)
            duplicates = set(resume_from.duplicates)
            quarantined = set(resume_from.quarantined)
            seen_increments = set(resume_from.seen_increments)
            next_arrival = resume_from.next_arrival
            ingest_clock = resume_from.ingest_clock
            match_clock = resume_from.clock
            consumed_at = resume_from.consumed_at
            rounds = resume_from.rounds
            ingested = resume_from.ingested
            shed = resume_from.shed
            duplicates_dropped = resume_from.duplicates_dropped
            self.last_checkpoint = resume_from
        for name in _PRESEEDED_COUNTERS:
            metrics.count(name, 0)
        last_checkpoint_clock = match_clock

        def ingest_next(forced: bool = False) -> None:
            """Consume the next arrival (dropping exactly-once redeliveries)."""
            nonlocal ingest_clock, next_arrival, consumed_at, ingested, duplicates_dropped
            increment = increments[next_arrival]
            if increment.index in seen_increments:
                metrics.count("engine.duplicate_increments_dropped")
                duplicates_dropped += 1
                next_arrival += 1
                if next_arrival == n_arrivals:
                    consumed_at = ingest_clock
                return
            with metrics.time_phase("ingest") as timer:
                start = max(arrival_times[next_arrival], ingest_clock)
                seen_increments.add(increment.index)
                arrival_estimator.record(arrival_times[next_arrival])
                cost = system.ingest(increment)
                ingest_clock = start + cost
                timer.virtual += cost
            metrics.count("engine.increments_ingested")
            ingested += 1
            if forced:
                metrics.count("engine.forced_ingests")
            next_arrival += 1
            if next_arrival == n_arrivals:
                consumed_at = ingest_clock

        def backlog() -> int:
            due = bisect.bisect_right(arrival_times, match_clock, next_arrival)
            return due - next_arrival

        while match_clock < self.budget:
            # -- 0. resilience bookkeeping at the loop-top cut -----------
            if (
                resilience.checkpoint_every is not None
                and match_clock - last_checkpoint_clock >= resilience.checkpoint_every
            ):
                metrics.count("engine.checkpoints_taken")
                self.last_checkpoint = EngineCheckpoint(
                    engine=self._KIND,
                    budget=self.budget,
                    plan_fingerprint=plan_fingerprint,
                    clock=match_clock,
                    ingest_clock=ingest_clock,
                    next_arrival=next_arrival,
                    consumed_at=consumed_at,
                    rounds=rounds,
                    ingested=ingested,
                    shed=shed,
                    duplicates_dropped=duplicates_dropped,
                    seen_increments=frozenset(seen_increments),
                    duplicates=frozenset(duplicates),
                    quarantined=frozenset(quarantined),
                    system_state=system.snapshot(),
                    matcher_state=matcher.snapshot_state(),
                    recorder_state=recorder.snapshot_state(),
                    estimator_state=arrival_estimator.snapshot_state(),
                    metrics_state=metrics.dump_state(),
                )
                last_checkpoint_clock = match_clock
            if resilience.crash_at is not None and match_clock >= resilience.crash_at:
                raise SimulatedCrash(self.last_checkpoint, match_clock)
            if resilience.shed_watermark is not None:
                excess = backlog() - resilience.shed_watermark
                while excess > 0:
                    metrics.count("engine.shed_increments")
                    shed += 1
                    next_arrival += 1
                    excess -= 1
                    if next_arrival == n_arrivals:
                        consumed_at = match_clock

            # -- 1. catch the ingest stage up to the match clock ---------
            while (
                next_arrival < n_arrivals
                and max(arrival_times[next_arrival], ingest_clock) <= match_clock
                and system.ready_for_ingest()
                and ingest_clock < self.budget
            ):
                ingest_next()

            # -- 2. one emission round on the match clock ----------------
            if system.has_pending_comparisons():
                stats = self._stats(match_clock, arrival_estimator, backlog())
                with metrics.time_phase("emit") as emit_timer:
                    emit = system.emit(stats)
                    match_clock += emit.cost
                    emit_timer.virtual += emit.cost
                rounds += 1
                metrics.count("engine.emission_rounds")
                executed_before = recorder.comparisons_executed
                clock_before = match_clock
                with metrics.time_phase("match") as match_timer:
                    match_clock, deadline_cut = _execute_batch(
                        batch=emit.batch,
                        system=system,
                        matcher=matcher,
                        recorder=recorder,
                        duplicates=duplicates,
                        quarantined=quarantined,
                        metrics=metrics,
                        match_timer=match_timer,
                        clock=match_clock,
                        budget=self.budget,
                        resilience=resilience,
                    )
                executed = recorder.comparisons_executed - executed_before
                StreamingEngine._record_round(
                    metrics, system, stats, rounds, match_clock,
                    emitted=len(emit.batch), executed=executed,
                )
                if executed or deadline_cut or emit.cost > 0 or match_clock > clock_before:
                    continue

            # -- 3. match stage starved: advance towards more input ------
            if next_arrival < n_arrivals:
                start = max(arrival_times[next_arrival], ingest_clock)
                if start >= self.budget:
                    # The next ingest cannot even start before the deadline:
                    # the run is budget-bound; charging work past the budget
                    # (and reporting clocks beyond it) would be wrong.
                    metrics.count(
                        "engine.ingests_cut_by_deadline", n_arrivals - next_arrival
                    )
                    match_clock = self.budget
                    break
                if system.ready_for_ingest():
                    # Run the next ingest (even if it starts after the match
                    # clock) and let the matcher wait for its completion.
                    ingest_next()
                    match_clock = min(max(match_clock, ingest_clock), self.budget)
                    continue
                # Back-pressured with no pending comparisons: force one
                # increment through to avoid a livelock.
                ingest_next(forced=True)
                match_clock = min(max(match_clock, ingest_clock), self.budget)
                continue
            with metrics.time_phase("idle") as idle_timer:
                idle_cost = system.on_idle(
                    self._stats(match_clock, arrival_estimator, backlog())
                )
                if idle_cost is not None:
                    match_clock += idle_cost
                    idle_timer.virtual += idle_cost
            if idle_cost is not None:
                metrics.count("engine.idle_rounds")
                continue
            work_exhausted = True
            break

        final_clock = min(match_clock, self.budget) if not work_exhausted else match_clock
        recorder.mark(final_clock)
        metrics.gauge("engine.clock_end", final_clock)
        metrics.gauge("engine.budget", self.budget)
        metrics.gauge("engine.ingest_clock_end", min(ingest_clock, self.budget))
        details = dict(system.describe())
        details["resilience"] = {
            "retries": metrics.counter("engine.retries"),
            "quarantined_pairs": tuple(sorted(quarantined)),
            "shed_increments": shed,
            "duplicate_increments_dropped": duplicates_dropped,
            "checkpoints_taken": metrics.counter("engine.checkpoints_taken"),
        }
        details["metrics"] = metrics.snapshot()
        return RunResult(
            system_name=system.name,
            matcher_name=matcher.name,
            curve=recorder.curve(),
            duplicates=frozenset(duplicates),
            comparisons_executed=recorder.comparisons_executed,
            clock_end=final_clock,
            budget=self.budget,
            stream_consumed_at=consumed_at,
            work_exhausted=work_exhausted,
            increments_ingested=ingested,
            match_events=recorder.match_events(),
            details=details,
        )

    # ------------------------------------------------------------------
    def _stats(
        self, clock: float, arrival_estimator: RateEstimator, backlog: int
    ) -> PipelineStats:
        mean_cost = self.matcher.mean_cost or self.match_cost_prior
        return PipelineStats(
            now=clock,
            input_rate=arrival_estimator.rate_at(clock),
            mean_match_cost=mean_cost,
            backlog=backlog,
            remaining_budget=self.budget - clock,
        )
