"""Two-stage pipelined engine: ingest and matching on concurrent clocks.

The paper's actual deployment (Scala / Akka Streams; Figure 3) is *task
parallel*: Incremental Blocking and Incremental Prioritization process new
increments while Incremental Classification is still executing comparisons
of earlier ones.  The serial :class:`~repro.streaming.engine.StreamingEngine`
charges all work to one clock; this engine models the dominant parallelism
with two virtual clocks:

* the **ingest clock** advances with blocking + prioritization work; an
  increment's ingestion starts at ``max(arrival, ingest_clock)``;
* the **match clock** advances with emission rounds and matcher
  evaluations.

Visibility rule (one-increment granularity): the match stage only emits
from system state whose ingests *started* at or before the current match
clock — the ingest stage is caught up to the match clock before every
emission round, and comparisons produced by ingests that complete during a
long match batch become visible at the next round, as they would in the
real pipeline.

The reported curve timestamps, budget, and stream-consumed marker use the
same conventions as the serial engine, so results are directly comparable;
under load, the pipelined engine consumes the stream strictly earlier
because ingestion no longer waits for the matcher.  The budget is a hard
deadline for *both* clocks: an ingest that cannot start before the deadline
is not performed (the run ends budget-bound), and the reported
``engine.ingest_clock_end`` gauge never exceeds the budget.

All policy-free machinery (budget clamping, retry/backoff, quarantine,
load shedding, exactly-once dedup, checkpoint/restore, metrics, and the
scalar/batched matching kernels) is inherited from
:class:`~repro.execution.core.ExecutionCore`; this class contributes only
the two-clock step-ordering policy.
"""

from __future__ import annotations

from repro.execution.core import ExecutionCore, RunResult, RunState
from repro.streaming.engine import StreamingEngine  # noqa: F401  (re-export convenience)

__all__ = ["PipelinedStreamingEngine"]


class PipelinedStreamingEngine(ExecutionCore):
    """Runs an :class:`ERSystem` with concurrent ingest and match stages.

    See :class:`~repro.execution.core.ExecutionCore` for the constructor
    parameters (matcher, budget, resilience, batch_matching, ...).
    """

    _KIND = "pipelined"
    _TRACKS_INGEST_CLOCK = True

    # ------------------------------------------------------------------
    def _drive(self, state: RunState) -> None:
        system = state.system
        metrics = state.metrics
        arrival_times = state.arrival_times
        budget = self.budget

        while state.clock < budget:
            # -- 0. resilience bookkeeping at the loop-top cut -----------
            self._loop_top(state)

            # -- 1. catch the ingest stage up to the match clock ---------
            while (
                state.next_arrival < state.n_arrivals
                and max(arrival_times[state.next_arrival], state.ingest_clock) <= state.clock
                and system.ready_for_ingest()
                and state.ingest_clock < budget
            ):
                self._ingest_step(state)

            # -- 2. one emission round on the match clock ----------------
            if system.has_pending_comparisons():
                stats = self._pipeline_stats(state)
                with metrics.time_phase("emit") as emit_timer:
                    emit = system.emit(stats)
                    state.clock += emit.cost
                    emit_timer.virtual += emit.cost
                state.rounds += 1
                metrics.count("engine.emission_rounds")
                executed_before = state.recorder.comparisons_executed
                clock_before = state.clock
                with metrics.time_phase("match") as match_timer:
                    deadline_cut = self._execute_emission(state, emit.batch, match_timer)
                executed = state.recorder.comparisons_executed - executed_before
                self._record_round(state, stats, emitted=len(emit.batch), executed=executed)
                if executed or deadline_cut or emit.cost > 0 or state.clock > clock_before:
                    continue

            # -- 3. match stage starved: advance towards more input ------
            if state.next_arrival < state.n_arrivals:
                start = max(arrival_times[state.next_arrival], state.ingest_clock)
                if start >= budget:
                    # The next ingest cannot even start before the deadline:
                    # the run is budget-bound; charging work past the budget
                    # (and reporting clocks beyond it) would be wrong.
                    metrics.count(
                        "engine.ingests_cut_by_deadline",
                        state.n_arrivals - state.next_arrival,
                    )
                    state.clock = budget
                    break
                if system.ready_for_ingest():
                    # Run the next ingest (even if it starts after the match
                    # clock) and let the matcher wait for its completion.
                    self._ingest_step(state)
                    state.clock = min(max(state.clock, state.ingest_clock), budget)
                    continue
                # Back-pressured with no pending comparisons: force one
                # increment through to avoid a livelock.
                self._ingest_step(state, forced=True)
                state.clock = min(max(state.clock, state.ingest_clock), budget)
                continue
            with metrics.time_phase("idle") as idle_timer:
                idle_cost = system.on_idle(self._pipeline_stats(state))
                if idle_cost is not None:
                    state.clock += idle_cost
                    idle_timer.virtual += idle_cost
            if idle_cost is not None:
                metrics.count("engine.idle_rounds")
                continue
            state.work_exhausted = True
            break

    # ------------------------------------------------------------------
    def _ingest_step(self, state: RunState, forced: bool = False) -> None:
        """Consume the next arrival (dropping exactly-once redeliveries)."""
        if state.increments[state.next_arrival].index in state.seen_increments:
            self._drop_redelivered(state, state.ingest_clock)
            return
        with state.metrics.time_phase("ingest") as timer:
            self._ingest_one(state, timer, forced=forced)

    def _advance_ingest(self, state: RunState, arrival: float, cost: float) -> float:
        # Pipelined policy: ingestion starts when both the increment and the
        # ingest stage are available, and charges only the ingest clock.
        start = max(arrival, state.ingest_clock)
        state.ingest_clock = start + cost
        return state.ingest_clock

    def _ingest_clock_end(self, state: RunState, final_clock: float) -> float:
        return min(state.ingest_clock, self.budget)
