"""Two-stage pipelined engine: ingest and matching on concurrent clocks.

The paper's actual deployment (Scala / Akka Streams; Figure 3) is *task
parallel*: Incremental Blocking and Incremental Prioritization process new
increments while Incremental Classification is still executing comparisons
of earlier ones.  The serial :class:`~repro.streaming.engine.StreamingEngine`
charges all work to one clock; this engine models the dominant parallelism
with two virtual clocks:

* the **ingest clock** advances with blocking + prioritization work; an
  increment's ingestion starts at ``max(arrival, ingest_clock)``;
* the **match clock** advances with emission rounds and matcher
  evaluations.

Visibility rule (one-increment granularity): the match stage only emits
from system state whose ingests *started* at or before the current match
clock — the ingest stage is caught up to the match clock before every
emission round, and comparisons produced by ingests that complete during a
long match batch become visible at the next round, as they would in the
real pipeline.

The reported curve timestamps, budget, and stream-consumed marker use the
same conventions as the serial engine, so results are directly comparable;
under load, the pipelined engine consumes the stream strictly earlier
because ingestion no longer waits for the matcher.
"""

from __future__ import annotations

import bisect

from repro.core.dataset import GroundTruth
from repro.core.increments import StreamPlan
from repro.evaluation.recorder import ProgressRecorder
from repro.matching.matcher import Matcher
from repro.observability.metrics import MetricsRegistry
from repro.priority.rates import RateEstimator
from repro.streaming.engine import RunResult, StreamingEngine
from repro.streaming.system import ERSystem, PipelineStats

__all__ = ["PipelinedStreamingEngine"]


class PipelinedStreamingEngine:
    """Runs an :class:`ERSystem` with concurrent ingest and match stages."""

    def __init__(
        self,
        matcher: Matcher,
        budget: float,
        match_cost_prior: float = 1e-4,
        sample_every: int = 64,
    ) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.matcher = matcher
        self.budget = budget
        self.match_cost_prior = match_cost_prior
        self.sample_every = sample_every

    # ------------------------------------------------------------------
    def run(
        self,
        system: ERSystem,
        plan: StreamPlan,
        ground_truth: GroundTruth,
    ) -> RunResult:
        matcher = self.matcher
        matcher.reset_stats()
        metrics = MetricsRegistry()
        system.bind_metrics(metrics)
        matcher.bind_metrics(metrics)
        recorder = ProgressRecorder(ground_truth, sample_every=self.sample_every)
        arrival_estimator = RateEstimator()
        duplicates: set[tuple[int, int]] = set()

        arrival_times = plan.arrival_times
        increments = plan.increments
        n_arrivals = len(plan)
        next_arrival = 0
        ingest_clock = arrival_times[0] if n_arrivals else 0.0
        match_clock = ingest_clock
        consumed_at: float | None = None if n_arrivals else 0.0
        work_exhausted = False
        rounds = 0

        def ingest_next(forced: bool = False) -> None:
            nonlocal ingest_clock, next_arrival, consumed_at
            with metrics.time_phase("ingest") as timer:
                start = max(arrival_times[next_arrival], ingest_clock)
                arrival_estimator.record(arrival_times[next_arrival])
                cost = system.ingest(increments[next_arrival])
                ingest_clock = start + cost
                timer.virtual += cost
            metrics.count("engine.increments_ingested")
            if forced:
                metrics.count("engine.forced_ingests")
            next_arrival += 1
            if next_arrival == n_arrivals:
                consumed_at = ingest_clock

        def backlog() -> int:
            due = bisect.bisect_right(arrival_times, match_clock, next_arrival)
            return due - next_arrival

        while match_clock < self.budget:
            # -- 1. catch the ingest stage up to the match clock ---------
            while (
                next_arrival < n_arrivals
                and max(arrival_times[next_arrival], ingest_clock) <= match_clock
                and system.ready_for_ingest()
                and ingest_clock < self.budget
            ):
                ingest_next()

            # -- 2. one emission round on the match clock ----------------
            if system.has_pending_comparisons():
                stats = self._stats(match_clock, arrival_estimator, backlog())
                with metrics.time_phase("emit") as emit_timer:
                    emit = system.emit(stats)
                    match_clock += emit.cost
                    emit_timer.virtual += emit.cost
                rounds += 1
                metrics.count("engine.emission_rounds")
                executed_before = recorder.comparisons_executed
                deadline_cut = False
                with metrics.time_phase("match") as match_timer:
                    for position, (pid_x, pid_y) in enumerate(emit.batch):
                        profile_x = system.profile(pid_x)
                        profile_y = system.profile(pid_y)
                        cost = matcher.estimate_cost(profile_x, profile_y)
                        if match_clock + cost > self.budget:
                            # Cannot finish by the deadline: charge the
                            # cut-off time, credit nothing.
                            metrics.count(
                                "engine.comparisons_cut_by_deadline",
                                len(emit.batch) - position,
                            )
                            match_timer.virtual += self.budget - match_clock
                            match_clock = self.budget
                            deadline_cut = True
                            break
                        result = matcher.evaluate(profile_x, profile_y)
                        match_clock += result.cost
                        match_timer.virtual += result.cost
                        metrics.count("engine.comparisons_executed")
                        if recorder.record(pid_x, pid_y, match_clock):
                            metrics.count("engine.matches_recorded")
                        if result.is_match:
                            duplicates.add((min(pid_x, pid_y), max(pid_x, pid_y)))
                        if match_clock >= self.budget:
                            break
                executed = recorder.comparisons_executed - executed_before
                StreamingEngine._record_round(
                    metrics, system, stats, rounds, match_clock,
                    emitted=len(emit.batch), executed=executed,
                )
                if executed or deadline_cut or emit.cost > 0:
                    continue

            # -- 3. match stage starved: advance towards more input ------
            if next_arrival < n_arrivals:
                if system.ready_for_ingest():
                    # Run the next ingest (even if it starts after the match
                    # clock) and let the matcher wait for its completion.
                    ingest_next()
                    match_clock = max(match_clock, ingest_clock)
                    continue
                # Back-pressured with no pending comparisons: force one
                # increment through to avoid a livelock.
                ingest_next(forced=True)
                match_clock = max(match_clock, ingest_clock)
                continue
            with metrics.time_phase("idle") as idle_timer:
                idle_cost = system.on_idle(
                    self._stats(match_clock, arrival_estimator, backlog())
                )
                if idle_cost is not None:
                    match_clock += idle_cost
                    idle_timer.virtual += idle_cost
            if idle_cost is not None:
                metrics.count("engine.idle_rounds")
                continue
            work_exhausted = True
            break

        final_clock = min(match_clock, self.budget) if not work_exhausted else match_clock
        recorder.mark(final_clock)
        metrics.gauge("engine.clock_end", final_clock)
        metrics.gauge("engine.budget", self.budget)
        metrics.gauge("engine.ingest_clock_end", ingest_clock)
        details = dict(system.describe())
        details["metrics"] = metrics.snapshot()
        return RunResult(
            system_name=system.name,
            matcher_name=matcher.name,
            curve=recorder.curve(),
            duplicates=frozenset(duplicates),
            comparisons_executed=recorder.comparisons_executed,
            clock_end=final_clock,
            budget=self.budget,
            stream_consumed_at=consumed_at,
            work_exhausted=work_exhausted,
            increments_ingested=next_arrival,
            match_events=recorder.match_events(),
            details=details,
        )

    # ------------------------------------------------------------------
    def _stats(
        self, clock: float, arrival_estimator: RateEstimator, backlog: int
    ) -> PipelineStats:
        mean_cost = self.matcher.mean_cost or self.match_cost_prior
        return PipelineStats(
            now=clock,
            input_rate=arrival_estimator.rate_at(clock),
            mean_match_cost=mean_cost,
            backlog=backlog,
            remaining_budget=self.budget - clock,
        )
