"""Match functions and their virtual-time cost models.

A :class:`Matcher` classifies a pair of profiles as duplicate / non-duplicate
by thresholding a similarity function (Definition: match function ``M`` in
the paper).  Each matcher also carries a :class:`CostModel` that charges
*virtual seconds* per comparison; the streaming engine uses these charges to
reproduce the throughput regimes of the paper (cheap JS → large adaptive
``K``; expensive ED → small ``K`` and back-pressure) deterministically,
independent of the host machine.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from typing import NamedTuple, Sequence

from repro.core.profile import EntityProfile
from repro.matching.similarity import (
    ED_KERNELS,
    dice_batch,
    jaccard,
    jaccard_batch,
    normalized_edit_similarity,
)
from repro.observability.metrics import MetricsRegistry

__all__ = [
    "CostModel",
    "Matcher",
    "JaccardMatcher",
    "EditDistanceMatcher",
    "MatchResult",
    "KERNEL_COUNTERS",
]

#: Hot-path outcome counters kept by matchers with staged scoring kernels
#: (plain ints on the matcher — the engine flushes them to the metrics
#: registry as ``matcher.kernel.<name>`` at finalize).  The names double as
#: the fixed key set of :attr:`Matcher.kernel_counts` so the counter schema
#: never varies with the data.
KERNEL_COUNTERS = ("short_texts", "prefilter_rejects", "length_cuts", "dp_calls")


class _NestedMatcherState(NamedTuple):
    """Snapshot of a matcher-valued attribute (e.g. a fault wrapper's inner
    matcher), so nested matchers get the same derived-state exclusion as the
    top-level one.  Picklable: checkpoints travel to disk and Tier B cells."""

    matcher_cls: type
    state: dict


@dataclass(frozen=True, slots=True)
class CostModel:
    """Virtual cost of evaluating one comparison.

    ``base`` is charged for every comparison; ``per_unit`` is multiplied by a
    matcher-specific size measure (token count for JS, character-product for
    ED).  All values are in virtual seconds.
    """

    base: float
    per_unit: float

    def charge(self, units: float) -> float:
        return self.base + self.per_unit * units


class MatchResult(NamedTuple):
    """Outcome of evaluating one comparison.

    A ``NamedTuple`` rather than a frozen dataclass: results are constructed
    once per comparison on the hottest path in the codebase, and tuple
    construction avoids the per-field ``object.__setattr__`` cost while
    keeping the record immutable and comparable.
    """

    is_match: bool
    similarity: float
    cost: float


class Matcher:
    """Base class: thresholded similarity classification with cost accounting.

    Subclasses implement :meth:`similarity` and :meth:`work_units`.
    """

    name = "matcher"

    #: Attribute names that are pure functions of other state (derivable
    #: caches).  They are excluded from checkpoints and worker templates —
    #: they are rebuilt deterministically by :meth:`_init_derived_state` —
    #: which keeps checkpoint payloads bounded no matter how many profiles
    #: a long stream has touched.
    _DERIVED_STATE: tuple[str, ...] = ()

    #: Contract for the engines' batched kernel.  ``True`` promises that
    #: :meth:`evaluate` is deterministic, never raises, and costs exactly
    #: :meth:`estimate_cost` — the conditions under which an emission round
    #: can be deadline-planned from estimates and evaluated as one batch,
    #: bit-identical to the scalar path.  Wrappers that perturb evaluation
    #: (fault injection, latency spikes) must leave this ``False``.
    supports_batch: bool = False

    def __init__(self, threshold: float, cost_model: CostModel) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.cost_model = cost_model
        self.comparisons_executed = 0
        self.matches_found = 0
        self.total_cost = 0.0
        #: Staged-kernel outcome counts (see :data:`KERNEL_COUNTERS`).
        #: Matchers without a staged kernel leave this empty.
        self.kernel_counts: dict[str, int] = {}
        self._metrics: MetricsRegistry | None = None

    # -- hooks ----------------------------------------------------------
    def _init_derived_state(self) -> None:
        """(Re)build the attributes named in :attr:`_DERIVED_STATE`."""

    def kernel_telemetry(self) -> dict[str, int]:
        """The kernel outcome counters to report for this matcher.

        Wrappers override this to expose the wrapped matcher's counters.
        """
        return self.kernel_counts
    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        raise NotImplementedError

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        raise NotImplementedError

    # -- API ------------------------------------------------------------
    def evaluate(self, profile_x: EntityProfile, profile_y: EntityProfile) -> MatchResult:
        """Classify a pair and account for its virtual cost."""
        similarity = self.similarity(profile_x, profile_y)
        cost = self.cost_model.charge(self.work_units(profile_x, profile_y))
        is_match = similarity >= self.threshold
        self.comparisons_executed += 1
        self.total_cost += cost
        if is_match:
            self.matches_found += 1
        if self._metrics is not None:
            self._metrics.count("matcher.evaluations")
            self._metrics.count("matcher.virtual_cost_s", cost)
            if is_match:
                self._metrics.count("matcher.matches")
        return MatchResult(is_match=is_match, similarity=similarity, cost=cost)

    def estimate_cost(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        """Cost of a comparison without executing it (used by schedulers)."""
        return self.cost_model.charge(self.work_units(profile_x, profile_y))

    # -- batched kernel --------------------------------------------------
    def estimate_cost_batch(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> list[float]:
        """Vectorized :meth:`estimate_cost` (subclasses override the hot path)."""
        return [self.estimate_cost(profile_x, profile_y) for profile_x, profile_y in pairs]

    def evaluate_batch(
        self,
        pairs: Sequence[tuple[EntityProfile, EntityProfile]],
        precomputed: tuple[list[float], list[float]] | None = None,
    ) -> list[MatchResult]:
        """Classify many pairs at once, bit-identical to scalar :meth:`evaluate`.

        Matchers without :attr:`supports_batch` simply loop (preserving any
        side effects such as fault schedules).  Matchers with it route the
        similarity/cost computation through their vectorized
        :meth:`_batch_scores` kernel, while this wrapper keeps the per-pair
        stats and metrics accounting in one place — deliberately updated in
        scalar order, because ``total_cost`` and ``matcher.virtual_cost_s``
        are float accumulations whose order is observable (mean cost feeds
        the adaptive K).

        ``precomputed`` lets a caller supply the ``(similarities, costs)``
        lists for ``pairs`` directly — the hook the worker-pool layer uses
        to shard :meth:`_batch_scores` across processes while *all*
        accounting (stats, metrics, float accumulation order) still happens
        here, on the master, exactly as in-process.  It is ignored for
        matchers without :attr:`supports_batch`, whose scalar loop must run
        locally for its side effects.
        """
        if not self.supports_batch:
            return [self.evaluate(profile_x, profile_y) for profile_x, profile_y in pairs]
        threshold = self.threshold
        metrics = self._metrics
        similarities, costs = (
            precomputed if precomputed is not None else self._batch_scores(pairs)
        )
        if metrics is None:
            # Unbound fast path: C-level construction, then stat folds.
            # ``sum(costs, start)`` adds left-to-right from the previous
            # total — the identical float operation sequence as the scalar
            # per-pair ``self.total_cost += cost``, so accumulations stay
            # bit-identical; the integer folds are exact regardless.
            flags = [similarity >= threshold for similarity in similarities]
            results = list(map(MatchResult._make, zip(flags, similarities, costs)))
            self.comparisons_executed += len(results)
            self.total_cost = sum(costs, self.total_cost)
            self.matches_found += sum(flags)
            return results
        results = []
        append = results.append
        comparisons = self.comparisons_executed
        total_cost = self.total_cost
        matches = self.matches_found
        for similarity, cost in zip(similarities, costs):
            is_match = similarity >= threshold
            comparisons += 1
            total_cost += cost
            if is_match:
                matches += 1
            # Per-pair counting (not one bulk add): the virtual-cost counter
            # is a float accumulation whose order is observable.
            metrics.count("matcher.evaluations")
            metrics.count("matcher.virtual_cost_s", cost)
            if is_match:
                metrics.count("matcher.matches")
            append(MatchResult(is_match, similarity, cost))
        self.comparisons_executed = comparisons
        self.total_cost = total_cost
        self.matches_found = matches
        return results

    def _batch_scores(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> tuple[list[float], list[float]]:
        """Parallel ``(similarities, costs)`` lists for a batch of pairs;
        subclasses with :attr:`supports_batch` override this with a
        vectorized kernel."""
        similarities = []
        costs = []
        for profile_x, profile_y in pairs:
            similarities.append(self.similarity(profile_x, profile_y))
            costs.append(self.cost_model.charge(self.work_units(profile_x, profile_y)))
        return similarities, costs

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Attach the engine's per-run registry; evaluation counters go there."""
        self._metrics = registry

    def reset_stats(self) -> None:
        self.comparisons_executed = 0
        self.matches_found = 0
        self.total_cost = 0.0
        for key in self.kernel_counts:
            self.kernel_counts[key] = 0

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Deep copy of all matcher state except the metrics binding and
        :attr:`_DERIVED_STATE` caches.

        The generic ``__dict__`` walk also captures subclass state —
        wrapped matchers, fault-schedule RNGs — so a restored matcher
        replays exactly the same evaluation (and fault) sequence.  Derived
        caches are dropped (rebuilt deterministically on demand), which
        keeps checkpoint payloads bounded on long streams; matcher-valued
        attributes are snapshot recursively so nested matchers get the
        same treatment.
        """
        excluded = self._DERIVED_STATE
        state: dict[str, object] = {}
        for key, value in self.__dict__.items():
            if key == "_metrics" or key in excluded:
                continue
            if isinstance(value, Matcher):
                state[key] = _NestedMatcherState(type(value), value.snapshot_state())
            else:
                state[key] = copy.deepcopy(value)
        return state

    def restore_state(self, state: dict[str, object]) -> None:
        """Rewind to a snapshot, keeping the current metrics binding."""
        metrics = self._metrics
        for key, value in state.items():
            if isinstance(value, _NestedMatcherState):
                current = self.__dict__.get(key)
                if type(current) is value.matcher_cls:
                    current.restore_state(value.state)
                else:
                    rebuilt = value.matcher_cls.__new__(value.matcher_cls)
                    rebuilt._metrics = None
                    rebuilt.restore_state(value.state)
                    self.__dict__[key] = rebuilt
            else:
                self.__dict__[key] = copy.deepcopy(value)
        self._metrics = metrics
        self._init_derived_state()

    @property
    def mean_cost(self) -> float:
        """Average virtual cost per executed comparison (0 before first call)."""
        if self.comparisons_executed == 0:
            return 0.0
        return self.total_cost / self.comparisons_executed


class JaccardMatcher(Matcher):
    """The paper's cheap configuration: Jaccard similarity over token sets.

    Default virtual costs make one JS comparison ~50 µs — fast enough that
    the matcher is rarely the bottleneck, so the adaptive ``K`` stays large.
    """

    name = "JS"
    supports_batch = True

    def __init__(
        self,
        threshold: float = 0.5,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(threshold, cost_model or CostModel(base=2e-5, per_unit=1e-6))

    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return jaccard(profile_x.tokens(), profile_y.tokens())

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return len(profile_x.tokens()) + len(profile_y.tokens())

    def estimate_cost_batch(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> list[float]:
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        # Identical arithmetic to charge(work_units(x, y)) per pair.
        return [
            base + per_unit * (len(profile_x.tokens()) + len(profile_y.tokens()))
            for profile_x, profile_y in pairs
        ]

    def _batch_scores(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> tuple[list[float], list[float]]:
        token_pairs = [(profile_x.tokens(), profile_y.tokens()) for profile_x, profile_y in pairs]
        similarities = jaccard_batch(token_pairs)
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        costs = [
            base + per_unit * (len(tokens_x) + len(tokens_y))
            for tokens_x, tokens_y in token_pairs
        ]
        return similarities, costs


class EditDistanceMatcher(Matcher):
    """The paper's expensive configuration: normalized edit distance.

    The quadratic character-product work term makes comparisons of long
    profiles drastically more expensive — this is exactly the effect that
    hurts CBS-guided strategies (I-PCS, I-PBS) in the paper, because CBS
    over-prioritizes long non-matching profiles.

    Implementation note: the *virtual* cost always reflects the full
    quadratic DP over the complete texts.  The actual similarity computation
    truncates texts to ``max_text_length`` characters and runs a staged
    kernel ordered by cheapness — bigram-overlap prefilter, length
    prefilter, then the bit-parallel DP (:data:`ED_KERNELS`) only for pairs
    the cheap stages cannot decide — so host wall-clock time stays bounded
    without altering classifications near the threshold.  Texts shorter
    than one bigram bypass the prefilter entirely (their empty bigram set
    carries no signal) and go straight to the — then O(1) — exact DP.
    """

    name = "ED"
    supports_batch = True
    _DERIVED_STATE = ("_text_cache",)

    def __init__(
        self,
        threshold: float = 0.8,
        cost_model: CostModel | None = None,
        max_text_length: int = 160,
        prefilter_floor: float = 0.3,
        kernel: str = "auto",
    ) -> None:
        super().__init__(threshold, cost_model or CostModel(base=1e-4, per_unit=5e-7))
        if max_text_length < 8:
            raise ValueError("max_text_length must be >= 8")
        if kernel not in ED_KERNELS:
            raise ValueError(f"kernel must be one of {ED_KERNELS}, got {kernel!r}")
        self.max_text_length = max_text_length
        self.prefilter_floor = prefilter_floor
        self.kernel = kernel
        self.kernel_counts = dict.fromkeys(KERNEL_COUNTERS, 0)
        self._init_derived_state()

    def _init_derived_state(self) -> None:
        self._text_cache: dict[int, tuple[str, frozenset[str]]] = {}

    def _prepared(self, profile: EntityProfile) -> tuple[str, frozenset[str]]:
        cached = self._text_cache.get(profile.pid)
        if cached is None:
            text = profile.text()[: self.max_text_length]
            bigrams = frozenset(text[i : i + 2] for i in range(len(text) - 1))
            cached = (text, bigrams)
            self._text_cache[profile.pid] = cached
        return cached

    def _classify(
        self,
        text_x: str,
        bigrams_x: frozenset[str],
        text_y: str,
        bigrams_y: frozenset[str],
        overlap: float,
    ) -> float | None:
        """Cheap-stage verdict for one pair; ``None`` when only the DP can
        decide.

        The stages run cheapest-first and are shared verbatim by the scalar
        and batched paths, so both classify (and count) identically:

        1. *short texts* — a text shorter than one bigram yields an empty
           bigram set, which reads as overlap 0.0 and used to reject even
           *identical* texts.  The prefilter has no signal here; run the —
           then O(1) — DP exactly.
        2. *bigram prefilter* — overlap far below any plausible threshold;
           the overlap itself is the (pessimistic) reject similarity.
        3. *length prefilter* — the length difference alone exceeds the
           banded-DP distance bound; emit exactly the float the bounded DP
           would (it returns ``bound + 1`` clamped to ``longest``).
        """
        counts = self.kernel_counts
        if not bigrams_x or not bigrams_y:
            counts["short_texts"] += 1
            return normalized_edit_similarity(
                text_x, text_y, min_similarity=self.threshold, kernel=self.kernel
            )
        if overlap < self.prefilter_floor:
            counts["prefilter_rejects"] += 1
            return overlap
        length_x = len(text_x)
        length_y = len(text_y)
        longest = length_x if length_x >= length_y else length_y
        bound = int((1.0 - self.threshold) * longest) + 1
        difference = longest - (length_y if length_x >= length_y else length_x)
        if difference > bound:
            counts["length_cuts"] += 1
            distance = bound + 1 if bound + 1 < longest else longest
            return 1.0 - distance / longest
        return None

    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        text_x, bigrams_x = self._prepared(profile_x)
        text_y, bigrams_y = self._prepared(profile_y)
        verdict = self._classify(
            text_x, bigrams_x, text_y, bigrams_y, _dice(bigrams_x, bigrams_y)
        )
        if verdict is not None:
            return verdict
        self.kernel_counts["dp_calls"] += 1
        return normalized_edit_similarity(
            text_x, text_y, min_similarity=self.threshold, kernel=self.kernel
        )

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return float(profile_x.text_length()) * float(profile_y.text_length())

    def estimate_cost_batch(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> list[float]:
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        return [
            base + per_unit * (float(profile_x.text_length()) * float(profile_y.text_length()))
            for profile_x, profile_y in pairs
        ]

    def _batch_scores(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> tuple[list[float], list[float]]:
        prepared = self._prepared
        texts = [(prepared(profile_x), prepared(profile_y)) for profile_x, profile_y in pairs]
        # Stage 0: one C-speed Dice sweep over all bigram sets.
        overlaps = dice_batch(
            [(bigrams_x, bigrams_y) for (_, bigrams_x), (_, bigrams_y) in texts]
        )
        # Stages 1–3: cheap classifications fill what they can; survivors
        # (``None``) are the pairs only the DP can decide.
        classify = self._classify
        similarities: list[float | None] = [
            classify(text_x, bigrams_x, text_y, bigrams_y, overlap)
            for ((text_x, bigrams_x), (text_y, bigrams_y)), overlap in zip(texts, overlaps)
        ]
        # Stage 4: the expensive DP calls run last, over survivors only —
        # the batch is processed strictly cheapest-work-first.
        threshold = self.threshold
        kernel = self.kernel
        counts = self.kernel_counts
        for index, similarity in enumerate(similarities):
            if similarity is None:
                (text_x, _), (text_y, _) = texts[index]
                counts["dp_calls"] += 1
                similarities[index] = normalized_edit_similarity(
                    text_x, text_y, min_similarity=threshold, kernel=kernel
                )
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        costs = [
            base + per_unit * (float(profile_x.text_length()) * float(profile_y.text_length()))
            for profile_x, profile_y in pairs
        ]
        return similarities, costs


def _dice(bigrams_x: frozenset[str], bigrams_y: frozenset[str]) -> float:
    if not bigrams_x or not bigrams_y:
        return 0.0
    if len(bigrams_x) > len(bigrams_y):
        bigrams_x, bigrams_y = bigrams_y, bigrams_x
    intersection = sum(1 for bigram in bigrams_x if bigram in bigrams_y)
    return 2.0 * intersection / (len(bigrams_x) + len(bigrams_y))
