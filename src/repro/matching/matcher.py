"""Match functions and their virtual-time cost models.

A :class:`Matcher` classifies a pair of profiles as duplicate / non-duplicate
by thresholding a similarity function (Definition: match function ``M`` in
the paper).  Each matcher also carries a :class:`CostModel` that charges
*virtual seconds* per comparison; the streaming engine uses these charges to
reproduce the throughput regimes of the paper (cheap JS → large adaptive
``K``; expensive ED → small ``K`` and back-pressure) deterministically,
independent of the host machine.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from typing import NamedTuple, Sequence

from repro.core.profile import EntityProfile
from repro.matching.similarity import (
    dice_batch,
    jaccard,
    jaccard_batch,
    normalized_edit_similarity,
)
from repro.observability.metrics import MetricsRegistry

__all__ = ["CostModel", "Matcher", "JaccardMatcher", "EditDistanceMatcher", "MatchResult"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Virtual cost of evaluating one comparison.

    ``base`` is charged for every comparison; ``per_unit`` is multiplied by a
    matcher-specific size measure (token count for JS, character-product for
    ED).  All values are in virtual seconds.
    """

    base: float
    per_unit: float

    def charge(self, units: float) -> float:
        return self.base + self.per_unit * units


class MatchResult(NamedTuple):
    """Outcome of evaluating one comparison.

    A ``NamedTuple`` rather than a frozen dataclass: results are constructed
    once per comparison on the hottest path in the codebase, and tuple
    construction avoids the per-field ``object.__setattr__`` cost while
    keeping the record immutable and comparable.
    """

    is_match: bool
    similarity: float
    cost: float


class Matcher:
    """Base class: thresholded similarity classification with cost accounting.

    Subclasses implement :meth:`similarity` and :meth:`work_units`.
    """

    name = "matcher"

    #: Contract for the engines' batched kernel.  ``True`` promises that
    #: :meth:`evaluate` is deterministic, never raises, and costs exactly
    #: :meth:`estimate_cost` — the conditions under which an emission round
    #: can be deadline-planned from estimates and evaluated as one batch,
    #: bit-identical to the scalar path.  Wrappers that perturb evaluation
    #: (fault injection, latency spikes) must leave this ``False``.
    supports_batch: bool = False

    def __init__(self, threshold: float, cost_model: CostModel) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.cost_model = cost_model
        self.comparisons_executed = 0
        self.matches_found = 0
        self.total_cost = 0.0
        self._metrics: MetricsRegistry | None = None

    # -- hooks ----------------------------------------------------------
    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        raise NotImplementedError

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        raise NotImplementedError

    # -- API ------------------------------------------------------------
    def evaluate(self, profile_x: EntityProfile, profile_y: EntityProfile) -> MatchResult:
        """Classify a pair and account for its virtual cost."""
        similarity = self.similarity(profile_x, profile_y)
        cost = self.cost_model.charge(self.work_units(profile_x, profile_y))
        is_match = similarity >= self.threshold
        self.comparisons_executed += 1
        self.total_cost += cost
        if is_match:
            self.matches_found += 1
        if self._metrics is not None:
            self._metrics.count("matcher.evaluations")
            self._metrics.count("matcher.virtual_cost_s", cost)
            if is_match:
                self._metrics.count("matcher.matches")
        return MatchResult(is_match=is_match, similarity=similarity, cost=cost)

    def estimate_cost(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        """Cost of a comparison without executing it (used by schedulers)."""
        return self.cost_model.charge(self.work_units(profile_x, profile_y))

    # -- batched kernel --------------------------------------------------
    def estimate_cost_batch(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> list[float]:
        """Vectorized :meth:`estimate_cost` (subclasses override the hot path)."""
        return [self.estimate_cost(profile_x, profile_y) for profile_x, profile_y in pairs]

    def evaluate_batch(
        self,
        pairs: Sequence[tuple[EntityProfile, EntityProfile]],
        precomputed: tuple[list[float], list[float]] | None = None,
    ) -> list[MatchResult]:
        """Classify many pairs at once, bit-identical to scalar :meth:`evaluate`.

        Matchers without :attr:`supports_batch` simply loop (preserving any
        side effects such as fault schedules).  Matchers with it route the
        similarity/cost computation through their vectorized
        :meth:`_batch_scores` kernel, while this wrapper keeps the per-pair
        stats and metrics accounting in one place — deliberately updated in
        scalar order, because ``total_cost`` and ``matcher.virtual_cost_s``
        are float accumulations whose order is observable (mean cost feeds
        the adaptive K).

        ``precomputed`` lets a caller supply the ``(similarities, costs)``
        lists for ``pairs`` directly — the hook the worker-pool layer uses
        to shard :meth:`_batch_scores` across processes while *all*
        accounting (stats, metrics, float accumulation order) still happens
        here, on the master, exactly as in-process.  It is ignored for
        matchers without :attr:`supports_batch`, whose scalar loop must run
        locally for its side effects.
        """
        if not self.supports_batch:
            return [self.evaluate(profile_x, profile_y) for profile_x, profile_y in pairs]
        threshold = self.threshold
        metrics = self._metrics
        similarities, costs = (
            precomputed if precomputed is not None else self._batch_scores(pairs)
        )
        if metrics is None:
            # Unbound fast path: C-level construction, then stat folds.
            # ``sum(costs, start)`` adds left-to-right from the previous
            # total — the identical float operation sequence as the scalar
            # per-pair ``self.total_cost += cost``, so accumulations stay
            # bit-identical; the integer folds are exact regardless.
            flags = [similarity >= threshold for similarity in similarities]
            results = list(map(MatchResult._make, zip(flags, similarities, costs)))
            self.comparisons_executed += len(results)
            self.total_cost = sum(costs, self.total_cost)
            self.matches_found += sum(flags)
            return results
        results = []
        append = results.append
        comparisons = self.comparisons_executed
        total_cost = self.total_cost
        matches = self.matches_found
        for similarity, cost in zip(similarities, costs):
            is_match = similarity >= threshold
            comparisons += 1
            total_cost += cost
            if is_match:
                matches += 1
            # Per-pair counting (not one bulk add): the virtual-cost counter
            # is a float accumulation whose order is observable.
            metrics.count("matcher.evaluations")
            metrics.count("matcher.virtual_cost_s", cost)
            if is_match:
                metrics.count("matcher.matches")
            append(MatchResult(is_match, similarity, cost))
        self.comparisons_executed = comparisons
        self.total_cost = total_cost
        self.matches_found = matches
        return results

    def _batch_scores(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> tuple[list[float], list[float]]:
        """Parallel ``(similarities, costs)`` lists for a batch of pairs;
        subclasses with :attr:`supports_batch` override this with a
        vectorized kernel."""
        similarities = []
        costs = []
        for profile_x, profile_y in pairs:
            similarities.append(self.similarity(profile_x, profile_y))
            costs.append(self.cost_model.charge(self.work_units(profile_x, profile_y)))
        return similarities, costs

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Attach the engine's per-run registry; evaluation counters go there."""
        self._metrics = registry

    def reset_stats(self) -> None:
        self.comparisons_executed = 0
        self.matches_found = 0
        self.total_cost = 0.0

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Deep copy of all matcher state except the metrics binding.

        The generic ``__dict__`` walk also captures subclass state — text
        caches, wrapped matchers, fault-schedule RNGs — so a restored
        matcher replays exactly the same evaluation (and fault) sequence.
        """
        return {
            key: copy.deepcopy(value)
            for key, value in self.__dict__.items()
            if key != "_metrics"
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Rewind to a snapshot, keeping the current metrics binding."""
        metrics = self._metrics
        self.__dict__.update(copy.deepcopy(state))
        self._metrics = metrics

    @property
    def mean_cost(self) -> float:
        """Average virtual cost per executed comparison (0 before first call)."""
        if self.comparisons_executed == 0:
            return 0.0
        return self.total_cost / self.comparisons_executed


class JaccardMatcher(Matcher):
    """The paper's cheap configuration: Jaccard similarity over token sets.

    Default virtual costs make one JS comparison ~50 µs — fast enough that
    the matcher is rarely the bottleneck, so the adaptive ``K`` stays large.
    """

    name = "JS"
    supports_batch = True

    def __init__(
        self,
        threshold: float = 0.5,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(threshold, cost_model or CostModel(base=2e-5, per_unit=1e-6))

    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return jaccard(profile_x.tokens(), profile_y.tokens())

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return len(profile_x.tokens()) + len(profile_y.tokens())

    def estimate_cost_batch(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> list[float]:
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        # Identical arithmetic to charge(work_units(x, y)) per pair.
        return [
            base + per_unit * (len(profile_x.tokens()) + len(profile_y.tokens()))
            for profile_x, profile_y in pairs
        ]

    def _batch_scores(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> tuple[list[float], list[float]]:
        token_pairs = [(profile_x.tokens(), profile_y.tokens()) for profile_x, profile_y in pairs]
        similarities = jaccard_batch(token_pairs)
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        costs = [
            base + per_unit * (len(tokens_x) + len(tokens_y))
            for tokens_x, tokens_y in token_pairs
        ]
        return similarities, costs


class EditDistanceMatcher(Matcher):
    """The paper's expensive configuration: normalized edit distance.

    The quadratic character-product work term makes comparisons of long
    profiles drastically more expensive — this is exactly the effect that
    hurts CBS-guided strategies (I-PCS, I-PBS) in the paper, because CBS
    over-prioritizes long non-matching profiles.

    Implementation note: the *virtual* cost always reflects the full
    quadratic DP over the complete texts.  The actual similarity computation
    truncates texts to ``max_text_length`` characters and short-circuits
    clearly dissimilar pairs with a cheap character-bigram overlap test, so
    host wall-clock time stays bounded without altering classifications
    near the threshold.
    """

    name = "ED"
    supports_batch = True

    def __init__(
        self,
        threshold: float = 0.8,
        cost_model: CostModel | None = None,
        max_text_length: int = 160,
        prefilter_floor: float = 0.3,
    ) -> None:
        super().__init__(threshold, cost_model or CostModel(base=1e-4, per_unit=5e-7))
        if max_text_length < 8:
            raise ValueError("max_text_length must be >= 8")
        self.max_text_length = max_text_length
        self.prefilter_floor = prefilter_floor
        self._text_cache: dict[int, tuple[str, frozenset[str]]] = {}

    def _prepared(self, profile: EntityProfile) -> tuple[str, frozenset[str]]:
        cached = self._text_cache.get(profile.pid)
        if cached is None:
            text = profile.text()[: self.max_text_length]
            bigrams = frozenset(text[i : i + 2] for i in range(len(text) - 1))
            cached = (text, bigrams)
            self._text_cache[profile.pid] = cached
        return cached

    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        text_x, bigrams_x = self._prepared(profile_x)
        text_y, bigrams_y = self._prepared(profile_y)
        overlap = _dice(bigrams_x, bigrams_y)
        if overlap < self.prefilter_floor:
            # Far below any plausible threshold: the bigram overlap itself is
            # a (pessimistic) similarity proxy for the reject decision.
            return min(overlap, self.prefilter_floor)
        return normalized_edit_similarity(text_x, text_y, min_similarity=self.threshold)

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return float(profile_x.text_length()) * float(profile_y.text_length())

    def estimate_cost_batch(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> list[float]:
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        return [
            base + per_unit * (float(profile_x.text_length()) * float(profile_y.text_length()))
            for profile_x, profile_y in pairs
        ]

    def _batch_scores(
        self, pairs: Sequence[tuple[EntityProfile, EntityProfile]]
    ) -> tuple[list[float], list[float]]:
        prepared = self._prepared
        texts = [(prepared(profile_x), prepared(profile_y)) for profile_x, profile_y in pairs]
        overlaps = dice_batch(
            [(bigrams_x, bigrams_y) for (_, bigrams_x), (_, bigrams_y) in texts]
        )
        floor = self.prefilter_floor
        threshold = self.threshold
        base = self.cost_model.base
        per_unit = self.cost_model.per_unit
        similarities: list[float] = []
        append = similarities.append
        for ((text_x, _), (text_y, _)), overlap in zip(texts, overlaps):
            if overlap < floor:
                append(min(overlap, floor))
            else:
                append(normalized_edit_similarity(text_x, text_y, min_similarity=threshold))
        costs = [
            base + per_unit * (float(profile_x.text_length()) * float(profile_y.text_length()))
            for profile_x, profile_y in pairs
        ]
        return similarities, costs


def _bigram_overlap(text_x: str, text_y: str) -> float:
    """Dice overlap of character bigram sets — a cheap ED lower-bound proxy."""
    if len(text_x) < 2 or len(text_y) < 2:
        return 0.0 if text_x != text_y else 1.0
    bigrams_x = frozenset(text_x[i : i + 2] for i in range(len(text_x) - 1))
    bigrams_y = frozenset(text_y[i : i + 2] for i in range(len(text_y) - 1))
    return _dice(bigrams_x, bigrams_y)


def _dice(bigrams_x: frozenset[str], bigrams_y: frozenset[str]) -> float:
    if not bigrams_x or not bigrams_y:
        return 0.0
    if len(bigrams_x) > len(bigrams_y):
        bigrams_x, bigrams_y = bigrams_y, bigrams_x
    intersection = sum(1 for bigram in bigrams_x if bigram in bigrams_y)
    return 2.0 * intersection / (len(bigrams_x) + len(bigrams_y))
