"""Match functions and their virtual-time cost models.

A :class:`Matcher` classifies a pair of profiles as duplicate / non-duplicate
by thresholding a similarity function (Definition: match function ``M`` in
the paper).  Each matcher also carries a :class:`CostModel` that charges
*virtual seconds* per comparison; the streaming engine uses these charges to
reproduce the throughput regimes of the paper (cheap JS → large adaptive
``K``; expensive ED → small ``K`` and back-pressure) deterministically,
independent of the host machine.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.core.profile import EntityProfile
from repro.matching.similarity import jaccard, normalized_edit_similarity
from repro.observability.metrics import MetricsRegistry

__all__ = ["CostModel", "Matcher", "JaccardMatcher", "EditDistanceMatcher", "MatchResult"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Virtual cost of evaluating one comparison.

    ``base`` is charged for every comparison; ``per_unit`` is multiplied by a
    matcher-specific size measure (token count for JS, character-product for
    ED).  All values are in virtual seconds.
    """

    base: float
    per_unit: float

    def charge(self, units: float) -> float:
        return self.base + self.per_unit * units


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of evaluating one comparison."""

    is_match: bool
    similarity: float
    cost: float


class Matcher:
    """Base class: thresholded similarity classification with cost accounting.

    Subclasses implement :meth:`similarity` and :meth:`work_units`.
    """

    name = "matcher"

    def __init__(self, threshold: float, cost_model: CostModel) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.cost_model = cost_model
        self.comparisons_executed = 0
        self.matches_found = 0
        self.total_cost = 0.0
        self._metrics: MetricsRegistry | None = None

    # -- hooks ----------------------------------------------------------
    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        raise NotImplementedError

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        raise NotImplementedError

    # -- API ------------------------------------------------------------
    def evaluate(self, profile_x: EntityProfile, profile_y: EntityProfile) -> MatchResult:
        """Classify a pair and account for its virtual cost."""
        similarity = self.similarity(profile_x, profile_y)
        cost = self.cost_model.charge(self.work_units(profile_x, profile_y))
        is_match = similarity >= self.threshold
        self.comparisons_executed += 1
        self.total_cost += cost
        if is_match:
            self.matches_found += 1
        if self._metrics is not None:
            self._metrics.count("matcher.evaluations")
            self._metrics.count("matcher.virtual_cost_s", cost)
            if is_match:
                self._metrics.count("matcher.matches")
        return MatchResult(is_match=is_match, similarity=similarity, cost=cost)

    def estimate_cost(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        """Cost of a comparison without executing it (used by schedulers)."""
        return self.cost_model.charge(self.work_units(profile_x, profile_y))

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Attach the engine's per-run registry; evaluation counters go there."""
        self._metrics = registry

    def reset_stats(self) -> None:
        self.comparisons_executed = 0
        self.matches_found = 0
        self.total_cost = 0.0

    # -- checkpoint support ---------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Deep copy of all matcher state except the metrics binding.

        The generic ``__dict__`` walk also captures subclass state — text
        caches, wrapped matchers, fault-schedule RNGs — so a restored
        matcher replays exactly the same evaluation (and fault) sequence.
        """
        return {
            key: copy.deepcopy(value)
            for key, value in self.__dict__.items()
            if key != "_metrics"
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Rewind to a snapshot, keeping the current metrics binding."""
        metrics = self._metrics
        self.__dict__.update(copy.deepcopy(state))
        self._metrics = metrics

    @property
    def mean_cost(self) -> float:
        """Average virtual cost per executed comparison (0 before first call)."""
        if self.comparisons_executed == 0:
            return 0.0
        return self.total_cost / self.comparisons_executed


class JaccardMatcher(Matcher):
    """The paper's cheap configuration: Jaccard similarity over token sets.

    Default virtual costs make one JS comparison ~50 µs — fast enough that
    the matcher is rarely the bottleneck, so the adaptive ``K`` stays large.
    """

    name = "JS"

    def __init__(
        self,
        threshold: float = 0.5,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(threshold, cost_model or CostModel(base=2e-5, per_unit=1e-6))

    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return jaccard(profile_x.tokens(), profile_y.tokens())

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return len(profile_x.tokens()) + len(profile_y.tokens())


class EditDistanceMatcher(Matcher):
    """The paper's expensive configuration: normalized edit distance.

    The quadratic character-product work term makes comparisons of long
    profiles drastically more expensive — this is exactly the effect that
    hurts CBS-guided strategies (I-PCS, I-PBS) in the paper, because CBS
    over-prioritizes long non-matching profiles.

    Implementation note: the *virtual* cost always reflects the full
    quadratic DP over the complete texts.  The actual similarity computation
    truncates texts to ``max_text_length`` characters and short-circuits
    clearly dissimilar pairs with a cheap character-bigram overlap test, so
    host wall-clock time stays bounded without altering classifications
    near the threshold.
    """

    name = "ED"

    def __init__(
        self,
        threshold: float = 0.8,
        cost_model: CostModel | None = None,
        max_text_length: int = 160,
        prefilter_floor: float = 0.3,
    ) -> None:
        super().__init__(threshold, cost_model or CostModel(base=1e-4, per_unit=5e-7))
        if max_text_length < 8:
            raise ValueError("max_text_length must be >= 8")
        self.max_text_length = max_text_length
        self.prefilter_floor = prefilter_floor
        self._text_cache: dict[int, tuple[str, frozenset[str]]] = {}

    def _prepared(self, profile: EntityProfile) -> tuple[str, frozenset[str]]:
        cached = self._text_cache.get(profile.pid)
        if cached is None:
            text = profile.text()[: self.max_text_length]
            bigrams = frozenset(text[i : i + 2] for i in range(len(text) - 1))
            cached = (text, bigrams)
            self._text_cache[profile.pid] = cached
        return cached

    def similarity(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        text_x, bigrams_x = self._prepared(profile_x)
        text_y, bigrams_y = self._prepared(profile_y)
        overlap = _dice(bigrams_x, bigrams_y)
        if overlap < self.prefilter_floor:
            # Far below any plausible threshold: the bigram overlap itself is
            # a (pessimistic) similarity proxy for the reject decision.
            return min(overlap, self.prefilter_floor)
        return normalized_edit_similarity(text_x, text_y, min_similarity=self.threshold)

    def work_units(self, profile_x: EntityProfile, profile_y: EntityProfile) -> float:
        return float(profile_x.text_length()) * float(profile_y.text_length())


def _bigram_overlap(text_x: str, text_y: str) -> float:
    """Dice overlap of character bigram sets — a cheap ED lower-bound proxy."""
    if len(text_x) < 2 or len(text_y) < 2:
        return 0.0 if text_x != text_y else 1.0
    bigrams_x = frozenset(text_x[i : i + 2] for i in range(len(text_x) - 1))
    bigrams_y = frozenset(text_y[i : i + 2] for i in range(len(text_y) - 1))
    return _dice(bigrams_x, bigrams_y)


def _dice(bigrams_x: frozenset[str], bigrams_y: frozenset[str]) -> float:
    if not bigrams_x or not bigrams_y:
        return 0.0
    if len(bigrams_x) > len(bigrams_y):
        bigrams_x, bigrams_y = bigrams_y, bigrams_x
    intersection = sum(1 for bigram in bigrams_x if bigram in bigrams_y)
    return 2.0 * intersection / (len(bigrams_x) + len(bigrams_y))
