"""Additional similarity functions common in record linkage.

The paper's experiments use JS and ED; these extras make the matching
substrate complete for downstream users (Jaro-Winkler is the de-facto
standard for person-name data such as the census analogue; cosine over
token counts suits longer texts).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

__all__ = ["jaro", "jaro_winkler", "cosine_tokens"]


def jaro(text_x: str, text_y: str) -> float:
    """Jaro similarity in [0, 1].

    Counts characters matching within ``max(len)/2 - 1`` positions and
    transpositions among them, per the classic definition.
    """
    if text_x == text_y:
        return 1.0 if text_x else 0.0
    length_x, length_y = len(text_x), len(text_y)
    if length_x == 0 or length_y == 0:
        return 0.0
    window = max(length_x, length_y) // 2 - 1
    window = max(window, 0)

    matched_x = [False] * length_x
    matched_y = [False] * length_y
    matches = 0
    for i, char_x in enumerate(text_x):
        low = max(0, i - window)
        high = min(length_y, i + window + 1)
        for j in range(low, high):
            if matched_y[j] or text_y[j] != char_x:
                continue
            matched_x[i] = True
            matched_y[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    # transpositions: matched characters out of relative order
    transpositions = 0
    j = 0
    for i in range(length_x):
        if not matched_x[i]:
            continue
        while not matched_y[j]:
            j += 1
        if text_x[i] != text_y[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / length_x + matches / length_y + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(text_x: str, text_y: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by the common prefix (≤ 4).

    ``prefix_scale`` must lie in [0, 0.25] so the result stays in [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    base = jaro(text_x, text_y)
    prefix = 0
    for char_x, char_y in zip(text_x[:4], text_y[:4]):
        if char_x != char_y:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def cosine_tokens(tokens_x: Iterable[str], tokens_y: Iterable[str]) -> float:
    """Cosine similarity of token count vectors, in [0, 1]."""
    counts_x = Counter(tokens_x)
    counts_y = Counter(tokens_y)
    if not counts_x or not counts_y:
        return 0.0
    if len(counts_x) > len(counts_y):
        counts_x, counts_y = counts_y, counts_x
    dot = sum(count * counts_y.get(token, 0) for token, count in counts_x.items())
    if dot == 0:
        return 0.0
    norm_x = math.sqrt(sum(count * count for count in counts_x.values()))
    norm_y = math.sqrt(sum(count * count for count in counts_y.values()))
    return dot / (norm_x * norm_y)
