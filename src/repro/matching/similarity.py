"""Similarity functions used by the matching step.

The paper evaluates two pipeline configurations: a *cheap* matcher based on
Jaccard similarity (JS) over token sets and an *expensive* matcher based on
edit distance (ED) over the concatenated profile text.  Both are implemented
here from scratch.  The edit distance offers three interchangeable kernels —
a full dynamic-programming table, a banded DP with early exit, and the Myers
bit-parallel algorithm (one arbitrary-precision bit-vector, so patterns of
any length ride CPython's big-int limb arithmetic) — all returning identical
distances, so any kernel choice produces bit-identical similarities
downstream.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "jaccard",
    "jaccard_batch",
    "dice",
    "dice_batch",
    "overlap_coefficient",
    "levenshtein",
    "normalized_edit_similarity",
    "ED_KERNELS",
]

#: Valid ``kernel`` arguments for :func:`levenshtein` /
#: :func:`normalized_edit_similarity`.  ``auto`` is the Myers bit-parallel
#: fast path; ``banded`` is the pre-Myers scalar dispatch (full table when
#: unbounded, banded DP when bounded) kept as the cross-validation reference
#: and escape hatch; ``myers`` / ``full`` force one algorithm outright.
ED_KERNELS = ("auto", "myers", "banded", "full")


def jaccard(tokens_x: frozenset[str] | set[str], tokens_y: frozenset[str] | set[str]) -> float:
    """Jaccard similarity of two token sets, in [0, 1].

    Two empty sets are defined to have similarity 0 (no evidence of a
    match), which avoids classifying empty profiles as duplicates.
    """
    if not tokens_x or not tokens_y:
        return 0.0
    if len(tokens_x) > len(tokens_y):
        tokens_x, tokens_y = tokens_y, tokens_x
    intersection = sum(1 for token in tokens_x if token in tokens_y)
    union = len(tokens_x) + len(tokens_y) - intersection
    return intersection / union


def jaccard_batch(
    token_pairs: Iterable[tuple[frozenset[str] | set[str], frozenset[str] | set[str]]],
) -> list[float]:
    """Jaccard similarity for a whole batch of token-set pairs.

    Bit-identical to mapping :func:`jaccard` over the pairs: the C-level
    set intersection produces the same integer count as the scalar
    generator sum, and the final division uses identical operands — only
    the per-pair Python interpretation overhead is amortized, which is
    what makes batched emission rounds fast.
    """
    return [
        (intersection := len(tokens_x & tokens_y))
        / (len(tokens_x) + len(tokens_y) - intersection)
        if tokens_x and tokens_y
        else 0.0
        for tokens_x, tokens_y in token_pairs
    ]


def dice(tokens_x: frozenset[str] | set[str], tokens_y: frozenset[str] | set[str]) -> float:
    """Sørensen-Dice coefficient of two token sets, in [0, 1]."""
    if not tokens_x or not tokens_y:
        return 0.0
    if len(tokens_x) > len(tokens_y):
        tokens_x, tokens_y = tokens_y, tokens_x
    intersection = sum(1 for token in tokens_x if token in tokens_y)
    return 2.0 * intersection / (len(tokens_x) + len(tokens_y))


def dice_batch(
    set_pairs: Iterable[tuple[frozenset[str] | set[str], frozenset[str] | set[str]]],
) -> list[float]:
    """Sørensen-Dice coefficient for a batch of set pairs.

    Bit-identical to mapping :func:`dice` (same integer intersection count,
    same ``2.0 * i / (|x| + |y|)`` float operations); used by the batched
    edit-distance prefilter over character-bigram sets.
    """
    coefficients: list[float] = []
    append = coefficients.append
    for set_x, set_y in set_pairs:
        if not set_x or not set_y:
            append(0.0)
            continue
        append(2.0 * len(set_x & set_y) / (len(set_x) + len(set_y)))
    return coefficients


def overlap_coefficient(
    tokens_x: frozenset[str] | set[str], tokens_y: frozenset[str] | set[str]
) -> float:
    """Overlap coefficient: |X ∩ Y| / min(|X|, |Y|)."""
    if not tokens_x or not tokens_y:
        return 0.0
    if len(tokens_x) > len(tokens_y):
        tokens_x, tokens_y = tokens_y, tokens_x
    intersection = sum(1 for token in tokens_x if token in tokens_y)
    return intersection / len(tokens_x)


def levenshtein(
    text_x: str, text_y: str, max_distance: int | None = None, kernel: str = "auto"
) -> int:
    """Levenshtein edit distance between two strings.

    Parameters
    ----------
    max_distance:
        Optional bound ``k``.  If the true distance exceeds ``k`` the
        function returns ``k + 1``; with a bound every kernel early-exits
        once the distance provably exceeds ``k``, which keeps the expensive
        matcher affordable for clearly different strings.
    kernel:
        Algorithm selection (see :data:`ED_KERNELS`).  All kernels return
        identical integers for every input — exact distances up to the
        bound, ``k + 1`` beyond it — so the choice is wall-clock only.
    """
    if text_x == text_y:
        return 0
    cap = None if max_distance is None else max_distance + 1
    if not text_x:
        return len(text_y) if cap is None else min(len(text_y), cap)
    if not text_y:
        return len(text_x) if cap is None else min(len(text_x), cap)
    # Ensure text_x is the shorter string: it is the DP row of the banded
    # kernel and the bit-vector pattern of the Myers kernel.
    if len(text_x) > len(text_y):
        text_x, text_y = text_y, text_x
    if max_distance is not None and len(text_y) - len(text_x) > max_distance:
        return max_distance + 1
    if kernel == "auto" or kernel == "myers":
        return _levenshtein_myers(text_x, text_y, max_distance)
    if kernel == "banded":
        if max_distance is None:
            return _levenshtein_full(text_x, text_y)
        return _levenshtein_banded(text_x, text_y, max_distance)
    if kernel == "full":
        distance = _levenshtein_full(text_x, text_y)
        return distance if cap is None else min(distance, cap)
    raise ValueError(f"unknown edit-distance kernel {kernel!r}; use one of {ED_KERNELS}")


def _levenshtein_full(text_x: str, text_y: str) -> int:
    previous_row = list(range(len(text_x) + 1))
    for row_index, char_y in enumerate(text_y, start=1):
        current_row = [row_index]
        for col_index, char_x in enumerate(text_x, start=1):
            substitution = previous_row[col_index - 1] + (char_x != char_y)
            insertion = current_row[col_index - 1] + 1
            deletion = previous_row[col_index] + 1
            current_row.append(min(substitution, insertion, deletion))
        previous_row = current_row
    return previous_row[-1]


def _levenshtein_banded(text_x: str, text_y: str, bound: int) -> int:
    """Banded DP: only cells with ``|i - j| <= bound`` can hold values
    ``<= bound``, so the rest of each row is never materialized."""
    width = len(text_x)
    infinity = bound + 1
    previous_row = [j if j <= bound else infinity for j in range(width + 1)]
    for i, char_y in enumerate(text_y, start=1):
        low = max(1, i - bound)
        high = min(width, i + bound)
        current_row = [infinity] * (width + 1)
        if i <= bound:
            current_row[0] = i
        best = infinity
        for j in range(low, high + 1):
            char_x = text_x[j - 1]
            substitution = previous_row[j - 1] + (char_x != char_y)
            insertion = current_row[j - 1] + 1
            deletion = previous_row[j] + 1
            cell = substitution
            if insertion < cell:
                cell = insertion
            if deletion < cell:
                cell = deletion
            if cell > infinity:
                cell = infinity
            current_row[j] = cell
            if cell < best:
                best = cell
        if i <= bound and current_row[0] < best:
            best = current_row[0]
        if best > bound:
            return infinity
        previous_row = current_row
    distance = previous_row[width]
    return distance if distance <= bound else infinity


def _levenshtein_myers(text_x: str, text_y: str, bound: int | None) -> int:
    """Myers (1999) bit-parallel edit distance; ``text_x`` is the pattern.

    Encodes one DP column's vertical deltas in two bitmasks (``vp``/``vn``)
    and advances a whole column per text character in O(1) word operations.
    Patterns up to 64 characters run entirely in single machine words;
    longer patterns transparently widen to multi-word bitvectors — Python
    integers are arbitrary-precision, so CPython's C-level limb arithmetic
    *is* the blocked variant, carries included (measured ~2× faster than
    an explicit Python-level block loop at 160 chars).

    With a ``bound`` the scan early-exits as soon as the running score can
    no longer get back under the bound (the score drops by at most one per
    remaining character), returning ``bound + 1`` exactly like the banded
    kernel.
    """
    pattern, text = text_x, text_y
    length = len(pattern)
    peq: dict[str, int] = {}
    bit = 1
    for char in pattern:
        peq[char] = peq.get(char, 0) | bit
        bit <<= 1
    mask = (1 << length) - 1
    last = 1 << (length - 1)
    vp = mask
    vn = 0
    score = length
    peq_get = peq.get
    remaining = len(text)
    for char in text:
        remaining -= 1
        eq = peq_get(char, 0)
        xv = eq | vn
        xh = ((((eq & vp) + vp) & mask) ^ vp) | eq
        ph = vn | ~(xh | vp)
        mh = vp & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        vp = (mh | ~(xv | ph)) & mask
        vn = ph & xv
        if bound is not None and score - remaining > bound:
            return bound + 1
    if bound is not None and score > bound:
        return bound + 1
    return score


def normalized_edit_similarity(
    text_x: str,
    text_y: str,
    min_similarity: float | None = None,
    kernel: str = "auto",
) -> float:
    """Edit-distance similarity ``1 - dist / max_len`` in [0, 1].

    Two empty strings are defined to have similarity 0, consistent with
    :func:`jaccard` on empty token sets.

    Parameters
    ----------
    min_similarity:
        When the caller only needs exact values at or above some threshold
        (e.g. a matcher deciding ``sim >= t``), passing ``t`` narrows the DP
        band accordingly; values below the threshold are then clamped
        pessimistically (still in [0, 1], still below ``t``).
    kernel:
        Edit-distance kernel selection, forwarded to :func:`levenshtein`.
        Every kernel yields the same integer distance, hence bit-identical
        floats out of this function.
    """
    longest = max(len(text_x), len(text_y))
    if longest == 0:
        return 0.0
    if min_similarity is None:
        # Keep exact values for similarities >= 0.5 — ample for thresholding.
        bound = longest // 2 + 1
    else:
        if not 0.0 <= min_similarity <= 1.0:
            raise ValueError("min_similarity must be in [0, 1]")
        bound = int((1.0 - min_similarity) * longest) + 1
    distance = levenshtein(text_x, text_y, max_distance=bound, kernel=kernel)
    distance = min(distance, longest)
    return 1.0 - distance / longest


def token_iterable_to_set(tokens: Iterable[str]) -> frozenset[str]:
    """Small helper for callers holding token iterables."""
    return tokens if isinstance(tokens, frozenset) else frozenset(tokens)
