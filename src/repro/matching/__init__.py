"""Match functions (JS / ED) with virtual-time cost accounting."""

from repro.matching.extra_similarity import cosine_tokens, jaro, jaro_winkler
from repro.matching.matcher import (
    CostModel,
    EditDistanceMatcher,
    JaccardMatcher,
    MatchResult,
    Matcher,
)
from repro.matching.similarity import (
    dice,
    jaccard,
    levenshtein,
    normalized_edit_similarity,
    overlap_coefficient,
)

__all__ = [
    "CostModel",
    "EditDistanceMatcher",
    "JaccardMatcher",
    "MatchResult",
    "Matcher",
    "cosine_tokens",
    "dice",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "normalized_edit_similarity",
    "overlap_coefficient",
]
