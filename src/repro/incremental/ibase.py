"""I-BASE: the incremental (non-progressive) baseline (Gazzarri & Herschel,
ICDE 2021).

For every increment, I-BASE performs incremental token blocking, applies
block ghosting and I-WNP per new profile, and hands *all* surviving
comparisons to the matcher in generation (FIFO) order.  Two properties
distinguish it from the PIER algorithms and drive the paper's findings:

* **No adaptivity** — the number of comparisons generated per increment is
  fixed by the data, independent of the input rate or matcher speed.  With
  an expensive matcher the backlog grows; the bounded internal queue then
  exerts back-pressure on ingestion (``ready_for_ingest``), delaying stream
  consumption (the missing × markers in Figure 7).
* **No globality** — the system goes idle between increments once the
  backlog drains (the staircase PC curves on slow streams in Figure 2);
  older promising comparisons are never revisited.
"""

from __future__ import annotations

import copy
from collections import deque

from repro.blocking.substrate import BlockingConfig
from repro.blocking.token_blocking import BlockingCosts, IncrementalTokenBlocking
from repro.core.increments import Increment
from repro.core.profile import EntityProfile
from repro.execution.store import ComparisonStore
from repro.metablocking.weights import WeightingScheme
from repro.pier.base import ComparisonGenerator, _always_valid
from repro.streaming.system import EmitResult, ERSystem, PipelineCosts, PipelineStats

__all__ = ["IBaseSystem"]


class IBaseSystem(ERSystem):
    """The incremental ER baseline pipeline.

    Parameters
    ----------
    beta:
        Block-ghosting parameter β (shared with the PIER algorithms so that
        comparisons are selected identically — only scheduling differs).
    chunk_size:
        Comparisons handed to the matcher per round (fixed, not adaptive).
    high_watermark:
        Back-pressure bound on the comparison backlog: ingestion of further
        increments stalls while the backlog is above this value.
    per_pair_weighting:
        Use the legacy one-``weight()``-call-per-candidate path instead of
        the single-sweep kernel (bit-identical; for bisection).
    blocking:
        Blocking-substrate choice (token / lsh / lsh-prefilter); ``None``
        keeps the paper's token blocking.
    """

    name = "I-BASE"

    def __init__(
        self,
        clean_clean: bool = False,
        max_block_size: int | None = 200,
        beta: float = 0.2,
        scheme: WeightingScheme | None = None,
        costs: PipelineCosts | None = None,
        chunk_size: int = 64,
        high_watermark: int = 2000,
        per_pair_weighting: bool = False,
        blocking: BlockingConfig | None = None,
    ) -> None:
        self.costs = costs or PipelineCosts()
        self.blocker = IncrementalTokenBlocking(
            clean_clean=clean_clean,
            max_block_size=max_block_size,
            costs=BlockingCosts(
                per_profile=self.costs.per_profile, per_token=self.costs.per_token
            ),
            blocking=blocking,
        )
        self.generator = ComparisonGenerator(beta=beta, scheme=scheme, per_pair=per_pair_weighting)
        self.chunk_size = chunk_size
        self.high_watermark = high_watermark
        self._fifo: deque[tuple[int, int]] = deque()
        self.store = ComparisonStore()

    # ------------------------------------------------------------------
    def ingest(self, increment: Increment) -> float:
        cost = self.blocker.process_increment(increment)
        for profile in increment:
            kept, operations = self.generator.generate(
                self.blocker.collection, profile, self._valid_partner(profile)
            )
            cost += operations * self.costs.per_weight
            self.metrics.count("strategy.weighting_ops", operations)
            # Within a profile, higher-weighted comparisons go first (the
            # order I-WNP produced); across profiles/increments it is FIFO.
            # I-BASE commits comparisons at *enqueue* time: the executed-set
            # claim happens here, so later re-generations of the same pair
            # are dropped before they ever reach the FIFO.
            for weighted in sorted(kept, key=lambda c: -c.weight):
                pair = weighted.pair
                if not self.store.mark_executed(pair):
                    self.metrics.count("strategy.skipped_already_executed")
                    continue
                self._fifo.append(pair)
                self.metrics.count("strategy.comparisons_enqueued")
                cost += self.costs.per_enqueue
        self._flush_blocking_metrics(self.blocker.collection)
        return cost

    def emit(self, stats: PipelineStats) -> EmitResult:
        batch = []
        while self._fifo and len(batch) < self.chunk_size:
            batch.append(self._fifo.popleft())
        self.store.record_emission(len(batch))
        return EmitResult(batch=tuple(batch), cost=self.costs.per_round)

    def ready_for_ingest(self) -> bool:
        return len(self._fifo) < self.high_watermark

    def has_pending_comparisons(self) -> bool:
        return bool(self._fifo)

    def gauges(self) -> dict[str, float]:
        return {"queue_depth": len(self._fifo)}

    def profile(self, pid: int) -> EntityProfile:
        return self.blocker.profile(pid)

    # ------------------------------------------------------------------
    def _valid_partner(self, profile: EntityProfile):
        collection = self.blocker.collection
        if collection.prunes_candidates:
            # LSH prefilter: compose the co-bucket test into the predicate
            # (no markers — the sweep must apply it per candidate).
            pid_x = profile.pid
            allows = collection.allows_pair
            if not collection.clean_clean:
                return lambda pid: allows(pid_x, pid)
            source = profile.source
            blocker = self.blocker
            return lambda pid: (
                allows(pid_x, pid) and blocker.profile(pid).source != source
            )
        if not collection.clean_clean:
            return _always_valid
        source = profile.source
        blocker = self.blocker
        predicate = lambda pid: blocker.profile(pid).source != source
        predicate.cross_source_only = True  # type: ignore[attr-defined]
        return predicate

    @property
    def backlog(self) -> int:
        return len(self._fifo)

    # -- checkpoint support ---------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Blocking state, the FIFO backlog and the comparison store — the
        generator and cost tables are pure configuration."""
        return {
            "blocker": copy.deepcopy(self.blocker),
            "fifo": list(self._fifo),
            "store": self.store.snapshot_state(),
        }

    def restore(self, state: dict[str, object]) -> None:
        self.blocker = copy.deepcopy(state["blocker"])
        self._fifo = deque(state["fifo"])
        self.store.restore_state(state["store"])

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "backlog": len(self._fifo),
            "profiles": self.blocker.known_profiles(),
        }
