"""Incremental (non-progressive) ER baseline."""

from repro.incremental.ibase import IBaseSystem

__all__ = ["IBaseSystem"]
