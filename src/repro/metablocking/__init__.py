"""Meta-blocking: weighting schemes, (I-)WNP comparison cleaning, block graph."""

from repro.metablocking.block_graph import BlockGraph
from repro.metablocking.pruning import (
    cardinality_edge_pruning,
    cardinality_node_pruning,
    enumerate_weighted_comparisons,
    weighted_edge_pruning,
)
from repro.metablocking.sweep import (
    partner_weights,
    sweep_candidate_weights,
    sweep_weights,
)
from repro.metablocking.weights import (
    ARCSScheme,
    CommonBlocksScheme,
    EnhancedCommonBlocksScheme,
    JaccardScheme,
    WeightingScheme,
    make_scheme,
)
from repro.metablocking.wnp import (
    WNPResult,
    batch_wnp_for_profile,
    incremental_wnp,
    sweep_wnp,
)

__all__ = [
    "ARCSScheme",
    "BlockGraph",
    "CommonBlocksScheme",
    "EnhancedCommonBlocksScheme",
    "JaccardScheme",
    "WNPResult",
    "WeightingScheme",
    "batch_wnp_for_profile",
    "cardinality_edge_pruning",
    "cardinality_node_pruning",
    "enumerate_weighted_comparisons",
    "incremental_wnp",
    "make_scheme",
    "partner_weights",
    "sweep_candidate_weights",
    "sweep_weights",
    "sweep_wnp",
    "weighted_edge_pruning",
]
