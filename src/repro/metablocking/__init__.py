"""Meta-blocking: weighting schemes, (I-)WNP comparison cleaning, block graph."""

from repro.metablocking.block_graph import BlockGraph
from repro.metablocking.pruning import (
    cardinality_edge_pruning,
    cardinality_node_pruning,
    enumerate_weighted_comparisons,
    weighted_edge_pruning,
)
from repro.metablocking.weights import (
    ARCSScheme,
    CommonBlocksScheme,
    EnhancedCommonBlocksScheme,
    JaccardScheme,
    WeightingScheme,
    make_scheme,
)
from repro.metablocking.wnp import WNPResult, batch_wnp_for_profile, incremental_wnp

__all__ = [
    "ARCSScheme",
    "BlockGraph",
    "CommonBlocksScheme",
    "EnhancedCommonBlocksScheme",
    "JaccardScheme",
    "WNPResult",
    "WeightingScheme",
    "batch_wnp_for_profile",
    "cardinality_edge_pruning",
    "cardinality_node_pruning",
    "enumerate_weighted_comparisons",
    "incremental_wnp",
    "make_scheme",
    "weighted_edge_pruning",
]
