"""The meta-blocking block graph (batch substrate for PPS).

The batch Progressive Profile Scheduling baseline builds a *block graph*:
nodes are profiles, and an edge connects two profiles iff they share at
least one block (and form a valid comparison).  Edges carry weights from a
weighting scheme; a profile's *duplication likelihood* aggregates its
incident edge weights.

Building this graph is the expensive initialization step that makes batch
PPS unsuitable for streams (the effect Figures 2, 4 and 7 of the paper
show); its cost here is proportional to the number of edges enumerated and
is charged in virtual time by the callers.
"""

from __future__ import annotations

from typing import Callable

from repro.blocking.substrate import BlockingSubstrate
from repro.core.comparison import canonical_pair
from repro.metablocking.sweep import partner_weights
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme

__all__ = ["BlockGraph"]


class BlockGraph:
    """Weighted comparison graph over a (static) block collection.

    Edge weights come from the single-sweep kernel — pairs are enumerated
    and de-duplicated first, then weighted with one aggregate sweep per
    distinct left profile (``per_pair=True`` restores the legacy
    one-``weight()``-call-per-edge build; results are bit-identical).
    """

    def __init__(
        self,
        collection: BlockingSubstrate,
        valid_pair: Callable[[int, int], bool],
        scheme: WeightingScheme | None = None,
        per_pair: bool = False,
    ) -> None:
        self._collection = collection
        self._valid_pair = valid_pair
        self._scheme = scheme or CommonBlocksScheme()
        self._per_pair = per_pair
        self.edges: dict[tuple[int, int], float] = {}
        self.adjacency: dict[int, list[tuple[int, float]]] = {}
        self.edge_enumerations = 0  # work units: block-pair enumerations
        self._build()

    def _build(self) -> None:
        seen: set[tuple[int, int]] = set()
        ordered: list[tuple[int, int]] = []
        for block in self._collection:
            for pid_x, pid_y in block.pairs(self._collection.clean_clean):
                self.edge_enumerations += 1
                pair = canonical_pair(pid_x, pid_y)
                if pair in seen:
                    continue
                seen.add(pair)
                if not self._valid_pair(*pair):
                    continue
                ordered.append(pair)
        if self._per_pair:
            weighted = (
                (pair, self._scheme.weight(self._collection, *pair)) for pair in ordered
            )
        else:
            by_left: dict[int, list[int]] = {}
            for left, right in ordered:
                by_left.setdefault(left, []).append(right)
            weights = {
                left: partner_weights(self._collection, left, rights, self._scheme)
                for left, rights in by_left.items()
            }
            weighted = ((pair, weights[pair[0]][pair[1]]) for pair in ordered)
        for pair, weight in weighted:
            if weight <= 0.0:
                continue
            self.edges[pair] = weight
            self.adjacency.setdefault(pair[0], []).append((pair[1], weight))
            self.adjacency.setdefault(pair[1], []).append((pair[0], weight))

    # ------------------------------------------------------------------
    def duplication_likelihood(self, pid: int) -> float:
        """Average incident edge weight (0 for isolated profiles)."""
        incident = self.adjacency.get(pid)
        if not incident:
            return 0.0
        return sum(weight for _, weight in incident) / len(incident)

    def neighbors(self, pid: int) -> list[tuple[int, float]]:
        """Neighbors of a profile with edge weights, heaviest first."""
        incident = self.adjacency.get(pid, [])
        return sorted(incident, key=lambda item: -item[1])

    def profiles(self) -> list[int]:
        return list(self.adjacency.keys())

    def __len__(self) -> int:
        return len(self.edges)
