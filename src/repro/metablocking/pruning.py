"""Batch meta-blocking pruning algorithms: WEP, CEP, CNP.

The paper's pipelines use (I-)WNP; these are the other three classic
pruning schemes of Papadakis et al. (TKDE 2013), provided so the library
covers the full meta-blocking toolbox for batch use:

* **WEP** (Weighted Edge Pruning) — keep every comparison whose weight is
  at least the global average edge weight;
* **CEP** (Cardinality Edge Pruning) — keep the globally top-``k``
  comparisons, ``k`` defaulting to half the aggregate block size (the
  standard budget used in the literature);
* **CNP** (Cardinality Node Pruning) — keep, for each profile, its top-``k``
  comparisons, ``k`` defaulting to the average blocks-per-profile.

All operate on a :class:`~repro.blocking.substrate.BlockingSubstrate` and return canonical weighted
comparisons.  They are batch utilities — the incremental pipelines keep
using I-WNP as in the paper.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.blocking.substrate import BlockingSubstrate
from repro.core.comparison import WeightedComparison, canonical_pair
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme

__all__ = [
    "enumerate_weighted_comparisons",
    "weighted_edge_pruning",
    "cardinality_edge_pruning",
    "cardinality_node_pruning",
]


def enumerate_weighted_comparisons(
    collection: BlockingSubstrate,
    valid_pair: Callable[[int, int], bool],
    scheme: WeightingScheme | None = None,
) -> list[WeightedComparison]:
    """All distinct valid co-block comparisons of a collection, weighted."""
    scheme = scheme or CommonBlocksScheme()
    seen: set[tuple[int, int]] = set()
    weighted: list[WeightedComparison] = []
    for block in collection:
        for pid_x, pid_y in block.pairs(collection.clean_clean):
            pair = canonical_pair(pid_x, pid_y)
            if pair in seen:
                continue
            seen.add(pair)
            if not valid_pair(*pair):
                continue
            weight = scheme.weight(collection, *pair)
            if weight > 0.0:
                weighted.append(WeightedComparison(pair[0], pair[1], weight))
    return weighted


def weighted_edge_pruning(
    collection: BlockingSubstrate,
    valid_pair: Callable[[int, int], bool],
    scheme: WeightingScheme | None = None,
) -> list[WeightedComparison]:
    """WEP: retain comparisons weighing at least the global average."""
    weighted = enumerate_weighted_comparisons(collection, valid_pair, scheme)
    if not weighted:
        return []
    average = sum(w.weight for w in weighted) / len(weighted)
    return [w for w in weighted if w.weight >= average]


def cardinality_edge_pruning(
    collection: BlockingSubstrate,
    valid_pair: Callable[[int, int], bool],
    scheme: WeightingScheme | None = None,
    k: int | None = None,
) -> list[WeightedComparison]:
    """CEP: retain the globally top-``k`` comparisons.

    ``k`` defaults to half the aggregate block size (Σ|b| / 2), the budget
    proposed with the original algorithm.
    """
    weighted = enumerate_weighted_comparisons(collection, valid_pair, scheme)
    if k is None:
        k = max(1, sum(len(block) for block in collection) // 2)
    if k <= 0:
        raise ValueError("k must be positive")
    top = heapq.nlargest(k, weighted, key=lambda w: (w.weight, -w.left, -w.right))
    return top


def cardinality_node_pruning(
    collection: BlockingSubstrate,
    valid_pair: Callable[[int, int], bool],
    scheme: WeightingScheme | None = None,
    k: int | None = None,
) -> list[WeightedComparison]:
    """CNP: retain each profile's top-``k`` comparisons (union over nodes).

    ``k`` defaults to the average number of blocks per profile, the standard
    per-node budget.
    """
    weighted = enumerate_weighted_comparisons(collection, valid_pair, scheme)
    if k is None:
        profiles = collection.profiles_indexed()
        if profiles:
            k = max(1, sum(len(block) for block in collection) // profiles)
        else:
            k = 1
    if k <= 0:
        raise ValueError("k must be positive")
    per_node: dict[int, list[tuple[float, WeightedComparison]]] = {}
    for comparison in weighted:
        for pid in (comparison.left, comparison.right):
            bucket = per_node.setdefault(pid, [])
            heapq.heappush(bucket, (comparison.weight, comparison))
            if len(bucket) > k:
                heapq.heappop(bucket)
    retained: dict[tuple[int, int], WeightedComparison] = {}
    for bucket in per_node.values():
        for _, comparison in bucket:
            retained[comparison.pair] = comparison
    return list(retained.values())
