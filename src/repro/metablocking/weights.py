"""Meta-blocking weighting schemes.

Weighting schemes score a comparison ``c_{x,y}`` by how likely the two
profiles are to match, using only blocking evidence (no attribute access).
The paper uses **CBS** (Common Blocks Scheme) throughout because it is the
cheapest to maintain incrementally; the other classic schemes (ECBS, JS,
ARCS) are provided both for completeness and for the weighting-scheme
ablation benchmark.

Every scheme supports two evaluation modes with bit-identical results:

* the classic per-pair :meth:`~WeightingScheme.weight` call, and
* the single-sweep aggregate path (:mod:`repro.metablocking.sweep`), which
  derives the same weights for *all* partners of one profile from one
  co-occurrence counting pass.  Count-based schemes (CBS, ECBS, JS) expose
  :meth:`finalize_sweep` to turn a co-occurrence count into the weight;
  ARCS marks itself with ``sweep_accumulates_inverse_cardinality`` so the
  sweep accumulates ``1/||b||`` terms instead of counts.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.blocking.substrate import BlockingSubstrate

__all__ = [
    "WeightingScheme",
    "CommonBlocksScheme",
    "EnhancedCommonBlocksScheme",
    "JaccardScheme",
    "ARCSScheme",
    "make_scheme",
]


class WeightingScheme(Protocol):
    """Interface of all weighting schemes."""

    name: str

    def weight(self, collection: BlockingSubstrate, pid_x: int, pid_y: int) -> float:
        """Match-likelihood weight of the comparison ``(pid_x, pid_y)``."""
        ...


class CommonBlocksScheme:
    """CBS: ``w(c_{x,y}) = |B(p_x) ∩ B(p_y)|``.

    The fastest scheme; the paper's default.  Its known failure mode —
    over-weighting pairs of *long* profiles that share many tokens without
    matching — is what motivates the entity-centric I-PES strategy.
    """

    name = "CBS"

    #: Tells the sweep kernel the weight is the bare co-occurrence count —
    #: no per-partner finalize call needed.
    sweep_weight_is_count = True

    def weight(self, collection: BlockingSubstrate, pid_x: int, pid_y: int) -> float:
        return float(collection.common_blocks(pid_x, pid_y))

    def finalize_sweep(
        self, collection: BlockingSubstrate, pid_x: int, pid_y: int, common: int
    ) -> float:
        return float(common)


class EnhancedCommonBlocksScheme:
    """ECBS: CBS boosted by the rarity of each profile's blocks.

    ``w = CBS * log(|B| / |B(p_x)|) * log(|B| / |B(p_y)|)`` — profiles that
    appear in few blocks give more specific evidence.
    """

    name = "ECBS"

    def weight(self, collection: BlockingSubstrate, pid_x: int, pid_y: int) -> float:
        return self.finalize_sweep(
            collection, pid_x, pid_y, collection.common_blocks(pid_x, pid_y)
        )

    def finalize_sweep(
        self, collection: BlockingSubstrate, pid_x: int, pid_y: int, common: int
    ) -> float:
        if common == 0:
            return 0.0
        total_blocks = max(len(collection), 1)
        blocks_x = collection.block_count_of(pid_x) or 1
        blocks_y = collection.block_count_of(pid_y) or 1
        boost_x = math.log1p(total_blocks / blocks_x)
        boost_y = math.log1p(total_blocks / blocks_y)
        return common * boost_x * boost_y

    def sweep_weights_for(
        self, collection: BlockingSubstrate, pid_x: int, candidates, counts
    ) -> list[float]:
        """Vectorized ``finalize_sweep``: ``boost_x`` is hoisted out of the
        per-candidate loop (it only depends on ``pid_x``), which changes no
        float — same inputs, same product order."""
        total_blocks = max(len(collection), 1)
        boost_x = math.log1p(total_blocks / (collection.block_count_of(pid_x) or 1))
        block_count_of = collection.block_count_of
        log1p = math.log1p
        weights = []
        for pid_y in candidates:
            common = counts[pid_y]
            if common == 0:
                weights.append(0.0)
                continue
            boost_y = log1p(total_blocks / (block_count_of(pid_y) or 1))
            weights.append(common * boost_x * boost_y)
        return weights


class JaccardScheme:
    """JS scheme: Jaccard coefficient of the two profiles' block sets."""

    name = "JS-scheme"

    def weight(self, collection: BlockingSubstrate, pid_x: int, pid_y: int) -> float:
        return self.finalize_sweep(
            collection, pid_x, pid_y, collection.common_blocks(pid_x, pid_y)
        )

    def finalize_sweep(
        self, collection: BlockingSubstrate, pid_x: int, pid_y: int, common: int
    ) -> float:
        if common == 0:
            return 0.0
        union = collection.block_count_of(pid_x) + collection.block_count_of(pid_y) - common
        return common / union if union else 0.0

    def sweep_weights_for(
        self, collection: BlockingSubstrate, pid_x: int, candidates, counts
    ) -> list[float]:
        """Vectorized ``finalize_sweep`` with ``|B(p_x)|`` hoisted; the
        integer union arithmetic is exact, so the division is unchanged."""
        count_x = collection.block_count_of(pid_x)
        block_count_of = collection.block_count_of
        weights = []
        for pid_y in candidates:
            common = counts[pid_y]
            if common == 0:
                weights.append(0.0)
                continue
            union = count_x + block_count_of(pid_y) - common
            weights.append(common / union if union else 0.0)
        return weights


class ARCSScheme:
    """ARCS: sum over common blocks of ``1 / ||b||``.

    Small blocks contribute more — comparisons supported by rare tokens are
    more reliable evidence than those supported by frequent ones.  The
    common blocks are summed in sorted-key order so the floating-point
    accumulation is independent of set-iteration order (PYTHONHASHSEED) and
    bit-identical to the sweep path, which visits a profile's blocks in the
    same sorted order.
    """

    name = "ARCS"

    #: Tells the sweep kernel to accumulate ``1/||b||`` per co-occurrence
    #: instead of plain counts.
    sweep_accumulates_inverse_cardinality = True

    def weight(self, collection: BlockingSubstrate, pid_x: int, pid_y: int) -> float:
        keys_x = collection.blocks_of(pid_x)
        keys_y = collection.blocks_of(pid_y)
        if not keys_x or not keys_y:
            return 0.0
        if len(keys_x) > len(keys_y):
            keys_x, keys_y = keys_y, keys_x
        clean_clean = collection.clean_clean
        total = 0.0
        for key in sorted(keys_x):
            if key in keys_y:
                block = collection.get(key)
                if block is None:
                    continue
                cardinality = block.comparison_count(clean_clean)
                if cardinality > 0:
                    total += 1.0 / cardinality
        return total


_SCHEMES = {
    "cbs": CommonBlocksScheme,
    "ecbs": EnhancedCommonBlocksScheme,
    "js": JaccardScheme,
    "arcs": ARCSScheme,
}


def make_scheme(name: str) -> WeightingScheme:
    """Instantiate a weighting scheme by (case-insensitive) name."""
    try:
        return _SCHEMES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown weighting scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None
