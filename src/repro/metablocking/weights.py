"""Meta-blocking weighting schemes.

Weighting schemes score a comparison ``c_{x,y}`` by how likely the two
profiles are to match, using only blocking evidence (no attribute access).
The paper uses **CBS** (Common Blocks Scheme) throughout because it is the
cheapest to maintain incrementally; the other classic schemes (ECBS, JS,
ARCS) are provided both for completeness and for the weighting-scheme
ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.blocking.blocks import BlockCollection

__all__ = [
    "WeightingScheme",
    "CommonBlocksScheme",
    "EnhancedCommonBlocksScheme",
    "JaccardScheme",
    "ARCSScheme",
    "make_scheme",
]


class WeightingScheme(Protocol):
    """Interface of all weighting schemes."""

    name: str

    def weight(self, collection: BlockCollection, pid_x: int, pid_y: int) -> float:
        """Match-likelihood weight of the comparison ``(pid_x, pid_y)``."""
        ...


class CommonBlocksScheme:
    """CBS: ``w(c_{x,y}) = |B(p_x) ∩ B(p_y)|``.

    The fastest scheme; the paper's default.  Its known failure mode —
    over-weighting pairs of *long* profiles that share many tokens without
    matching — is what motivates the entity-centric I-PES strategy.
    """

    name = "CBS"

    def weight(self, collection: BlockCollection, pid_x: int, pid_y: int) -> float:
        return float(collection.common_blocks(pid_x, pid_y))


class EnhancedCommonBlocksScheme:
    """ECBS: CBS boosted by the rarity of each profile's blocks.

    ``w = CBS * log(|B| / |B(p_x)|) * log(|B| / |B(p_y)|)`` — profiles that
    appear in few blocks give more specific evidence.
    """

    name = "ECBS"

    def weight(self, collection: BlockCollection, pid_x: int, pid_y: int) -> float:
        common = collection.common_blocks(pid_x, pid_y)
        if common == 0:
            return 0.0
        total_blocks = max(len(collection), 1)
        blocks_x = len(collection.blocks_of(pid_x)) or 1
        blocks_y = len(collection.blocks_of(pid_y)) or 1
        boost_x = math.log1p(total_blocks / blocks_x)
        boost_y = math.log1p(total_blocks / blocks_y)
        return common * boost_x * boost_y


class JaccardScheme:
    """JS scheme: Jaccard coefficient of the two profiles' block sets."""

    name = "JS-scheme"

    def weight(self, collection: BlockCollection, pid_x: int, pid_y: int) -> float:
        common = collection.common_blocks(pid_x, pid_y)
        if common == 0:
            return 0.0
        union = (
            len(collection.blocks_of(pid_x)) + len(collection.blocks_of(pid_y)) - common
        )
        return common / union if union else 0.0


class ARCSScheme:
    """ARCS: sum over common blocks of ``1 / ||b||``.

    Small blocks contribute more — comparisons supported by rare tokens are
    more reliable evidence than those supported by frequent ones.
    """

    name = "ARCS"

    def weight(self, collection: BlockCollection, pid_x: int, pid_y: int) -> float:
        keys_x = collection.blocks_of(pid_x)
        keys_y = collection.blocks_of(pid_y)
        if not keys_x or not keys_y:
            return 0.0
        if len(keys_x) > len(keys_y):
            keys_x, keys_y = keys_y, keys_x
        total = 0.0
        for key in keys_x:
            if key in keys_y:
                block = collection.get(key)
                if block is None:
                    continue
                cardinality = block.comparison_count(collection.clean_clean)
                if cardinality > 0:
                    total += 1.0 / cardinality
        return total


_SCHEMES = {
    "cbs": CommonBlocksScheme,
    "ecbs": EnhancedCommonBlocksScheme,
    "js": JaccardScheme,
    "arcs": ARCSScheme,
}


def make_scheme(name: str) -> WeightingScheme:
    """Instantiate a weighting scheme by (case-insensitive) name."""
    try:
        return _SCHEMES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown weighting scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None
