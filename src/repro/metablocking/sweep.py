"""Single-sweep weighting kernel: fused candidate generation + weights.

The per-pair weighting path costs ``O(candidates × |B(p)|)`` Python-level
set intersections per new profile: every surviving candidate pair triggers
one ``scheme.weight()`` call, and CBS/ECBS/JS each re-intersect the two
profiles' full block-key sets while ARCS re-derives block cardinalities
pair by pair.  Meta-blocking weights over a token index are, however,
computable in a single co-occurrence counting sweep (cf. SPER,
arXiv:2512.23491, and the blocking survey, arXiv:1905.06167): one pass over
the new profile's blocks accumulates per-partner statistics in one dict —

* occurrence counts give **CBS** directly,
* ``+= 1/||b||`` per co-occurrence gives **ARCS**,
* the counts plus cached ``|B(p)|`` sizes give **ECBS** and **JS**.

That is ``O(Σ|b|)`` per profile, with the counting inner loop executed at C
speed (``Counter.update`` over the index's member lists).  Candidate
de-duplication falls out for free: each partner appears once in the
accumulator however many blocks it shares.

Bit-identity with the per-pair path is a hard contract, relied on by the
``--per-pair-weighting`` escape hatch and enforced by tests and the perf
benchmark:

* blocks are visited in sorted-key order (via
  :meth:`~repro.blocking.substrate.BlockingSubstrate.iter_partner_blocks`), so
  the ARCS float accumulation adds the same terms in the same order as the
  sorted per-pair intersection;
* candidates are emitted in first-appearance order over the (ghosted)
  block list — the same order the legacy path produces after its ordered
  de-duplication;
* count-based weights are finalized through the scheme's own
  ``finalize_sweep``, which shares its arithmetic with ``weight()``.
"""

from __future__ import annotations

from collections import Counter
from itertools import chain
from operator import attrgetter
from typing import Callable, Iterable, Sequence

from repro.blocking.blocks import Block
from repro.blocking.substrate import BlockingSubstrate
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme

__all__ = ["sweep_weights", "partner_weights", "sweep_candidate_weights"]

#: C-level size fetch for the ghosting threshold scan (``len()`` would pay a
#: Python ``__len__`` dispatch per block).
_block_size = attrgetter("_size")


def _arcs_totals(
    collection: BlockingSubstrate,
    pid: int,
    blocks: Sequence[Block],
    source: int | None,
) -> dict[int, float]:
    """Accumulate ``Σ 1/||b||`` per partner over ``pid``'s blocks.

    Blocks arrive in sorted-key order, so each partner's float sum adds its
    terms in exactly the order the (sorted) per-pair ARCS intersection does.
    """
    clean_clean = collection.clean_clean
    cross_only = clean_clean and source is not None
    other = 1 - source if cross_only else 0
    totals: dict[int, float] = {}
    for block in blocks:
        cardinality = block.comparison_count(clean_clean)
        if cardinality <= 0:
            continue
        inverse = 1.0 / cardinality
        if cross_only:
            members: Iterable[int] = block.members_by_source.get(other, ())
        else:
            members = block
        for partner in members:
            totals[partner] = totals.get(partner, 0.0) + inverse
    return totals


def _member_lists(
    blocks: Sequence[Block], cross_only: bool, other: int
) -> list[list[int]]:
    """The member lists the sweep statistics run over, one per block."""
    if cross_only:
        lists = []
        for block in blocks:
            members = block.members_by_source.get(other)
            if members:
                lists.append(members)
        return lists
    return [
        members for block in blocks for members in block.members_by_source.values()
    ]


def _count_totals(
    collection: BlockingSubstrate,
    pid: int,
    blocks: Sequence[Block],
    source: int | None,
) -> Counter:
    """Co-occurrence counts per partner over ``pid``'s blocks (C-speed)."""
    cross_only = collection.clean_clean and source is not None
    other = 1 - source if cross_only else 0
    counts: Counter = Counter()
    counts.update(chain.from_iterable(_member_lists(blocks, cross_only, other)))
    return counts


def _accumulate(
    collection: BlockingSubstrate,
    pid: int,
    blocks: Sequence[Block],
    scheme: WeightingScheme,
    source: int | None,
):
    """Run the statistics sweep; return ``finalize``.

    ``finalize(partner) -> float`` turns the accumulated statistic into the
    scheme's weight, bit-identical to ``scheme.weight(collection, pid,
    partner)``.
    """
    if getattr(scheme, "sweep_accumulates_inverse_cardinality", False):
        totals = _arcs_totals(collection, pid, blocks, source)
        return lambda partner: totals.get(partner, 0.0)
    finalize_sweep = getattr(scheme, "finalize_sweep", None)
    if finalize_sweep is not None:
        counts = _count_totals(collection, pid, blocks, source)
        if getattr(scheme, "sweep_weight_is_count", False):
            return lambda partner: float(counts[partner])
        return lambda partner: finalize_sweep(collection, pid, partner, counts[partner])
    # Unknown scheme object: fall back to per-pair weighting (the sweep
    # still provides de-duplicated candidates in deterministic order).
    return lambda partner: scheme.weight(collection, pid, partner)


def sweep_candidate_weights(
    collection: BlockingSubstrate,
    pid: int,
    valid_partner: Callable[[int], bool] | None,
    scheme: WeightingScheme | None = None,
    *,
    beta: float | None = None,
    source: int | None = None,
) -> tuple[list[int], list[float]]:
    """Candidates and weights of ``pid`` in one sweep, as parallel lists.

    The array-shaped core of :func:`sweep_weights`; callers on the hot path
    (I-WNP) consume the two lists directly so the weight sum and pruning run
    over plain float lists at C speed.

    Parameters
    ----------
    collection:
        The live block collection (purged blocks are skipped).
    pid:
        The profile whose candidate comparisons are generated.
    valid_partner:
        Candidate filter (e.g. cross-source only for Clean-Clean ER).
        ``None`` means every co-block partner is valid — callers pass this
        when the filter is provably redundant (a cross-source predicate on a
        Clean-Clean sweep that already reads only other-source member
        lists), which skips one Python call per candidate.
    scheme:
        Weighting scheme; defaults to CBS as in the paper.
    beta:
        Block-ghosting parameter.  When given, candidates are gathered only
        from blocks no larger than ``|b_min| / beta`` (exactly like
        :func:`~repro.blocking.cleaning.block_ghosting`), while weights are
        still computed against the *full* block evidence — matching the
        legacy generate-then-weigh pipeline.  ``None`` disables ghosting.
    source:
        Optional source hint of ``pid`` on Clean-Clean collections; lets the
        counting sweep skip same-source member lists.

    Candidates come back in first-appearance order over the (ghosted) sorted
    block list — the canonical order shared with the per-pair path.
    """
    scheme = scheme or CommonBlocksScheme()
    blocks = collection.iter_partner_blocks(pid)
    if not blocks:
        return [], []

    if beta is None:
        ghosted: Sequence[Block] = blocks
    else:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        threshold = min(map(_block_size, blocks)) / beta
        ghosted = [block for block in blocks if block._size <= threshold]

    # First-appearance de-duplication runs at C speed: one dict.fromkeys
    # over the chained member lists.  The validity filter afterwards
    # preserves that order and touches each distinct partner exactly once.
    cross_only = collection.clean_clean and source is not None
    other = 1 - source if cross_only else 0
    order = dict.fromkeys(
        chain.from_iterable(_member_lists(ghosted, cross_only, other))
    )
    order.pop(pid, None)
    if valid_partner is None:
        candidates = list(order)
    else:
        candidates = [partner for partner in order if valid_partner(partner)]
    if not candidates:
        return [], []

    if getattr(scheme, "sweep_accumulates_inverse_cardinality", False):
        totals = _arcs_totals(collection, pid, blocks, source)
        return candidates, [totals.get(partner, 0.0) for partner in candidates]
    finalize_sweep = getattr(scheme, "finalize_sweep", None)
    if finalize_sweep is not None:
        counts = _count_totals(collection, pid, blocks, source)
        if getattr(scheme, "sweep_weight_is_count", False):
            # Pure C: subscript + float conversion via map.
            return candidates, list(map(float, map(counts.__getitem__, candidates)))
        sweep_many = getattr(scheme, "sweep_weights_for", None)
        if sweep_many is not None:
            return candidates, sweep_many(collection, pid, candidates, counts)
        return candidates, [
            finalize_sweep(collection, pid, partner, counts[partner])
            for partner in candidates
        ]
    return candidates, [
        scheme.weight(collection, pid, partner) for partner in candidates
    ]


def sweep_weights(
    collection: BlockingSubstrate,
    pid: int,
    valid_partner: Callable[[int], bool] | None,
    scheme: WeightingScheme | None = None,
    *,
    beta: float | None = None,
    source: int | None = None,
) -> list[tuple[int, float]]:
    """Candidates and weights of ``pid`` in one sweep over its block index.

    Pair-shaped convenience wrapper around :func:`sweep_candidate_weights`
    (see there for the parameters): returns an ordered list of
    ``(partner, weight)`` for the distinct valid candidates.
    """
    candidates, weights = sweep_candidate_weights(
        collection, pid, valid_partner, scheme, beta=beta, source=source
    )
    return list(zip(candidates, weights))


def partner_weights(
    collection: BlockingSubstrate,
    pid: int,
    partners: Iterable[int],
    scheme: WeightingScheme | None = None,
    *,
    source: int | None = None,
) -> dict[int, float]:
    """Weights of ``pid`` against a known partner list, via one sweep.

    The aggregate counterpart of calling ``scheme.weight(collection, pid,
    y)`` for each ``y`` in ``partners`` (bit-identical results): used by the
    block-draining paths (refill, I-PBS, PPS/PBS), which already know which
    pairs they need and only want the weights.  Partners that share no live
    block with ``pid`` get weight ``0.0``, as in the per-pair path.
    """
    scheme = scheme or CommonBlocksScheme()
    finalize = _accumulate(
        collection, pid, collection.iter_partner_blocks(pid), scheme, source
    )
    return {partner: finalize(partner) for partner in partners}
