"""Weighted Node Pruning — batch (WNP) and incremental (I-WNP).

WNP is a meta-blocking comparison-cleaning technique: for each profile
(node), it weighs all candidate comparisons incident to that node and keeps
only those whose weight is at least the node-local average.

**I-WNP** (Gazzarri & Herschel, ICDE 2021) is the incremental variant used
inside I-BASE, I-PCS and I-PES: it operates on the candidate list ``C_x`` of
one newly arrived profile at a time, using the *current* state of the block
collection to compute weights (an online approximation of the batch
weights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.blocks import BlockCollection
from repro.core.comparison import WeightedComparison
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme

__all__ = ["WNPResult", "incremental_wnp", "batch_wnp_for_profile"]


@dataclass(frozen=True, slots=True)
class WNPResult:
    """Outcome of a (I-)WNP invocation on one profile's candidate list."""

    kept: tuple[WeightedComparison, ...]
    pruned: int
    weighting_cost_units: int

    @property
    def total_candidates(self) -> int:
        return len(self.kept) + self.pruned


def incremental_wnp(
    collection: BlockCollection,
    pid_x: int,
    candidate_pids: list[int],
    scheme: WeightingScheme | None = None,
) -> WNPResult:
    """I-WNP: weigh candidates of ``pid_x`` and prune below-average ones.

    Parameters
    ----------
    collection:
        Current block collection (weights are computed against it).
    pid_x:
        The newly arrived profile whose candidate comparisons are cleaned.
    candidate_pids:
        Partner pids co-occurring with ``pid_x`` in at least one (ghosted)
        block.  Duplicates are tolerated and collapsed.
    scheme:
        Weighting scheme; defaults to CBS as in the paper.

    Returns the surviving weighted comparisons (weight >= the average over
    the candidate list) along with pruning statistics.
    """
    scheme = scheme or CommonBlocksScheme()
    unique_partners = set(candidate_pids)
    unique_partners.discard(pid_x)
    if not unique_partners:
        return WNPResult(kept=(), pruned=0, weighting_cost_units=0)

    weighted: list[tuple[int, float]] = []
    total_weight = 0.0
    for pid_y in unique_partners:
        weight = scheme.weight(collection, pid_x, pid_y)
        weighted.append((pid_y, weight))
        total_weight += weight
    average = total_weight / len(weighted)

    kept = tuple(
        WeightedComparison.of(pid_x, pid_y, weight)
        for pid_y, weight in weighted
        if weight >= average
    )
    return WNPResult(
        kept=kept,
        pruned=len(weighted) - len(kept),
        weighting_cost_units=len(weighted),
    )


def batch_wnp_for_profile(
    collection: BlockCollection,
    pid_x: int,
    valid_partner: "callable",
    scheme: WeightingScheme | None = None,
) -> WNPResult:
    """Batch WNP restricted to one node: gathers candidates from the full
    collection (all co-block partners of ``pid_x``) before pruning.

    ``valid_partner(pid_y) -> bool`` filters candidates (e.g. cross-source
    only for Clean-Clean ER).
    """
    partners: set[int] = set()
    for block in collection.blocks_of_as_blocks(pid_x):
        for pid_y in block:
            if pid_y != pid_x and valid_partner(pid_y):
                partners.add(pid_y)
    return incremental_wnp(collection, pid_x, list(partners), scheme)
