"""Weighted Node Pruning — batch (WNP) and incremental (I-WNP).

WNP is a meta-blocking comparison-cleaning technique: for each profile
(node), it weighs all candidate comparisons incident to that node and keeps
only those whose weight is at least the node-local average.

**I-WNP** (Gazzarri & Herschel, ICDE 2021) is the incremental variant used
inside I-BASE, I-PCS and I-PES: it operates on the candidate list ``C_x`` of
one newly arrived profile at a time, using the *current* state of the block
collection to compute weights (an online approximation of the batch
weights).

Two weighting backends produce bit-identical results:

* :func:`incremental_wnp` — the legacy per-pair path: one
  ``scheme.weight()`` call per distinct candidate (candidates are
  de-duplicated in first-appearance order before weighting, so one
  weighting cost unit is charged per distinct pair);
* :func:`sweep_wnp` — the single-sweep kernel of
  :mod:`repro.metablocking.sweep`: candidates and weights from one pass
  over the profile's (ghosted) block list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.blocking.substrate import BlockingSubstrate
from repro.core.comparison import WeightedComparison
from repro.metablocking.sweep import sweep_candidate_weights
from repro.metablocking.weights import CommonBlocksScheme, WeightingScheme

__all__ = ["WNPResult", "incremental_wnp", "sweep_wnp", "batch_wnp_for_profile"]


@dataclass(frozen=True, slots=True)
class WNPResult:
    """Outcome of a (I-)WNP invocation on one profile's candidate list."""

    kept: tuple[WeightedComparison, ...]
    pruned: int
    weighting_cost_units: int

    @property
    def total_candidates(self) -> int:
        return len(self.kept) + self.pruned


def _prune_below_average(
    pid_x: int, candidates: list[int], weights: list[float]
) -> WNPResult:
    """The WNP pruning rule: keep comparisons at or above the local average.

    Shared by both weighting backends.  ``sum`` over the weight list adds
    the floats left-to-right exactly like an explicit accumulation loop, so
    identical weight lists give identical averages whichever backend
    produced them.
    """
    if not weights:
        return WNPResult(kept=(), pruned=0, weighting_cost_units=0)
    average = sum(weights) / len(weights)
    comparison = WeightedComparison
    kept = tuple(
        [
            comparison(pid_x, pid_y, weight)
            if pid_x < pid_y
            else comparison(pid_y, pid_x, weight)
            for pid_y, weight in zip(candidates, weights)
            if weight >= average
        ]
    )
    return WNPResult(
        kept=kept,
        pruned=len(weights) - len(kept),
        weighting_cost_units=len(weights),
    )


def incremental_wnp(
    collection: BlockingSubstrate,
    pid_x: int,
    candidate_pids: list[int],
    scheme: WeightingScheme | None = None,
) -> WNPResult:
    """I-WNP: weigh candidates of ``pid_x`` and prune below-average ones.

    Parameters
    ----------
    collection:
        Current block collection (weights are computed against it).
    pid_x:
        The newly arrived profile whose candidate comparisons are cleaned.
    candidate_pids:
        Partner pids co-occurring with ``pid_x`` in at least one (ghosted)
        block.  Duplicates are tolerated and collapsed *before* weighting
        (first appearance wins), so a pair sharing k blocks is weighted —
        and charged — exactly once.
    scheme:
        Weighting scheme; defaults to CBS as in the paper.

    Returns the surviving weighted comparisons (weight >= the average over
    the candidate list) along with pruning statistics.
    """
    scheme = scheme or CommonBlocksScheme()
    ordered = dict.fromkeys(candidate_pids)
    ordered.pop(pid_x, None)
    if not ordered:
        return WNPResult(kept=(), pruned=0, weighting_cost_units=0)
    candidates = list(ordered)
    weights = [scheme.weight(collection, pid_x, pid_y) for pid_y in candidates]
    return _prune_below_average(pid_x, candidates, weights)


def sweep_wnp(
    collection: BlockingSubstrate,
    pid_x: int,
    valid_partner: Callable[[int], bool] | None,
    scheme: WeightingScheme | None = None,
    *,
    beta: float | None = None,
    source: int | None = None,
) -> WNPResult:
    """I-WNP over the single-sweep weighting kernel.

    Fuses candidate generation (with optional block ghosting ``beta``) and
    weighting into one pass over ``pid_x``'s block index, then applies the
    same below-average pruning as :func:`incremental_wnp`.  Emitted
    comparisons, weights, ordering and cost units are bit-identical to the
    per-pair path.  ``valid_partner=None`` skips the per-candidate filter
    (see :func:`~repro.metablocking.sweep.sweep_candidate_weights`).
    """
    candidates, weights = sweep_candidate_weights(
        collection, pid_x, valid_partner, scheme, beta=beta, source=source
    )
    return _prune_below_average(pid_x, candidates, weights)


def batch_wnp_for_profile(
    collection: BlockingSubstrate,
    pid_x: int,
    valid_partner: Callable[[int], bool],
    scheme: WeightingScheme | None = None,
) -> WNPResult:
    """Batch WNP restricted to one node: gathers candidates from the full
    collection (all co-block partners of ``pid_x``) before pruning.

    ``valid_partner(pid_y) -> bool`` filters candidates (e.g. cross-source
    only for Clean-Clean ER).  Runs on the sweep kernel (no ghosting).
    """
    return sweep_wnp(collection, pid_x, valid_partner, scheme)
