"""Supervision policy for the matching fleet: deadlines, eviction, respawn.

The paper's progressive guarantee — best-possible partial result at any
budget cut-off — only survives production if the fleet survives process
failures.  This module holds the *policy* side of that story; the
mechanics live in :class:`repro.parallel.pool.WorkerPool`.

Per-worker state machine (slot states, see ``docs/resilience.md``)::

    alive ──(missed reply deadline)──▶ suspect ──(killed + chunk rescued)──▶ evicted
      ▲                                                                        │
      │                                 (backoff elapsed, respawn succeeds)    │
      └──────────────── respawning ◀───────────────────────────────────────────┘
                            │
                            └──(respawn budget exhausted)──▶ dead

* **alive** — handshaken, scoring chunks.
* **suspect** — a reply deadline or transport error fired; the slot is
  condemned within the same round (its chunk is rescued in-process), so
  ``suspect`` is transient and never observable between rounds.
* **evicted** — process killed; a respawn is scheduled with capped
  exponential backoff (jittered, seeded — :class:`RetryPolicy` semantics).
* **respawning** — a replacement process is mid-handshake.
* **dead** — the slot's respawn budget (``max_respawns``) is exhausted;
  terminal for the slot.  When *every* slot is dead the pool itself turns
  ``broken`` — the pool-level terminal state.

The invariant the whole layer enforces: supervision changes *where* pairs
are scored, never *what* is scored.  Eviction, rescue, and respawn are
invisible in results, metrics-at-checkpoint, and checkpoint fingerprints.

Deadlines are wall-clock (real processes hang in real time); everything
they guard is virtual-clock deterministic.  Both deadlines are overridable
via environment (for slow CI hosts) and via
:class:`repro.api.EngineOptions`:

* ``REPRO_HANDSHAKE_TIMEOUT_S`` — fleet-wide startup/respawn handshake.
* ``REPRO_REPLY_TIMEOUT_S`` — fleet-wide compute-reply deadline per
  scatter round (``0`` or ``inf`` disables it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.resilience.retry import RetryPolicy

__all__ = [
    "DEFAULT_SUPERVISION",
    "ALIVE",
    "SUSPECT",
    "EVICTED",
    "RESPAWNING",
    "DEAD",
    "DEFAULT_HANDSHAKE_TIMEOUT_S",
    "DEFAULT_REPLY_TIMEOUT_S",
    "DEFAULT_MAX_RESPAWNS",
    "DEFAULT_RESPAWN_BACKOFF",
    "SupervisionConfig",
    "default_handshake_timeout",
    "default_reply_timeout",
]

#: Slot states (strings, not an Enum: they print well in errors and logs).
ALIVE = "alive"
SUSPECT = "suspect"
EVICTED = "evicted"
RESPAWNING = "respawning"
DEAD = "dead"

#: How long the whole fleet gets to answer the startup ping — one shared
#: deadline, not per worker, so a hung fleet of N workers degrades after
#: 30 s instead of N×30 s.  Spawn on a loaded host takes O(seconds).
DEFAULT_HANDSHAKE_TIMEOUT_S = 30.0

#: How long the fleet gets to answer one compute scatter.  Generous by
#: default — scoring a chunk is O(ms..s) — because a false positive evicts
#: a healthy worker; chaos tests and benchmarks dial it down.
DEFAULT_REPLY_TIMEOUT_S = 60.0

#: Respawn attempts per worker slot before the slot is terminally dead.
DEFAULT_MAX_RESPAWNS = 3

#: Wall-clock backoff between respawn attempts of one slot: capped
#: exponential with seeded jitter (see :meth:`RetryPolicy.backoff`).
DEFAULT_RESPAWN_BACKOFF = RetryPolicy(
    base_backoff=0.05, backoff_factor=2.0, max_backoff=2.0, jitter=0.25
)


def _env_float(name: str, fallback: float) -> float:
    """``float(os.environ[name])`` with the fallback on absence/garbage."""
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return float(raw)
    except ValueError:
        return fallback


def default_handshake_timeout() -> float:
    """The handshake deadline: ``REPRO_HANDSHAKE_TIMEOUT_S`` or 30 s."""
    return _env_float("REPRO_HANDSHAKE_TIMEOUT_S", DEFAULT_HANDSHAKE_TIMEOUT_S)


def default_reply_timeout() -> float | None:
    """The compute-reply deadline: ``REPRO_REPLY_TIMEOUT_S`` or 60 s.

    ``0`` (or negative, or ``inf``) disables the deadline — returned as
    ``None`` so callers have a single "wait forever" spelling.
    """
    value = _env_float("REPRO_REPLY_TIMEOUT_S", DEFAULT_REPLY_TIMEOUT_S)
    if value <= 0 or value == float("inf"):
        return None
    return value


@dataclass(frozen=True, slots=True)
class SupervisionConfig:
    """Every supervision knob of the worker fleet, as one picklable value.

    ``None`` on a timeout field means "resolve from the environment (or
    the built-in default) when the pool starts" — which is what lets slow
    CI hosts raise the 30 s fleet handshake without touching code.
    """

    handshake_timeout_s: float | None = None
    reply_timeout_s: float | None = None
    max_respawns: int | None = None
    respawn_backoff: RetryPolicy = DEFAULT_RESPAWN_BACKOFF
    #: Seed of the respawn-backoff jitter stream (wall-clock scheduling
    #: only; results are invariant to it by the supervision invariant).
    respawn_seed: int = 0

    def __post_init__(self) -> None:
        if self.handshake_timeout_s is not None and self.handshake_timeout_s <= 0:
            raise ValueError("handshake_timeout_s must be positive (or None)")
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0 (or None)")

    def resolved_handshake_timeout(self) -> float:
        if self.handshake_timeout_s is not None:
            return self.handshake_timeout_s
        return default_handshake_timeout()

    def resolved_reply_timeout(self) -> float | None:
        if self.reply_timeout_s is not None:
            if self.reply_timeout_s <= 0 or self.reply_timeout_s == float("inf"):
                return None
            return self.reply_timeout_s
        return default_reply_timeout()

    def resolved_max_respawns(self) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return DEFAULT_MAX_RESPAWNS


DEFAULT_SUPERVISION = SupervisionConfig()
