"""Tier B of the parallel layer: whole experiment cells across processes.

Where Tier A (:mod:`repro.parallel.pool`) shards the matcher evaluation of
*one* run, Tier B exploits that a comparison — system × dataset × seed —
is embarrassingly parallel across its cells: every cell is an independent
virtual-clock simulation, so fanning the cells out over a process pool and
collating the results in submission order is trivially deterministic.  Each
child executes its cell exactly the way the serial loop would (same
:func:`repro.api.run_cell` code path, forced to ``workers=1`` so a fleet
never nests pools inside pools), which makes the parallel comparison
result-identical to the serial one by construction.

Degradation mirrors Tier A: if the pool cannot start, a child interpreter
dies, or a payload refuses to pickle, the remaining cells run serially in
the parent — slower, never different.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.experiments import ExperimentConfig
    from repro.streaming.engine import RunResult

__all__ = ["run_cells"]


def _execute_cell(config: "ExperimentConfig", system_name: str) -> "RunResult":
    """One cell, in whatever process this runs in.

    The lazy import keeps the module light for the ``spawn`` re-import in
    child interpreters; forcing ``workers=1`` keeps a Tier B fleet from
    spawning a Tier A pool per child.
    """
    from repro.api import run_cell

    engine = config.engine
    if engine is not None and engine.workers != 1:
        config = config.with_overrides(engine=replace(engine, workers=1))
    return run_cell(config, system_name)


def run_cells(
    config: "ExperimentConfig",
    system_names: Sequence[str],
    *,
    workers: int = 1,
) -> list["RunResult"]:
    """Run one cell per system name; return results in ``system_names`` order.

    ``workers <= 1`` (or a single cell) executes serially in-process.  With
    more workers the cells are submitted to a spawn-context
    :class:`~concurrent.futures.ProcessPoolExecutor` and the futures are
    resolved in submission order — the collation is deterministic because
    cell *results* are deterministic, not because of any scheduling luck.
    """
    if workers <= 1 or len(system_names) <= 1:
        return [_execute_cell(config, name) for name in system_names]
    context = multiprocessing.get_context("spawn")
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(system_names)), mp_context=context
        ) as executor:
            futures = [
                executor.submit(_execute_cell, config, name) for name in system_names
            ]
            return [future.result() for future in futures]
    except (BrokenProcessPool, OSError, pickle.PicklingError, TypeError):
        # TypeError covers unpicklable in-memory datasets (e.g. fixtures
        # carrying lambdas); every degradation re-runs the full comparison
        # serially — cells are deterministic, so no partial results to save.
        return [_execute_cell(config, name) for name in system_names]
