"""Process-parallel execution layer: the matching fleet and the cell fleet.

Two independent tiers, both configured through :class:`repro.api.ERSession`
(or ``--workers N`` on the CLI):

* **Tier A** (:mod:`repro.parallel.pool`): a persistent, *supervised*
  :class:`WorkerPool` shards each ``evaluate_batch`` round's similarity
  scoring across worker processes, bit-identical to the in-process kernel
  (the master keeps the virtual clock, the store and all accounting).
  The supervision layer (:mod:`repro.parallel.supervision`) detects dead,
  hung and garbled workers, rescues their in-flight chunks in-process, and
  respawns them with capped jittered backoff — faults change *where* pairs
  are scored, never *what* is scored.
* **Tier B** (:mod:`repro.parallel.cells`): :func:`run_cells` fans the
  independent cells of a comparison out across processes with deterministic
  collation.

Determinism contract: for any worker count, every externally observable
result — comparisons, weights, PC curves, clocks, checkpoint fingerprints,
and the metrics snapshot minus the ``parallel.*`` counters/gauges and the
``scatter`` phase — is identical to ``workers=1``.
:func:`strip_parallel_telemetry` makes that contract executable.
"""

from __future__ import annotations

from repro.parallel.cells import run_cells
from repro.parallel.pool import (
    DEFAULT_MIN_SHARD,
    WorkerPool,
    WorkerPoolError,
    sweep_stale_segments,
)
from repro.parallel.supervision import DEFAULT_SUPERVISION, SupervisionConfig

__all__ = [
    "DEFAULT_MIN_SHARD",
    "DEFAULT_SUPERVISION",
    "SupervisionConfig",
    "WorkerPool",
    "WorkerPoolError",
    "run_cells",
    "strip_parallel_telemetry",
    "sweep_stale_segments",
]

#: The phase timer that only accumulates when a pool is live.
SCATTER_PHASE = "scatter"


def strip_parallel_telemetry(snapshot: dict) -> dict:
    """A metrics snapshot minus the telemetry that varies with worker count.

    Everything a run reports is invariant across worker counts *except* the
    ``parallel.*`` counters/gauges and the ``scatter`` phase (whose counts
    and wall times describe the pool itself).  Stripping them yields the
    surface the worker-count invariance tests compare byte-for-byte.
    """
    stripped = dict(snapshot)
    for family in ("counters", "gauges"):
        if family in stripped:
            stripped[family] = {
                name: value
                for name, value in stripped[family].items()
                if not name.startswith("parallel.")
            }
    if "phases" in stripped:
        stripped["phases"] = {
            name: totals
            for name, totals in stripped["phases"].items()
            if name != SCATTER_PHASE
        }
    return stripped
