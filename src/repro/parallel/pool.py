"""The persistent, self-healing process pool that shards batched matcher
evaluation.

Tier A of the parallel layer (see ``docs/api.md``): the master engine keeps
sole ownership of the virtual clock, the
:class:`~repro.execution.store.ComparisonStore` and the metrics registry,
and only the *similarity/cost scoring* of an emission batch fans out —
contiguous chunks of the batch go to the workers, results are merged back
in submission order.  Because every matcher with
:attr:`~repro.matching.matcher.Matcher.supports_batch` scores pairs
independently (the vectorized kernels are elementwise), the merged
``(similarities, costs)`` lists are bit-identical to a single in-process
``_batch_scores`` call, and all downstream accounting is unchanged.

Design points:

* **spawn-safe** — workers are started with the ``spawn`` method (the only
  method that is fork-safety-clean on every platform); the worker entry
  point lives at module level in :mod:`repro.parallel.worker`.
* **profile payloads off the hot path** — each round's not-yet-shipped
  profiles are pickled *once* into a read-only
  :mod:`multiprocessing.shared_memory` segment that every worker attaches
  and reads, so a profile crosses the process boundary once per run total
  (not once per worker); scoring messages carry only segment names plus
  pid pairs.  Hosts without usable shm (probed at startup) degrade to the
  classic per-worker pickle shipping, bit-identically.
* **supervised degradation** — every worker is tracked through the slot
  state machine of :mod:`repro.parallel.supervision`.  A dead, hung
  (compute replies carry a fleet-wide wall-clock deadline, mirroring the
  handshake deadline) or garbled worker is *evicted alone*: its in-flight
  chunk is re-scored in-process and the round completes bit-identically;
  the slot respawns with capped, jittered exponential backoff and
  shm-generation catch-up.  Only a fleet whose every slot has exhausted
  its respawn budget turns ``broken`` — the pool-level terminal state —
  after which callers fall back to the in-process kernel for good.
* **crash-safe shm lifecycle** — published segments carry recognizable
  ``repro_shm_<pid>_*`` names, are tracked in a module registry swept by
  an ``atexit`` hook (so a master that never reaches ``close()`` still
  unlinks them), and pool startup reaps stale segments left behind by
  dead masters (a SIGKILLed master cannot run its own sweep).
* **deterministic chaos** — :class:`~repro.resilience.faults.WorkerFaultSpec`
  injects seeded process-level faults (SIGKILL mid-round, hang past the
  reply deadline, corrupt/truncated reply) into the workers, making every
  supervision path testable with exact eviction/respawn counts.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import random
import re
import time
from typing import TYPE_CHECKING, Sequence

from repro.parallel.supervision import (
    ALIVE,
    DEAD,
    EVICTED,
    RESPAWNING,
    SUSPECT,
    DEFAULT_HANDSHAKE_TIMEOUT_S,
    DEFAULT_SUPERVISION,
    SupervisionConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.profile import EntityProfile
    from repro.matching.matcher import Matcher
    from repro.resilience.faults import WorkerFaultSpec

__all__ = [
    "WorkerPool",
    "WorkerPoolError",
    "DEFAULT_MIN_SHARD",
    "HANDSHAKE_TIMEOUT_S",
    "sweep_stale_segments",
]

#: Below this many pairs the per-message transport overhead outweighs any
#: parallel win, so the engine keeps small batches in-process.  Sharding
#: threshold only — results are bit-identical either way.
DEFAULT_MIN_SHARD = 64

#: Back-compat alias; the live value is resolved per pool through
#: :class:`~repro.parallel.supervision.SupervisionConfig` (environment
#: variable ``REPRO_HANDSHAKE_TIMEOUT_S``, then this default).
HANDSHAKE_TIMEOUT_S = DEFAULT_HANDSHAKE_TIMEOUT_S

#: Known bytes round-tripped through a probe segment at startup to prove
#: the workers can attach shared memory on this host.
_SHM_PROBE_PAYLOAD = b"repro-shm-probe"

#: Shared-memory segments published by this process and not yet unlinked:
#: name → SharedMemory.  The atexit sweep below is the backstop for a
#: master that exits without ever reaching ``close()``; pool startup reaps
#: what even that could not cover (a SIGKILLed master) by name pattern.
_LIVE_SEGMENTS: dict[str, object] = {}
_SEGMENT_SEQ = 0
_SEGMENT_NAME = re.compile(r"^repro_shm_(\d+)_\d+$")


def _sweep_live_segments() -> None:  # pragma: no cover - exit hook
    """atexit backstop: unlink every segment ``close()`` never released."""
    for segment in list(_LIVE_SEGMENTS.values()):
        try:
            segment.close()
            segment.unlink()
        except OSError:
            pass
    _LIVE_SEGMENTS.clear()


atexit.register(_sweep_live_segments)


def _create_segment(size: int):
    """A tracked shm segment named ``repro_shm_<pid>_<seq>``.

    The embedded pid is what makes crash debris recognizable: a segment
    whose creating process no longer exists is stale by construction and
    reaped by :func:`sweep_stale_segments` at the next pool start.
    """
    global _SEGMENT_SEQ
    from multiprocessing import shared_memory

    pid = os.getpid()
    while True:
        _SEGMENT_SEQ += 1
        name = f"repro_shm_{pid}_{_SEGMENT_SEQ}"
        try:
            segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - pid-reuse leftover
            continue
        _LIVE_SEGMENTS[name] = segment
        return segment


def _release_segment(segment) -> None:
    """Close + unlink one tracked segment (idempotent, best-effort)."""
    _LIVE_SEGMENTS.pop(segment.name, None)
    try:
        segment.close()
        segment.unlink()
    except OSError:  # pragma: no cover - already gone
        pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover - platform quirk
        return True
    return True


def sweep_stale_segments() -> int:
    """Unlink ``repro_shm_*`` segments whose creating process is dead.

    A hard master crash (SIGKILL, OOM kill) runs neither ``close()`` nor
    the atexit sweep, leaking its published segments.  Every pool start
    calls this reaper: any segment named by a no-longer-running pid is
    debris and is unlinked.  Returns the number of segments reaped.
    Best-effort and Linux-shaped (``/dev/shm`` listing); hosts without it
    simply sweep nothing.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return 0
    own_pid = os.getpid()
    swept = 0
    for entry in entries:
        match = _SEGMENT_NAME.match(entry)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join("/dev/shm", entry))
            swept += 1
        except OSError:  # pragma: no cover - raced another sweeper
            pass
    return swept


class WorkerPoolError(RuntimeError):
    """The pool cannot score this round; callers must fall back in-process."""


class _Slot:
    """One supervised worker slot (see the state machine in
    :mod:`repro.parallel.supervision`)."""

    __slots__ = (
        "index", "state", "process", "connection", "known", "generation",
        "incarnation", "respawns_used", "next_respawn_at",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = RESPAWNING
        self.process = None
        self.connection = None
        self.known: set[int] = set()
        self.generation = 0
        self.incarnation = 0
        self.respawns_used = 0
        self.next_respawn_at = 0.0


class WorkerPool:
    """A supervised fleet of persistent worker processes scoring matcher
    batches.

    Parameters
    ----------
    workers:
        Number of worker slots (>= 1); the configured fleet width the
        supervisor heals back to after transient faults.
    matcher:
        Template for the workers' matcher replicas.  Only its class and
        configuration travel; statistics and metrics bindings stay home.
    min_shard:
        Smallest batch worth sharding (exposed for the engine's gate).
    supervision:
        Deadlines, respawn budget and backoff
        (:class:`~repro.parallel.supervision.SupervisionConfig`); ``None``
        means environment-resolved defaults.
    worker_faults:
        Seeded process-level chaos injected into the workers
        (:class:`~repro.resilience.faults.WorkerFaultSpec`); ``None`` (the
        default) injects nothing.
    """

    def __init__(
        self,
        workers: int,
        matcher: "Matcher",
        *,
        min_shard: int = DEFAULT_MIN_SHARD,
        supervision: SupervisionConfig | None = None,
        worker_faults: "WorkerFaultSpec | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.min_shard = min_shard
        self.supervision = supervision or DEFAULT_SUPERVISION
        self.worker_faults = worker_faults
        self.broken = False
        #: Wall seconds spent in scatter/gather round-trips (telemetry only).
        self.scatter_wall_s = 0.0
        self.chunks_shipped = 0
        #: Shared-memory transfer telemetry (exported as ``parallel.shm_*``).
        self.shm_segments_published = 0
        self.shm_bytes_published = 0
        #: Supervision telemetry (exported as ``parallel.supervision.*``).
        self.evictions = 0
        self.respawns = 0
        self.reassigned_chunks = 0
        self.reply_timeouts = 0
        self.stale_segments_swept = sweep_stale_segments()
        #: Kernel outcome counts of the last fully merged round — the
        #: engine folds these into the master matcher so sharded runs
        #: report the same ``matcher.kernel.*`` counters as serial ones.
        self.last_kernel_counts: dict[str, int] = {}
        self._context = multiprocessing.get_context("spawn")
        self._use_shm = False
        self._segments: list = []  # (generation, SharedMemory, payload size)
        self._generation = 0
        self._published: set[int] = set()
        self._template = (type(matcher), _template_state(matcher))
        self._rescue: "Matcher | None" = None
        self._respawn_rng = random.Random(self.supervision.respawn_seed)
        self._closed = False
        #: The engine currently scoring through this pool (see
        #: :meth:`begin_run`).  ``None`` until a run claims the fleet.
        self._owner: object | None = None
        self._slots = [_Slot(index) for index in range(workers)]
        try:
            for slot in self._slots:
                self._start_worker(slot)
            # Handshake: a spawn failure (missing interpreter state, dead
            # child) must surface here, not as a silent no-op pool that
            # reports a fleet it does not have.  One deadline covers the
            # whole fleet — the workers spawn concurrently, so their pings
            # arrive concurrently too.
            self._await_replies(
                self._slots, ("ok", "pong"), "startup ping", strict=True
            )
            for slot in self._slots:
                slot.state = ALIVE
            self._use_shm = self._probe_shm()
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Spawning and handshakes
    # ------------------------------------------------------------------
    def _start_worker(self, slot: _Slot) -> None:
        """Spawn a process into ``slot`` and queue its handshake messages.

        The caller collects the ping reply (fleet-wide at startup, per
        slot on respawn) — splitting spawn from handshake is what lets
        startup overlap all spawns under one deadline.
        """
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_entry, args=(child_end,), daemon=True
        )
        process.start()
        child_end.close()
        parent_end.send(("matcher",) + self._template)
        if self.worker_faults is not None and not self.worker_faults.is_noop:
            parent_end.send(
                ("faults", self.worker_faults, slot.index, slot.incarnation)
            )
        parent_end.send(("ping",))
        slot.process = process
        slot.connection = parent_end
        slot.known = set()
        slot.generation = 0

    def _await_replies(
        self, slots: list, expected: tuple, what: str, *, strict: bool = False
    ) -> bool:
        """Collect one reply per slot under a single fleet-wide deadline.

        Returns ``True`` when every slot sent ``expected``; any other
        reply returns ``False`` (the pipes stay in sync — the reply *was*
        consumed).  A slot that stays silent past the shared deadline
        raises when ``strict`` (startup: the pool refuses to exist) and
        returns ``False`` otherwise.
        """
        deadline = time.monotonic() + self.supervision.resolved_handshake_timeout()
        all_expected = True
        for slot in slots:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0 or not slot.connection.poll(remaining):
                    raise WorkerPoolError(
                        f"worker {slot.index} did not answer {what} in time"
                    )
                if slot.connection.recv() != expected:
                    all_expected = False
            except WorkerPoolError:
                if strict:
                    raise
                return False
            except (EOFError, OSError) as error:
                if strict:
                    raise WorkerPoolError(
                        f"worker {slot.index} failed {what}: {error!r}"
                    ) from error
                return False
        return all_expected

    def _probe_shm(self) -> bool:
        """Round-trip a known payload through a shm segment on every worker.

        Any failure — the master cannot create segments, or a worker
        cannot attach them — disables the shm transfer path (the pickle
        path is used instead, bit-identically).  Only a silent worker is
        fatal, exactly as in the startup ping.
        """
        try:
            probe = _create_segment(len(_SHM_PROBE_PAYLOAD))
        except Exception:
            return False
        try:
            probe.buf[: len(_SHM_PROBE_PAYLOAD)] = _SHM_PROBE_PAYLOAD
            for slot in self._slots:
                slot.connection.send(
                    ("shm_probe", probe.name, len(_SHM_PROBE_PAYLOAD))
                )
            return self._await_replies(
                self._slots, ("ok", "shm"), "shm probe", strict=True
            )
        finally:
            _release_segment(probe)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        workers: int,
        matcher: "Matcher",
        *,
        min_shard: int = DEFAULT_MIN_SHARD,
        supervision: SupervisionConfig | None = None,
        worker_faults: "WorkerFaultSpec | None" = None,
    ) -> "WorkerPool | None":
        """Start a pool, or return ``None`` when the host cannot run one.

        This is the graceful-degradation entry point the engines and
        :class:`~repro.api.ERSession` use: a ``None`` pool means "execute
        in-process" (bit-identical, just not parallel).
        """
        if workers <= 1:
            return None
        try:
            return cls(
                workers,
                matcher,
                min_shard=min_shard,
                supervision=supervision,
                worker_faults=worker_faults,
            )
        except Exception:
            return None

    @property
    def size(self) -> int:
        """The configured fleet width (what the supervisor heals back to)."""
        return len(self._slots)

    @property
    def alive_count(self) -> int:
        return sum(1 for slot in self._slots if slot.state == ALIVE)

    @property
    def healthy(self) -> bool:
        return bool(self._slots) and not self.broken and not self._closed

    @property
    def shm_active(self) -> bool:
        """Whether profile payloads travel via shared memory (vs pickle)."""
        return self._use_shm and self.healthy

    # ------------------------------------------------------------------
    # Supervision: eviction, respawn, healing
    # ------------------------------------------------------------------
    def _evict(self, slot: _Slot, reason: str) -> None:
        """Condemn one slot: kill its process, schedule its respawn.

        Only this worker is condemned — the round it was serving completes
        through in-process rescue, and the pool only turns ``broken`` when
        every slot has exhausted its respawn budget.
        """
        slot.state = SUSPECT
        connection, process = slot.connection, slot.process
        slot.connection = None
        slot.process = None
        if connection is not None:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if process is not None:
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - already dead
                pass
            process.join(timeout=1.0)
        self.evictions += 1
        if slot.respawns_used >= self.supervision.resolved_max_respawns():
            slot.state = DEAD
        else:
            slot.state = EVICTED
            backoff = self.supervision.respawn_backoff.backoff(
                slot.respawns_used + 1, self._respawn_rng
            )
            slot.next_respawn_at = time.monotonic() + backoff
        if all(entry.state == DEAD for entry in self._slots):
            # Terminal pool-level state: the fleet is unrecoverable.
            self.broken = True

    def _maybe_respawn(self, *, force: bool = False) -> None:
        """Respawn evicted slots whose backoff deadline has elapsed.

        ``force`` ignores the deadline (used by :meth:`heal`).  A respawned
        worker handshakes like a fresh one and catches up on shared memory
        by generation: its slot rewinds to generation 0, so its next
        scoring message carries every segment published this run.
        """
        if self.broken or self._closed:
            return
        now = time.monotonic()
        for slot in self._slots:
            if slot.state != EVICTED or (not force and now < slot.next_respawn_at):
                continue
            slot.state = RESPAWNING
            slot.respawns_used += 1
            slot.incarnation += 1
            try:
                self._start_worker(slot)
                handshaken = self._await_replies(
                    [slot], ("ok", "pong"), "respawn ping"
                )
                if handshaken and self._use_shm:
                    handshaken = self._probe_shm_one(slot)
            except Exception:
                handshaken = False
            if handshaken:
                slot.state = ALIVE
                self.respawns += 1
            else:
                self._evict(slot, "respawn handshake failed")

    def _probe_shm_one(self, slot: _Slot) -> bool:
        """The startup shm probe, replayed for one respawned worker."""
        try:
            probe = _create_segment(len(_SHM_PROBE_PAYLOAD))
        except Exception:  # pragma: no cover - shm vanished mid-run
            return False
        try:
            probe.buf[: len(_SHM_PROBE_PAYLOAD)] = _SHM_PROBE_PAYLOAD
            slot.connection.send(("shm_probe", probe.name, len(_SHM_PROBE_PAYLOAD)))
            return self._await_replies([slot], ("ok", "shm"), "respawn shm probe")
        except (BrokenPipeError, OSError):
            return False
        finally:
            _release_segment(probe)

    def heal(self, timeout_s: float = 10.0) -> int:
        """Wait (bounded) for the fleet to return to full configured width.

        Respawns every evicted slot, honoring backoff order but not making
        the caller wait for deadlines beyond ``timeout_s``.  Returns the
        number of alive workers afterwards.  Useful for tests, benchmarks,
        and service callers that want the fleet whole before a burst.
        """
        deadline = time.monotonic() + timeout_s
        while self.healthy:
            if not any(slot.state == EVICTED for slot in self._slots):
                break
            self._maybe_respawn(force=time.monotonic() + 0.05 >= deadline)
            if self.alive_count == self.size or time.monotonic() >= deadline:
                break
            time.sleep(min(0.02, max(0.0, deadline - time.monotonic())))
        return self.alive_count

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    @property
    def owner(self) -> object | None:
        """The engine that last claimed the fleet (cache-epoch marker).

        Worker profile caches are valid for exactly one run at a time;
        interleaved runs sharing the pool (multi-tenant push sessions)
        compare this marker and call :meth:`begin_run` on every switch, so
        pid collisions across tenants can never resolve to stale profiles.
        """
        return self._owner

    def begin_run(self, owner: object | None = None) -> None:
        """Reset every worker's profile cache (start of an engine run).

        Profile ids are only unique *within* a dataset, so caches must not
        survive across runs that may target different data.  The reset is a
        one-way message; the pipe's FIFO ordering makes an ack unnecessary.
        A slot whose pipe fails here is evicted alone (and respawned on
        schedule); the fleet is not condemned.

        ``owner`` claims the fleet for the calling engine until the next
        reset — the cross-run sharing epoch (see :attr:`owner`).
        """
        self._owner = owner
        if not self.healthy:
            return
        self._maybe_respawn()
        for slot in self._slots:
            if slot.state != ALIVE:
                continue
            try:
                slot.connection.send(("reset",))
            except (BrokenPipeError, OSError):
                self._evict(slot, "reset send failed")
                continue
            slot.known.clear()
        self._release_segments()

    def _release_segments(self) -> None:
        """Unlink every published segment and rewind the shm versioning.

        Safe between rounds: scoring is synchronous, so no worker can be
        mid-attach when this runs.
        """
        for _generation, segment, _size in self._segments:
            _release_segment(segment)
        self._segments = []
        self._generation = 0
        self._published.clear()
        for slot in self._slots:
            slot.generation = 0

    def _publish_profiles(self, fresh: list) -> None:
        """Pickle ``fresh`` profiles into one new read-only shm segment.

        The segment is versioned by a monotonically increasing generation;
        each worker is told, per scoring message, about exactly the
        segments it has not consumed yet — which is also how a respawned
        worker (rewound to generation 0) catches up on the whole run.
        """
        payload = pickle.dumps(fresh, protocol=pickle.HIGHEST_PROTOCOL)
        segment = _create_segment(max(1, len(payload)))
        segment.buf[: len(payload)] = payload
        self._generation += 1
        self._segments.append((self._generation, segment, len(payload)))
        self.shm_segments_published += 1
        self.shm_bytes_published += len(payload)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def batch_scores(
        self, pairs: Sequence[tuple["EntityProfile", "EntityProfile"]]
    ) -> tuple[list[float], list[float]]:
        """Score ``pairs`` across the fleet; merge by submission index.

        The batch is split into contiguous chunks across the *alive*
        workers (first chunks get the remainder, mirroring
        ``split_into_increments``), each worker scores one chunk
        concurrently, and the per-chunk ``(similarities, costs)`` lists are
        concatenated in chunk order — the exact element order of a single
        in-process call.

        Supervision happens around the scatter: a worker that dies, hangs
        past the fleet-wide reply deadline, or replies garbage is evicted
        and its chunk re-scored in-process, so the round's merged result is
        bit-identical no matter which workers failed.  Raises
        :class:`WorkerPoolError` only when no worker is currently alive
        (respawn may still heal the fleet for later rounds) or the pool is
        terminally broken; the caller falls back in-process either way.
        """
        if not self.healthy:
            raise WorkerPoolError("worker pool is not available")
        self._maybe_respawn()
        alive = [slot for slot in self._slots if slot.state == ALIVE]
        if not alive:
            raise WorkerPoolError("no alive workers this round")
        started = time.perf_counter()
        if self._use_shm:
            # Publish each profile once for the whole fleet: one segment
            # per round holding every not-yet-shipped profile.
            published = self._published
            fresh = []
            for profile_x, profile_y in pairs:
                if profile_x.pid not in published:
                    published.add(profile_x.pid)
                    fresh.append(profile_x)
                if profile_y.pid not in published:
                    published.add(profile_y.pid)
                    fresh.append(profile_y)
            if fresh:
                try:
                    self._publish_profiles(fresh)
                except OSError:
                    # shm vanished mid-run (host pressure): degrade to the
                    # pickle transport for the rest of the pool's life.
                    # Worker caches are keyed by pid, so inline re-shipping
                    # of already-published profiles is merely redundant.
                    self._use_shm = False
                    self._release_segments()

        # Scatter: one contiguous chunk per alive worker.
        chunks = _split_chunks(len(pairs), len(alive))
        scattered: list[tuple[int, _Slot, Sequence]] = []
        rescued: list[tuple[int, Sequence]] = []
        cursor = 0
        position = 0
        for slot, chunk_size in zip(alive, chunks):
            if chunk_size == 0:
                continue
            chunk = pairs[cursor : cursor + chunk_size]
            cursor += chunk_size
            if self._send_chunk(slot, chunk):
                scattered.append((position, slot, chunk))
            else:
                rescued.append((position, chunk))
            position += 1

        # Gather under one fleet-wide reply deadline (mirroring the
        # handshake deadline): a hung worker is detected, not waited on.
        results: dict[int, tuple] = {}
        reply_timeout = self.supervision.resolved_reply_timeout()
        deadline = (
            time.monotonic() + reply_timeout if reply_timeout is not None else None
        )
        for position_, slot, chunk in scattered:
            payload = self._receive_chunk(slot, len(chunk), deadline)
            if payload is None:
                rescued.append((position_, chunk))
            else:
                results[position_] = payload

        # Rescue: a condemned worker's chunk is re-scored in-process by the
        # pool's own matcher replica — same kernel, same outcome counts,
        # bit-identical scores at the chunk's original merge position.
        for position_, chunk in rescued:
            results[position_] = self._score_in_process(chunk)
            self.reassigned_chunks += 1

        similarities: list[float] = []
        costs: list[float] = []
        kernel_counts: dict[str, int] = {}
        for position_ in sorted(results):
            chunk_similarities, chunk_costs, chunk_counts = results[position_]
            similarities.extend(chunk_similarities)
            costs.extend(chunk_costs)
            for name, value in chunk_counts.items():
                kernel_counts[name] = kernel_counts.get(name, 0) + value
        self.scatter_wall_s += time.perf_counter() - started
        self.chunks_shipped += len(scattered)
        self.last_kernel_counts = kernel_counts
        return similarities, costs

    def _send_chunk(self, slot: _Slot, chunk: Sequence) -> bool:
        """Ship one chunk to one worker; evict the slot on pipe failure."""
        pid_pairs = [
            (profile_x.pid, profile_y.pid) for profile_x, profile_y in chunk
        ]
        try:
            if self._use_shm:
                segments = [
                    (segment.name, size)
                    for generation, segment, size in self._segments
                    if generation > slot.generation
                ]
                slot.connection.send(("shm_scores", segments, pid_pairs))
                slot.generation = self._generation
            else:
                known = slot.known
                fresh = []
                for profile_x, profile_y in chunk:
                    if profile_x.pid not in known:
                        known.add(profile_x.pid)
                        fresh.append(profile_x)
                    if profile_y.pid not in known:
                        known.add(profile_y.pid)
                        fresh.append(profile_y)
                slot.connection.send(("scores", fresh, pid_pairs))
        except (BrokenPipeError, OSError):
            self._evict(slot, "scatter send failed")
            return False
        return True

    def _receive_chunk(
        self, slot: _Slot, expected_pairs: int, deadline: float | None
    ) -> tuple | None:
        """Collect one scoring reply; evict the slot on timeout/death/garble.

        Returns the validated ``(similarities, costs, kernel_counts)``
        payload, or ``None`` after evicting the slot — the caller rescues
        the chunk in-process either way.
        """
        try:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not slot.connection.poll(remaining):
                    self.reply_timeouts += 1
                    self._evict(slot, "reply deadline exceeded")
                    return None
            reply = slot.connection.recv()
        except (EOFError, OSError):
            self._evict(slot, "worker died mid-round")
            return None
        payload = _validate_reply(reply, expected_pairs)
        if payload is None:
            self._evict(slot, f"garbled reply: {reply!r:.120}")
            return None
        return payload

    def _score_in_process(self, chunk: Sequence) -> tuple:
        """Re-score a condemned worker's chunk with the pool's own replica.

        The replica is rebuilt from the same template the workers receive,
        so scores and staged-kernel outcome counts are bit-identical to
        what the lost worker would have returned.
        """
        if self._rescue is None:
            from repro.parallel.worker import rebuild_matcher

            template_cls, template_state = self._template
            self._rescue = rebuild_matcher(
                template_cls, pickle.loads(pickle.dumps(template_state))
            )
        matcher = self._rescue
        counts = matcher.kernel_counts
        for key in counts:
            counts[key] = 0
        similarities, costs = matcher._batch_scores(list(chunk))
        return similarities, costs, dict(counts)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop and join every worker (idempotent, best-effort)."""
        self._closed = True
        self._release_segments()
        for slot in self._slots:
            if slot.connection is None:
                continue
            try:
                slot.connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in self._slots:
            if slot.connection is not None:
                try:
                    slot.connection.close()
                except OSError:
                    pass
                slot.connection = None
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
            slot.process = None
            slot.state = DEAD

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def _validate_reply(reply: object, expected_pairs: int) -> tuple | None:
    """The shape a healthy scoring reply must have; ``None`` otherwise.

    A truncated or corrupt payload must never merge: chunk results are
    concatenated positionally, so a short similarity list would silently
    misalign every later pair.  Anything but exact shape is garbage.
    """
    if not (isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "ok"):
        return None
    payload = reply[1]
    if not (isinstance(payload, tuple) and len(payload) == 3):
        return None
    similarities, costs, kernel_counts = payload
    if not (isinstance(similarities, list) and isinstance(costs, list)):
        return None
    if len(similarities) != expected_pairs or len(costs) != expected_pairs:
        return None
    if not isinstance(kernel_counts, dict):
        return None
    return payload


def _worker_entry(connection) -> None:  # pragma: no cover - runs in child
    """Spawn target: import inside the child keeps the parent import-light."""
    from repro.parallel.worker import worker_main

    worker_main(connection)


def _template_state(matcher: "Matcher") -> dict:
    """The matcher configuration that travels to the workers.

    Statistics travel as zeros (workers never account; kernel counts are
    zeroed per scoring round and merged back by the master), derived
    caches are rebuilt worker-side, and the metrics binding never travels
    at all.
    """
    excluded = matcher._DERIVED_STATE
    state = {
        key: value
        for key, value in matcher.__dict__.items()
        if key != "_metrics" and key not in excluded
    }
    state["comparisons_executed"] = 0
    state["matches_found"] = 0
    state["total_cost"] = 0.0
    state["kernel_counts"] = dict.fromkeys(matcher.kernel_counts, 0)
    return state


def _split_chunks(n_pairs: int, n_workers: int) -> list[int]:
    """Contiguous chunk sizes: ``n_pairs`` split across ``n_workers``,
    remainder to the first chunks (deterministic on every host)."""
    base, extra = divmod(n_pairs, n_workers)
    return [base + (1 if index < extra else 0) for index in range(n_workers)]
