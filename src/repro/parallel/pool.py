"""The persistent process pool that shards batched matcher evaluation.

Tier A of the parallel layer (see ``docs/api.md``): the master engine keeps
sole ownership of the virtual clock, the
:class:`~repro.execution.store.ComparisonStore` and the metrics registry,
and only the *similarity/cost scoring* of an emission batch fans out —
contiguous chunks of the batch go to the workers, results are merged back
in submission order.  Because every matcher with
:attr:`~repro.matching.matcher.Matcher.supports_batch` scores pairs
independently (the vectorized kernels are elementwise), the merged
``(similarities, costs)`` lists are bit-identical to a single in-process
``_batch_scores`` call, and all downstream accounting is unchanged.

Design points:

* **spawn-safe** — workers are started with the ``spawn`` method (the only
  method that is fork-safety-clean on every platform); the worker entry
  point lives at module level in :mod:`repro.parallel.worker`.
* **profile payloads off the hot path** — each round's not-yet-shipped
  profiles are pickled *once* into a read-only
  :mod:`multiprocessing.shared_memory` segment that every worker attaches
  and reads, so a profile crosses the process boundary once per run total
  (not once per worker); scoring messages carry only segment names plus
  pid pairs.  Hosts without usable shm (probed at startup) degrade to the
  classic per-worker pickle shipping, bit-identically.
* **graceful degradation** — :meth:`WorkerPool.create` returns ``None``
  when the pool cannot start, and any mid-run transport failure marks the
  pool broken and raises :class:`WorkerPoolError`; callers fall back to the
  in-process kernel (which is bit-identical anyway) and count the fallback.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.profile import EntityProfile
    from repro.matching.matcher import Matcher

__all__ = ["WorkerPool", "WorkerPoolError", "DEFAULT_MIN_SHARD"]

#: Below this many pairs the per-message transport overhead outweighs any
#: parallel win, so the engine keeps small batches in-process.  Sharding
#: threshold only — results are bit-identical either way.
DEFAULT_MIN_SHARD = 64

#: How long the whole fleet gets to answer the startup ping — one shared
#: deadline, not per worker, so a hung fleet of N workers degrades after
#: 30 s instead of N×30 s.  Spawn on a loaded host takes O(seconds); a
#: fleet silent this long is treated as failed and the pool refuses to
#: start.
HANDSHAKE_TIMEOUT_S = 30.0

#: Known bytes round-tripped through a probe segment at startup to prove
#: the workers can attach shared memory on this host.
_SHM_PROBE_PAYLOAD = b"repro-shm-probe"


class WorkerPoolError(RuntimeError):
    """The pool lost a worker (or never started); callers must fall back."""


class WorkerPool:
    """A fleet of persistent worker processes scoring matcher batches.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    matcher:
        Template for the workers' matcher replicas.  Only its class and
        configuration travel; statistics and metrics bindings stay home.
    min_shard:
        Smallest batch worth sharding (exposed for the engine's gate).
    """

    def __init__(
        self,
        workers: int,
        matcher: "Matcher",
        *,
        min_shard: int = DEFAULT_MIN_SHARD,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.min_shard = min_shard
        self.broken = False
        #: Wall seconds spent in scatter/gather round-trips (telemetry only).
        self.scatter_wall_s = 0.0
        self.chunks_shipped = 0
        #: Shared-memory transfer telemetry (exported as ``parallel.shm_*``).
        self.shm_segments_published = 0
        self.shm_bytes_published = 0
        #: Kernel outcome counts of the last fully merged round — the
        #: engine folds these into the master matcher so sharded runs
        #: report the same ``matcher.kernel.*`` counters as serial ones.
        self.last_kernel_counts: dict[str, int] = {}
        context = multiprocessing.get_context("spawn")
        self._processes: list = []
        self._connections: list = []
        self._known: list[set[int]] = []
        self._use_shm = False
        self._segments: list = []  # (generation, SharedMemory, payload size)
        self._generation = 0
        self._worker_generation: list[int] = []
        self._published: set[int] = set()
        template = (type(matcher), _template_state(matcher))
        try:
            for _ in range(workers):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_entry, args=(child_end,), daemon=True
                )
                process.start()
                child_end.close()
                parent_end.send(("matcher",) + template)
                parent_end.send(("ping",))
                self._processes.append(process)
                self._connections.append(parent_end)
                self._known.append(set())
                self._worker_generation.append(0)
            # Handshake: a spawn failure (missing interpreter state, dead
            # child) must surface here, not as a silent no-op pool that
            # reports a fleet it does not have.  One deadline covers the
            # whole fleet — the workers spawn concurrently, so their pings
            # arrive concurrently too.
            self._await_replies(("ok", "pong"), "startup ping")
            self._use_shm = self._probe_shm()
        except Exception:
            self.close()
            raise

    def _await_replies(self, expected: tuple, what: str) -> bool:
        """Collect one reply per worker under a single fleet-wide deadline.

        Returns ``True`` when every worker sent ``expected``; any other
        reply returns ``False`` (the pipes stay in sync — the reply *was*
        consumed).  A worker that stays silent past the shared deadline
        raises: its reply can no longer be matched to a request, so the
        pool is unusable.
        """
        deadline = time.monotonic() + HANDSHAKE_TIMEOUT_S
        all_expected = True
        for connection in self._connections:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not connection.poll(remaining):
                raise WorkerPoolError(f"worker did not answer {what} in time")
            if connection.recv() != expected:
                all_expected = False
        return all_expected

    def _probe_shm(self) -> bool:
        """Round-trip a known payload through a shm segment on every worker.

        Any failure — the master cannot create segments, or a worker
        cannot attach them — disables the shm transfer path (the pickle
        path is used instead, bit-identically).  Only a silent worker is
        fatal, exactly as in the startup ping.
        """
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(
                create=True, size=len(_SHM_PROBE_PAYLOAD)
            )
        except Exception:
            return False
        try:
            probe.buf[: len(_SHM_PROBE_PAYLOAD)] = _SHM_PROBE_PAYLOAD
            for connection in self._connections:
                connection.send(("shm_probe", probe.name, len(_SHM_PROBE_PAYLOAD)))
            return self._await_replies(("ok", "shm"), "shm probe")
        finally:
            try:
                probe.close()
                probe.unlink()
            except OSError:  # pragma: no cover - platform cleanup quirk
                pass

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        workers: int,
        matcher: "Matcher",
        *,
        min_shard: int = DEFAULT_MIN_SHARD,
    ) -> "WorkerPool | None":
        """Start a pool, or return ``None`` when the host cannot run one.

        This is the graceful-degradation entry point the engines and
        :class:`~repro.api.ERSession` use: a ``None`` pool means "execute
        in-process" (bit-identical, just not parallel).
        """
        if workers <= 1:
            return None
        try:
            return cls(workers, matcher, min_shard=min_shard)
        except Exception:
            return None

    @property
    def size(self) -> int:
        return len(self._connections)

    @property
    def healthy(self) -> bool:
        return bool(self._connections) and not self.broken

    @property
    def shm_active(self) -> bool:
        """Whether profile payloads travel via shared memory (vs pickle)."""
        return self._use_shm and self.healthy

    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Reset every worker's profile cache (start of an engine run).

        Profile ids are only unique *within* a dataset, so caches must not
        survive across runs that may target different data.  The reset is a
        one-way message; the pipe's FIFO ordering makes an ack unnecessary.
        """
        if not self.healthy:
            return
        try:
            for connection in self._connections:
                connection.send(("reset",))
        except (BrokenPipeError, OSError):
            self._mark_broken()
        for known in self._known:
            known.clear()
        self._release_segments()

    def _release_segments(self) -> None:
        """Unlink every published segment and rewind the shm versioning.

        Safe between rounds: scoring is synchronous, so no worker can be
        mid-attach when this runs.
        """
        for _generation, segment, _size in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._generation = 0
        self._worker_generation = [0] * len(self._connections)
        self._published.clear()

    def _publish_profiles(self, fresh: list) -> None:
        """Pickle ``fresh`` profiles into one new read-only shm segment.

        The segment is versioned by a monotonically increasing generation;
        each worker is told, per scoring message, about exactly the
        segments it has not consumed yet.
        """
        from multiprocessing import shared_memory

        payload = pickle.dumps(fresh, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        segment.buf[: len(payload)] = payload
        self._generation += 1
        self._segments.append((self._generation, segment, len(payload)))
        self.shm_segments_published += 1
        self.shm_bytes_published += len(payload)

    def batch_scores(
        self, pairs: Sequence[tuple["EntityProfile", "EntityProfile"]]
    ) -> tuple[list[float], list[float]]:
        """Score ``pairs`` across the fleet; merge by submission index.

        The batch is split into at most ``size`` contiguous chunks (first
        chunks get the remainder, mirroring ``split_into_increments``), each
        worker scores one chunk concurrently, and the per-chunk
        ``(similarities, costs)`` lists are concatenated in chunk order —
        the exact element order of a single in-process call.

        Raises :class:`WorkerPoolError` on any transport failure or worker
        death; the pool is then marked broken and the caller falls back.
        """
        if not self.healthy:
            raise WorkerPoolError("worker pool is not available")
        started = time.perf_counter()
        chunks = _split_chunks(len(pairs), self.size)
        active: list[int] = []
        cursor = 0
        try:
            if self._use_shm:
                # Publish each profile once for the whole fleet: one
                # segment per round holding every not-yet-shipped profile.
                published = self._published
                fresh = []
                for profile_x, profile_y in pairs:
                    if profile_x.pid not in published:
                        published.add(profile_x.pid)
                        fresh.append(profile_x)
                    if profile_y.pid not in published:
                        published.add(profile_y.pid)
                        fresh.append(profile_y)
                if fresh:
                    self._publish_profiles(fresh)
            for worker_index, chunk_size in enumerate(chunks):
                if chunk_size == 0:
                    continue
                chunk = pairs[cursor : cursor + chunk_size]
                cursor += chunk_size
                pid_pairs = [
                    (profile_x.pid, profile_y.pid) for profile_x, profile_y in chunk
                ]
                if self._use_shm:
                    consumed = self._worker_generation[worker_index]
                    segments = [
                        (segment.name, size)
                        for generation, segment, size in self._segments
                        if generation > consumed
                    ]
                    self._connections[worker_index].send(
                        ("shm_scores", segments, pid_pairs)
                    )
                    self._worker_generation[worker_index] = self._generation
                else:
                    known = self._known[worker_index]
                    fresh = []
                    for profile_x, profile_y in chunk:
                        if profile_x.pid not in known:
                            known.add(profile_x.pid)
                            fresh.append(profile_x)
                        if profile_y.pid not in known:
                            known.add(profile_y.pid)
                            fresh.append(profile_y)
                    self._connections[worker_index].send(("scores", fresh, pid_pairs))
                active.append(worker_index)
            similarities: list[float] = []
            costs: list[float] = []
            kernel_counts: dict[str, int] = {}
            for worker_index in active:
                status, payload = self._connections[worker_index].recv()
                if status != "ok":
                    raise WorkerPoolError(f"worker {worker_index} failed: {payload}")
                chunk_similarities, chunk_costs, chunk_counts = payload
                similarities.extend(chunk_similarities)
                costs.extend(chunk_costs)
                for name, value in chunk_counts.items():
                    kernel_counts[name] = kernel_counts.get(name, 0) + value
        except WorkerPoolError:
            self._mark_broken()
            raise
        except (BrokenPipeError, EOFError, OSError) as error:
            self._mark_broken()
            raise WorkerPoolError(f"worker pool transport failed: {error!r}") from error
        self.scatter_wall_s += time.perf_counter() - started
        self.chunks_shipped += len(active)
        self.last_kernel_counts = kernel_counts
        return similarities, costs

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop and join every worker (idempotent, best-effort)."""
        self._release_segments()
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._connections = []
        self._processes = []
        self._known = []

    def _mark_broken(self) -> None:
        self.broken = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def _worker_entry(connection) -> None:  # pragma: no cover - runs in child
    """Spawn target: import inside the child keeps the parent import-light."""
    from repro.parallel.worker import worker_main

    worker_main(connection)


def _template_state(matcher: "Matcher") -> dict:
    """The matcher configuration that travels to the workers.

    Statistics travel as zeros (workers never account; kernel counts are
    zeroed per scoring round and merged back by the master), derived
    caches are rebuilt worker-side, and the metrics binding never travels
    at all.
    """
    excluded = matcher._DERIVED_STATE
    state = {
        key: value
        for key, value in matcher.__dict__.items()
        if key != "_metrics" and key not in excluded
    }
    state["comparisons_executed"] = 0
    state["matches_found"] = 0
    state["total_cost"] = 0.0
    state["kernel_counts"] = dict.fromkeys(matcher.kernel_counts, 0)
    return state


def _split_chunks(n_pairs: int, n_workers: int) -> list[int]:
    """Contiguous chunk sizes: ``n_pairs`` split across ``n_workers``,
    remainder to the first chunks (deterministic on every host)."""
    base, extra = divmod(n_pairs, n_workers)
    return [base + (1 if index < extra else 0) for index in range(n_workers)]
