"""The persistent process pool that shards batched matcher evaluation.

Tier A of the parallel layer (see ``docs/api.md``): the master engine keeps
sole ownership of the virtual clock, the
:class:`~repro.execution.store.ComparisonStore` and the metrics registry,
and only the *similarity/cost scoring* of an emission batch fans out —
contiguous chunks of the batch go to the workers, results are merged back
in submission order.  Because every matcher with
:attr:`~repro.matching.matcher.Matcher.supports_batch` scores pairs
independently (the vectorized kernels are elementwise), the merged
``(similarities, costs)`` lists are bit-identical to a single in-process
``_batch_scores`` call, and all downstream accounting is unchanged.

Design points:

* **spawn-safe** — workers are started with the ``spawn`` method (the only
  method that is fork-safety-clean on every platform); the worker entry
  point lives at module level in :mod:`repro.parallel.worker`.
* **profile payloads off the hot path** — the pool tracks, per worker, the
  set of profile ids already shipped; a scoring message carries only the
  unseen profiles plus pid pairs.
* **graceful degradation** — :meth:`WorkerPool.create` returns ``None``
  when the pool cannot start, and any mid-run transport failure marks the
  pool broken and raises :class:`WorkerPoolError`; callers fall back to the
  in-process kernel (which is bit-identical anyway) and count the fallback.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.profile import EntityProfile
    from repro.matching.matcher import Matcher

__all__ = ["WorkerPool", "WorkerPoolError", "DEFAULT_MIN_SHARD"]

#: Below this many pairs the per-message transport overhead outweighs any
#: parallel win, so the engine keeps small batches in-process.  Sharding
#: threshold only — results are bit-identical either way.
DEFAULT_MIN_SHARD = 64

#: How long a freshly spawned worker gets to answer the startup ping.
#: Spawn on a loaded host takes O(seconds); a worker that is silent this
#: long is treated as failed and the pool refuses to start.
HANDSHAKE_TIMEOUT_S = 30.0


class WorkerPoolError(RuntimeError):
    """The pool lost a worker (or never started); callers must fall back."""


class WorkerPool:
    """A fleet of persistent worker processes scoring matcher batches.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    matcher:
        Template for the workers' matcher replicas.  Only its class and
        configuration travel; statistics and metrics bindings stay home.
    min_shard:
        Smallest batch worth sharding (exposed for the engine's gate).
    """

    def __init__(
        self,
        workers: int,
        matcher: "Matcher",
        *,
        min_shard: int = DEFAULT_MIN_SHARD,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.min_shard = min_shard
        self.broken = False
        #: Wall seconds spent in scatter/gather round-trips (telemetry only).
        self.scatter_wall_s = 0.0
        self.chunks_shipped = 0
        context = multiprocessing.get_context("spawn")
        self._processes: list = []
        self._connections: list = []
        self._known: list[set[int]] = []
        template = (type(matcher), _template_state(matcher))
        try:
            for _ in range(workers):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_entry, args=(child_end,), daemon=True
                )
                process.start()
                child_end.close()
                parent_end.send(("matcher",) + template)
                parent_end.send(("ping",))
                self._processes.append(process)
                self._connections.append(parent_end)
                self._known.append(set())
            # Handshake: a spawn failure (missing interpreter state, dead
            # child) must surface here, not as a silent no-op pool that
            # reports a fleet it does not have.
            for connection in self._connections:
                if not connection.poll(HANDSHAKE_TIMEOUT_S):
                    raise WorkerPoolError("worker did not answer startup ping")
                status, payload = connection.recv()
                if (status, payload) != ("ok", "pong"):
                    raise WorkerPoolError(f"bad startup handshake: {(status, payload)!r}")
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        workers: int,
        matcher: "Matcher",
        *,
        min_shard: int = DEFAULT_MIN_SHARD,
    ) -> "WorkerPool | None":
        """Start a pool, or return ``None`` when the host cannot run one.

        This is the graceful-degradation entry point the engines and
        :class:`~repro.api.ERSession` use: a ``None`` pool means "execute
        in-process" (bit-identical, just not parallel).
        """
        if workers <= 1:
            return None
        try:
            return cls(workers, matcher, min_shard=min_shard)
        except Exception:
            return None

    @property
    def size(self) -> int:
        return len(self._connections)

    @property
    def healthy(self) -> bool:
        return bool(self._connections) and not self.broken

    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Reset every worker's profile cache (start of an engine run).

        Profile ids are only unique *within* a dataset, so caches must not
        survive across runs that may target different data.  The reset is a
        one-way message; the pipe's FIFO ordering makes an ack unnecessary.
        """
        if not self.healthy:
            return
        try:
            for connection in self._connections:
                connection.send(("reset",))
        except (BrokenPipeError, OSError):
            self._mark_broken()
        for known in self._known:
            known.clear()

    def batch_scores(
        self, pairs: Sequence[tuple["EntityProfile", "EntityProfile"]]
    ) -> tuple[list[float], list[float]]:
        """Score ``pairs`` across the fleet; merge by submission index.

        The batch is split into at most ``size`` contiguous chunks (first
        chunks get the remainder, mirroring ``split_into_increments``), each
        worker scores one chunk concurrently, and the per-chunk
        ``(similarities, costs)`` lists are concatenated in chunk order —
        the exact element order of a single in-process call.

        Raises :class:`WorkerPoolError` on any transport failure or worker
        death; the pool is then marked broken and the caller falls back.
        """
        if not self.healthy:
            raise WorkerPoolError("worker pool is not available")
        started = time.perf_counter()
        chunks = _split_chunks(len(pairs), self.size)
        active: list[int] = []
        cursor = 0
        try:
            for worker_index, chunk_size in enumerate(chunks):
                if chunk_size == 0:
                    continue
                chunk = pairs[cursor : cursor + chunk_size]
                cursor += chunk_size
                known = self._known[worker_index]
                fresh = []
                pid_pairs = []
                for profile_x, profile_y in chunk:
                    if profile_x.pid not in known:
                        known.add(profile_x.pid)
                        fresh.append(profile_x)
                    if profile_y.pid not in known:
                        known.add(profile_y.pid)
                        fresh.append(profile_y)
                    pid_pairs.append((profile_x.pid, profile_y.pid))
                self._connections[worker_index].send(("scores", fresh, pid_pairs))
                active.append(worker_index)
            similarities: list[float] = []
            costs: list[float] = []
            for worker_index in active:
                status, payload = self._connections[worker_index].recv()
                if status != "ok":
                    raise WorkerPoolError(f"worker {worker_index} failed: {payload}")
                chunk_similarities, chunk_costs = payload
                similarities.extend(chunk_similarities)
                costs.extend(chunk_costs)
        except WorkerPoolError:
            self._mark_broken()
            raise
        except (BrokenPipeError, EOFError, OSError) as error:
            self._mark_broken()
            raise WorkerPoolError(f"worker pool transport failed: {error!r}") from error
        self.scatter_wall_s += time.perf_counter() - started
        self.chunks_shipped += len(active)
        return similarities, costs

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop and join every worker (idempotent, best-effort)."""
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._connections = []
        self._processes = []
        self._known = []

    def _mark_broken(self) -> None:
        self.broken = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def _worker_entry(connection) -> None:  # pragma: no cover - runs in child
    """Spawn target: import inside the child keeps the parent import-light."""
    from repro.parallel.worker import worker_main

    worker_main(connection)


def _template_state(matcher: "Matcher") -> dict:
    """The matcher configuration that travels to the workers.

    Statistics travel as zeros (workers never account) and the metrics
    binding never travels at all.
    """
    state = {key: value for key, value in matcher.__dict__.items() if key != "_metrics"}
    state["comparisons_executed"] = 0
    state["matches_found"] = 0
    state["total_cost"] = 0.0
    return state


def _split_chunks(n_pairs: int, n_workers: int) -> list[int]:
    """Contiguous chunk sizes: ``n_pairs`` split across ``n_workers``,
    remainder to the first chunks (deterministic on every host)."""
    base, extra = divmod(n_pairs, n_workers)
    return [base + (1 if index < extra else 0) for index in range(n_workers)]
