"""Worker-process side of the matching fleet.

A worker is a long-lived child process holding two pieces of state:

* a **matcher replica**, rebuilt once from the template the pool ships at
  startup (class + ``__dict__`` minus the metrics binding), and
* a **profile cache** keyed by profile id, so the hot path ships 16-byte
  pid pairs instead of pickled profile payloads — each profile crosses the
  process boundary at most once per run.

Workers are *pure compute*: they evaluate the matcher's vectorized
:meth:`~repro.matching.matcher.Matcher._batch_scores` kernel over cached
profiles and return ``(similarities, costs)`` lists.  All accounting — the
virtual clock, matcher statistics, metrics, the
:class:`~repro.execution.store.ComparisonStore` — stays with the master,
which is what keeps a sharded run bit-identical to the serial path.

The module is deliberately import-light and free of module-level state so
it is safe under the ``spawn`` start method (each worker re-imports it in a
fresh interpreter).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.matching.matcher import Matcher

__all__ = ["worker_main", "rebuild_matcher"]


def rebuild_matcher(matcher_cls: type, state: dict) -> "Matcher":
    """Reconstruct a matcher replica from a pool template.

    Bypasses ``__init__`` (the template already carries validated state) and
    leaves the replica unbound from any metrics registry: workers never
    account, they only score.
    """
    matcher = matcher_cls.__new__(matcher_cls)
    matcher.__dict__.update(state)
    matcher._metrics = None
    return matcher


def worker_main(connection: "Connection") -> None:
    """The worker loop: receive tasks over ``connection`` until stopped.

    Message protocol (tuples; first element is the kind):

    ``("matcher", cls, state)``
        Install the matcher replica.  Also clears the profile cache — a new
        template implies a new session.
    ``("reset",)``
        Clear the profile cache (sent at the start of every run, so stale
        pid-to-profile bindings can never leak across datasets).
    ``("ping",)``
        Reply ``("ok", "pong")`` — the pool's startup handshake proving the
        worker survived spawn and can round-trip messages.
    ``("scores", profiles, pid_pairs)``
        Cache the (previously unseen) ``profiles``, score ``pid_pairs``
        through the matcher's ``_batch_scores`` kernel, and reply with
        ``("ok", (similarities, costs))`` or ``("error", repr)``.
    ``("stop",)``
        Exit the loop.
    """
    matcher: "Matcher | None" = None
    profiles: dict = {}
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "scores":
            for profile in message[1]:
                profiles[profile.pid] = profile
            try:
                pairs = [(profiles[pid_x], profiles[pid_y]) for pid_x, pid_y in message[2]]
                reply = ("ok", matcher._batch_scores(pairs))
            except Exception as error:  # propagate, let the master degrade
                reply = ("error", repr(error))
            try:
                connection.send(reply)
            except (BrokenPipeError, OSError):
                break
        elif kind == "matcher":
            matcher = rebuild_matcher(message[1], message[2])
            profiles.clear()
        elif kind == "reset":
            profiles.clear()
        elif kind == "ping":
            try:
                connection.send(("ok", "pong"))
            except (BrokenPipeError, OSError):
                break
        elif kind == "stop":
            break
    connection.close()
