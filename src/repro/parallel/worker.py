"""Worker-process side of the matching fleet.

A worker is a long-lived child process holding two pieces of state:

* a **matcher replica**, rebuilt once from the template the pool ships at
  startup (class + ``__dict__`` minus the metrics binding and derived
  caches), and
* a **profile cache** keyed by profile id, so the hot path ships 16-byte
  pid pairs instead of pickled profile payloads — each profile crosses the
  process boundary at most once per run.  Profiles arrive either inline
  (``scores``) or through read-only shared-memory segments the master
  publishes once for the whole fleet (``shm_scores``); the worker handles
  both unconditionally, the master picks the transport.

Workers are *pure compute*: they evaluate the matcher's vectorized
:meth:`~repro.matching.matcher.Matcher._batch_scores` kernel over cached
profiles and return ``(similarities, costs)`` lists.  All accounting — the
virtual clock, matcher statistics, metrics, the
:class:`~repro.execution.store.ComparisonStore` — stays with the master,
which is what keeps a sharded run bit-identical to the serial path.

For chaos testing, a worker can carry a
:class:`~repro.resilience.faults.WorkerFaultSpec`: a seeded schedule under
which scoring requests SIGKILL the process mid-round, stall past the
master's reply deadline, or return truncated payloads.  The master's
supervision layer (:mod:`repro.parallel.pool`) must absorb all three
without changing results.

The module is deliberately import-light and free of module-level state so
it is safe under the ``spawn`` start method (each worker re-imports it in a
fresh interpreter).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.matching.matcher import Matcher

__all__ = ["worker_main", "rebuild_matcher"]


def rebuild_matcher(matcher_cls: type, state: dict) -> "Matcher":
    """Reconstruct a matcher replica from a pool template.

    Bypasses ``__init__`` (the template already carries validated state) and
    leaves the replica unbound from any metrics registry: workers never
    account, they only score.  Derived caches are not shipped; they are
    rebuilt empty here and refill deterministically during scoring.
    """
    matcher = matcher_cls.__new__(matcher_cls)
    matcher.__dict__.update(state)
    matcher._metrics = None
    matcher._init_derived_state()
    return matcher


def _read_segment(name: str, size: int) -> bytes:
    """Attach a read-only shm segment, copy out ``size`` payload bytes.

    On Python < 3.13 merely *attaching* registers the segment with the
    resource tracker — which the master also did on create, so the
    worker-side registration would cause spurious double-unregister noise
    and unlink races (the master owns the unlink).  ``track=False``
    (3.13+) skips the registration; on older versions the register call is
    suppressed for the duration of the attach.
    """
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shm(resource_name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original_register(resource_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    try:
        return bytes(segment.buf[:size])
    finally:
        segment.close()


def worker_main(connection: "Connection") -> None:
    """The worker loop: receive tasks over ``connection`` until stopped.

    Message protocol (tuples; first element is the kind):

    ``("matcher", cls, state)``
        Install the matcher replica.  Also clears the profile cache — a new
        template implies a new session.
    ``("faults", spec, slot, incarnation)``
        Install a :class:`~repro.resilience.faults.WorkerFaultSpec`: every
        subsequent scoring request first consults the seeded fault schedule
        and may SIGKILL the process, stall ``spec.hang_s`` wall seconds, or
        truncate the reply payload.
    ``("reset",)``
        Clear the profile cache (sent at the start of every run, so stale
        pid-to-profile bindings can never leak across datasets).
    ``("ping",)``
        Reply ``("ok", "pong")`` — the pool's startup handshake proving the
        worker survived spawn and can round-trip messages.
    ``("scores", profiles, pid_pairs)``
        Cache the (previously unseen) ``profiles``, score ``pid_pairs``
        through the matcher's ``_batch_scores`` kernel, and reply with
        ``("ok", (similarities, costs, kernel_counts))`` or
        ``("error", repr)``.  The kernel counts are this chunk's staged
        scoring outcomes; the master merges them so sharded rounds report
        the same ``matcher.kernel.*`` telemetry as serial ones.
    ``("shm_scores", segments, pid_pairs)``
        Like ``scores``, but the fresh profiles arrive as ``(name, size)``
        shared-memory segments (each holding a pickled profile list) to
        attach, read and cache.  Reply format is identical.
    ``("shm_probe", name, size)``
        Attach the probe segment and verify its payload; reply
        ``("ok", "shm")`` or ``("error", repr)`` — the startup test that
        decides whether the master may use the shm transport at all.
    ``("stop",)``
        Exit the loop.
    """
    matcher: "Matcher | None" = None
    profiles: dict = {}
    fault_spec = None
    fault_rng = None
    fault_slot = 0
    fault_incarnation = 0
    request_ordinal = 0

    def score(pid_pairs) -> tuple:
        pairs = [(profiles[pid_x], profiles[pid_y]) for pid_x, pid_y in pid_pairs]
        counts = matcher.kernel_counts
        for key in counts:
            counts[key] = 0
        similarities, costs = matcher._batch_scores(pairs)
        return similarities, costs, dict(counts)

    def fault_action() -> str | None:
        """One seeded draw per scoring request (see WorkerFaultSpec)."""
        nonlocal request_ordinal
        request_ordinal += 1
        if fault_spec is None:
            return None
        return fault_spec.action(
            fault_slot, fault_incarnation, request_ordinal, fault_rng
        )

    def perturbed(reply: tuple, action: str | None) -> tuple:
        """Apply a non-lethal fault to an outgoing scoring reply."""
        if action == "hang":
            # Stall past the master's reply deadline; the (healthy) reply
            # below then lands on a pipe the master has already closed.
            time.sleep(fault_spec.hang_s)
            return reply
        if action == "corrupt" and reply[0] == "ok":
            similarities, costs, counts = reply[1]
            return ("ok", (similarities[: len(similarities) // 2], costs, counts))
        return reply

    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "scores":
            action = fault_action()
            if action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            for profile in message[1]:
                profiles[profile.pid] = profile
            try:
                reply = ("ok", score(message[2]))
            except Exception as error:  # propagate, let the master degrade
                reply = ("error", repr(error))
            try:
                connection.send(perturbed(reply, action))
            except (BrokenPipeError, OSError):
                break
        elif kind == "shm_scores":
            action = fault_action()
            if action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            try:
                for name, size in message[1]:
                    for profile in pickle.loads(_read_segment(name, size)):
                        profiles[profile.pid] = profile
                reply = ("ok", score(message[2]))
            except Exception as error:  # propagate, let the master degrade
                reply = ("error", repr(error))
            try:
                connection.send(perturbed(reply, action))
            except (BrokenPipeError, OSError):
                break
        elif kind == "shm_probe":
            try:
                payload = _read_segment(message[1], message[2])
                if payload == b"repro-shm-probe":
                    reply = ("ok", "shm")
                else:  # pragma: no cover - torn write
                    reply = ("error", "shm probe payload mismatch")
            except Exception as error:
                reply = ("error", repr(error))
            try:
                connection.send(reply)
            except (BrokenPipeError, OSError):
                break
        elif kind == "matcher":
            matcher = rebuild_matcher(message[1], message[2])
            profiles.clear()
        elif kind == "faults":
            fault_spec, fault_slot, fault_incarnation = message[1], message[2], message[3]
            fault_rng = fault_spec.rng_for(fault_slot, fault_incarnation)
            request_ordinal = 0
        elif kind == "reset":
            profiles.clear()
        elif kind == "ping":
            try:
                connection.send(("ok", "pong"))
            except (BrokenPipeError, OSError):
                break
        elif kind == "stop":
            break
    connection.close()
