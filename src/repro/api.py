"""The unified session API: one typed builder for every way to run ER.

Before this module, running a resolution meant composing five surfaces by
hand — ``load_dataset`` + ``split_into_increments`` + ``make_stream_plan``
+ ``make_system``/``make_matcher`` + picking an engine class — and each
driver (``resolve_stream``, the CLI, the three benchmark drivers,
``run_experiment``) repeated the dance with its own defaults and its own
bugs.  :class:`ERSession` is that composition, written once:

    from repro.api import ERSession

    with ERSession("dblp_acm", systems=("I-PES", "I-BASE"), matcher="ED",
                   n_increments=50, rate=5.0, budget=60.0, workers=4) as session:
        results = session.compare()

Engine behavior knobs (the CLI's escape hatches, previously unreachable
from Python) travel in one :class:`EngineOptions` value; ``workers``
switches on the process-parallel layer (:mod:`repro.parallel`): Tier A
shards matcher scoring inside each run, Tier B fans independent
``compare`` cells across processes.  Either way results are bit-identical
to ``workers=1`` — parallelism here is an executor choice, never a
semantics choice.

Semantics note: batch baselines (PPS/PBS/BATCH/…-PSN) in the static
setting (``rate=None``) always receive the whole dataset as a single
increment, exactly how the paper runs them.  ``run_experiment`` always did
this; the session API extends it to every entry point (``resolve_stream``,
the CLI), which previously streamed ``n_increments`` pieces at batch
systems in static runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.blocking.substrate import BlockingConfig
from repro.core.dataset import Dataset, GroundTruth
from repro.core.increments import (
    Increment,
    StreamPlan,
    make_stream_plan,
    split_into_increments,
)
from repro.core.profile import EntityProfile
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import (
    BATCH_SYSTEMS,
    ExperimentConfig,
    _build_matcher,
    _build_system,
)
from repro.matching.matcher import Matcher
from repro.matching.similarity import ED_KERNELS
from repro.resilience.checkpoint import EngineCheckpoint
from repro.resilience.faults import (
    FaultReport,
    FaultSpec,
    FaultyMatcher,
    WorkerFaultSpec,
    apply_faults,
)
from repro.resilience.retry import ResilienceConfig
from repro.streaming.engine import RunResult, StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

__all__ = ["EngineOptions", "ERSession", "PushSession", "run_cell"]


@dataclass(frozen=True, slots=True)
class EngineOptions:
    """How the engine executes — and, for one knob group, what it computes.

    The execution fields preserve bit-identical results; they are the CLI
    escape hatches (``--pipelined``, ``--scalar-matching``,
    ``--per-pair-weighting``, ``--workers``, ``--ed-kernel``, the
    supervision timeouts) as one first-class, picklable value that
    :class:`ExperimentConfig` can carry.

    The **blocking substrate** group (``blocking`` / ``lsh_bands`` /
    ``lsh_rows`` / ``lsh_seed``; the CLI's ``--blocking`` / ``--lsh-*``) is
    the deliberate exception: choosing ``lsh`` or ``lsh-prefilter``
    changes which candidate comparisons are generated — it trades recall
    for candidate volume, which is the point.  The default ``token``
    substrate is bit-identical to every run that predates the knob.
    """

    pipelined: bool = False
    scalar_matching: bool = False
    per_pair_weighting: bool = False
    workers: int = 1
    #: Edit-distance kernel for the ED matcher (see
    #: :data:`repro.matching.similarity.ED_KERNELS`).  All kernels produce
    #: identical distances; this is a wall-clock/debugging escape hatch.
    ed_kernel: str = "auto"
    #: Fleet-supervision knobs (``workers > 1`` only; wall-clock behavior,
    #: never results).  ``None`` resolves from the environment
    #: (``REPRO_REPLY_TIMEOUT_S`` / ``REPRO_HANDSHAKE_TIMEOUT_S``) or the
    #: built-in defaults — see :mod:`repro.parallel.supervision`.
    reply_timeout_s: float | None = None
    handshake_timeout_s: float | None = None
    max_respawns: int | None = None
    #: Smallest emission batch worth sharding across the fleet (``None``:
    #: the pool default).  A sharding *threshold* only — results are
    #: bit-identical either way; chaos tests/benchmarks drop it to 1 so
    #: even tiny rounds exercise the workers.
    min_shard: int | None = None
    #: Blocking substrate: ``"token"`` (the paper's configuration, default),
    #: ``"lsh"`` (MinHash-LSH buckets as blocks) or ``"lsh-prefilter"``
    #: (token blocks + LSH co-bucket candidate pruning).  See
    #: :mod:`repro.blocking.substrate`.
    blocking: str = "token"
    #: MinHash-LSH shape: ``lsh_bands`` × ``lsh_rows`` permutations; the
    #: candidate threshold is ≈ ``(1/bands) ** (1/rows)``.  Ignored on the
    #: token substrate.
    lsh_bands: int = 16
    lsh_rows: int = 2
    #: Seed of the MinHash permutation family (deterministic across hosts
    #: and hash seeds for any fixed value).
    lsh_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.min_shard is not None and self.min_shard < 1:
            raise ValueError(f"min_shard must be >= 1, got {self.min_shard}")
        if self.ed_kernel not in ED_KERNELS:
            raise ValueError(
                f"ed_kernel must be one of {ED_KERNELS}, got {self.ed_kernel!r}"
            )
        if self.handshake_timeout_s is not None and self.handshake_timeout_s <= 0:
            raise ValueError("handshake_timeout_s must be positive (or None)")
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0 (or None)")
        # Delegates substrate/band/row validation (raises on bad values).
        self.blocking_config()

    def blocking_config(self) -> BlockingConfig:
        """These options as a blocking-substrate configuration."""
        return BlockingConfig(
            substrate=self.blocking,
            lsh_bands=self.lsh_bands,
            lsh_rows=self.lsh_rows,
            lsh_seed=self.lsh_seed,
        )

    def supervision(self) -> "SupervisionConfig":
        """These options as a pool-side supervision configuration."""
        from repro.parallel.supervision import SupervisionConfig

        return SupervisionConfig(
            handshake_timeout_s=self.handshake_timeout_s,
            reply_timeout_s=self.reply_timeout_s,
            max_respawns=self.max_respawns,
        )


class ERSession:
    """One resolution session: dataset × stream shape × systems × engine.

    The constructor only records configuration; datasets load and pools
    spawn lazily on first use.  A session owns at most one Tier A
    :class:`~repro.parallel.pool.WorkerPool`, shared across every run it
    executes — use the session as a context manager (or call
    :meth:`close`) to shut the fleet down deterministically.

    Parameters
    ----------
    dataset:
        A registry name (loaded at ``scale``) or an in-memory
        :class:`~repro.core.dataset.Dataset`.
    systems:
        System name(s) by paper name; a single string is accepted.
    matcher:
        ``"JS"`` or ``"ED"``.
    engine:
        An :class:`EngineOptions`; ``None`` means all defaults.
    workers:
        Shorthand overriding ``engine.workers``.
    faults:
        ``None`` (default), a seed for :meth:`FaultSpec.chaos`, or a full
        :class:`FaultSpec`.  Perturbs the stream plan and wraps the matcher
        with :class:`FaultyMatcher`; fault reports accumulate on
        :attr:`fault_reports`.
    worker_faults:
        ``None`` (default), a seed for :meth:`WorkerFaultSpec.chaos`, or a
        full :class:`WorkerFaultSpec`.  Injects seeded *process-level*
        faults (SIGKILL, hangs, corrupt replies) into the session's worker
        fleet; the supervision layer absorbs them, so results stay
        bit-identical to a fault-free run.  Only meaningful with
        ``workers > 1``.
    checkpoint_every / resilience:
        Checkpoint cadence override and the full resilience knob set,
        passed through to the engine.
    pool:
        An externally owned :class:`~repro.parallel.pool.WorkerPool` to
        score through instead of spawning a session-private fleet.  The
        session *borrows* the pool — :meth:`close` never shuts it down —
        which is how the service multiplexes many tenant sessions onto one
        fleet.  The pool's matcher template must match this session's
        matcher configuration; interleaved runs re-claim the fleet's
        profile caches per run (see ``WorkerPool.begin_run``).
    """

    def __init__(
        self,
        dataset: str | Dataset,
        *,
        systems: str | Sequence[str] = ("I-PES",),
        matcher: str = "JS",
        engine: EngineOptions | None = None,
        scale: float = 1.0,
        n_increments: int = 100,
        rate: float | None = None,
        budget: float = 300.0,
        seed: int = 0,
        workers: int | None = None,
        faults: int | FaultSpec | None = None,
        worker_faults: "int | WorkerFaultSpec | None" = None,
        checkpoint_every: float | None = None,
        resilience: ResilienceConfig | None = None,
        pool: "object | None" = None,
    ) -> None:
        self._dataset_arg = dataset
        self.systems: tuple[str, ...] = (
            (systems,) if isinstance(systems, str) else tuple(systems)
        )
        if not self.systems:
            raise ValueError("systems must name at least one system")
        self.matcher_name = matcher
        engine = engine or EngineOptions()
        if workers is not None:
            engine = replace(engine, workers=workers)
        self.engine_options = engine
        self.scale = scale
        self.n_increments = n_increments
        self.rate = rate
        self.budget = budget
        self.seed = seed
        if faults is None or isinstance(faults, FaultSpec):
            self.fault_spec: FaultSpec | None = faults
        else:
            self.fault_spec = FaultSpec.chaos(int(faults))
        if worker_faults is None or isinstance(worker_faults, WorkerFaultSpec):
            self.worker_fault_spec: WorkerFaultSpec | None = worker_faults
        else:
            self.worker_fault_spec = WorkerFaultSpec.chaos(int(worker_faults))
        self.checkpoint_every = checkpoint_every
        self.resilience = resilience
        #: One :class:`FaultReport` per distinct stream plan the session
        #: built under a fault spec (at most two: streaming + batch-static).
        self.fault_reports: list[FaultReport] = []
        #: The engine's latest checkpoint after each :meth:`run`.
        self.last_checkpoint: EngineCheckpoint | None = None
        self._dataset: Dataset | None = dataset if isinstance(dataset, Dataset) else None
        self._plans: dict[bool, StreamPlan] = {}
        self._pool = None
        self._pool_attempted = False
        self._external_pool = pool
        self._push: PushSession | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lazy building blocks
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        if self._dataset is None:
            self._dataset = load_dataset(self._dataset_arg, scale=self.scale)
        return self._dataset

    @property
    def ground_truth(self) -> GroundTruth:
        return self.dataset.ground_truth

    def plan_for(self, system_name: str) -> StreamPlan:
        """The (cached) stream plan this system runs against.

        Batch baselines in the static setting get the whole dataset as one
        increment; everything else gets the ``n_increments`` split.  Plans
        are built once per session — shared, not re-split, across systems
        (``run_experiment`` used to recompute the single-increment split
        for every batch system in the loop).
        """
        single = system_name.upper() in BATCH_SYSTEMS and self.rate is None
        plan = self._plans.get(single)
        if plan is None:
            increments = split_into_increments(
                self.dataset, 1 if single else self.n_increments, seed=self.seed
            )
            plan = make_stream_plan(increments, rate=self.rate)
            if self.fault_spec is not None:
                report = apply_faults(plan, self.fault_spec)
                self.fault_reports.append(report)
                plan = report.plan
            self._plans[single] = plan
        return plan

    def build_matcher(self) -> Matcher:
        """A fresh matcher for one run (fault-wrapped when configured).

        Fresh per run so a fault schedule always starts from its seed —
        every system of a comparison sees the same perturbation sequence.
        """
        matcher = _build_matcher(
            self.matcher_name, ed_kernel=self.engine_options.ed_kernel
        )
        if self.fault_spec is not None:
            matcher = FaultyMatcher(matcher, seed=self.fault_spec.seed)
        return matcher

    def build_system(self, system_name: str):
        return _build_system(
            system_name,
            self.dataset,
            per_pair_weighting=self.engine_options.per_pair_weighting,
            blocking=self.engine_options.blocking_config(),
        )

    def build_engine(self, matcher: Matcher) -> StreamingEngine:
        options = self.engine_options
        engine_cls = PipelinedStreamingEngine if options.pipelined else StreamingEngine
        return engine_cls(
            matcher,
            budget=self.budget,
            resilience=self.resilience,
            checkpoint_every=self.checkpoint_every,
            batch_matching=not options.scalar_matching,
            workers=options.workers,
            pool=self._shared_pool(matcher),
            supervision=options.supervision(),
            worker_faults=self.worker_fault_spec,
            min_shard=options.min_shard,
        )

    def _shared_pool(self, matcher: Matcher):
        """The session-owned Tier A pool (spawned once, reused per run)."""
        options = self.engine_options
        if (
            options.workers <= 1
            or options.scalar_matching
            or not matcher.supports_batch
        ):
            return None
        if self._external_pool is not None:
            pool = self._external_pool
            return pool if pool.healthy else None
        if self._pool is None and not self._pool_attempted:
            self._pool_attempted = True
            from repro.parallel.pool import DEFAULT_MIN_SHARD, WorkerPool

            self._pool = WorkerPool.create(
                options.workers,
                matcher,
                min_shard=(
                    options.min_shard
                    if options.min_shard is not None
                    else DEFAULT_MIN_SHARD
                ),
                supervision=options.supervision(),
                worker_faults=self.worker_fault_spec,
            )
        pool = self._pool
        return pool if pool is not None and pool.healthy else None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        system: str | None = None,
        *,
        resume_from: EngineCheckpoint | None = None,
    ) -> RunResult:
        """Run one system (the first configured one by default).

        A thin wrapper over the push-mode surface: the session's whole
        stream plan is fed up front and drained once to the budget, which
        is bit-identical to the historical single-shot semantics (the
        engine-parity suite pins this down).
        """
        self._require_open("run")
        name = system if system is not None else self.systems[0]
        push = self.push(name, resume_from=resume_from)
        push.feed_plan(self.plan_for(name))
        push.drain(self.budget)
        return push.results()

    # ------------------------------------------------------------------
    # Push mode
    # ------------------------------------------------------------------
    def push(
        self,
        system: str | None = None,
        *,
        resume_from: EngineCheckpoint | None = None,
        adopt_checkpoint_budget: bool = False,
    ) -> "PushSession":
        """Open a push-mode run: feed increments as they arrive.

        Returns a :class:`PushSession` whose ``ingest``/``drain``/
        ``results`` methods drive one engine run incrementally (see
        :mod:`repro.execution.push` for the exact semantics).  Each call
        opens an independent run; the session-level :meth:`ingest` /
        :meth:`drain` / :meth:`results` conveniences manage a single
        default one.
        """
        self._require_open("push")
        name = system if system is not None else self.systems[0]
        return PushSession(
            self,
            name,
            resume_from=resume_from,
            adopt_checkpoint_budget=adopt_checkpoint_budget,
        )

    def ingest(
        self, profiles: Sequence[EntityProfile], at: float | None = None
    ) -> float:
        """Feed one profile increment into the session's default push run.

        Opens the run on first use (and re-opens after :meth:`results`
        finalized the previous one).  Returns the virtual arrival time
        recorded for the increment.
        """
        self._require_open("ingest")
        if self._push is None or self._push.finished:
            self._push = self.push()
        return self._push.ingest(profiles, at=at)

    def drain(self, until: float) -> float:
        """Advance the default push run's virtual clock to ``until``.

        ``until`` is an absolute virtual-time horizon — the push-mode
        generalization of the classic budget deadline — and must be
        non-decreasing across drains.  Returns the clock after draining.
        """
        self._require_open("drain")
        if self._push is None or self._push.finished:
            self._push = self.push()
        return self._push.drain(until)

    def results(self) -> RunResult:
        """Finalize the default push run and return its :class:`RunResult`."""
        self._require_open("results")
        if self._push is None:
            raise RuntimeError(
                "no push run in progress: call ingest() or drain() first"
            )
        return self._push.results()

    def compare(self, *, parallel_cells: bool | None = None) -> dict[str, RunResult]:
        """Run every configured system; results keyed in configuration order.

        With ``workers > 1`` the independent cells fan out across processes
        (Tier B) when nothing forces them in-process: fault injection and
        checkpoint capture need the session's own state, so those
        comparisons run serially (each run still sharding through Tier A).
        ``parallel_cells=False`` is the explicit escape hatch.
        """
        self._require_open("compare")
        workers = self.engine_options.workers
        fan_out = workers > 1 and len(self.systems) > 1
        if parallel_cells is not None:
            fan_out = fan_out and parallel_cells
        fan_out = (
            fan_out
            and self.fault_spec is None
            and self.worker_fault_spec is None
            and self.checkpoint_every is None
            and self.resilience is None
        )
        if fan_out:
            from repro.parallel.cells import run_cells

            results = run_cells(self.to_config(), self.systems, workers=workers)
            return dict(zip(self.systems, results))
        return {name: self.run(name) for name in self.systems}

    # ------------------------------------------------------------------
    # Interop with the ExperimentConfig surface
    # ------------------------------------------------------------------
    def to_config(self) -> ExperimentConfig:
        """This session as a picklable :class:`ExperimentConfig` cell spec."""
        if isinstance(self._dataset_arg, str):
            dataset_name, dataset = self._dataset_arg, None
        else:
            dataset_name, dataset = self._dataset_arg.name, self._dataset_arg
        return ExperimentConfig(
            dataset_name=dataset_name,
            systems=self.systems,
            matcher=self.matcher_name,
            scale=self.scale,
            n_increments=self.n_increments,
            rate=self.rate,
            budget=self.budget,
            seed=self.seed,
            dataset=dataset,
            engine=self.engine_options,
        )

    @classmethod
    def from_config(
        cls, config: ExperimentConfig, systems: Sequence[str] | None = None
    ) -> "ERSession":
        return cls(
            config.dataset if config.dataset is not None else config.dataset_name,
            systems=tuple(systems) if systems is not None else config.systems,
            matcher=config.matcher,
            engine=config.engine,
            scale=config.scale,
            n_increments=config.n_increments,
            rate=config.rate,
            budget=config.budget,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has shut this session down."""
        return self._closed

    def _require_open(self, action: str) -> None:
        if self._closed:
            raise RuntimeError(
                f"cannot {action}: this ERSession is closed (close() was "
                "called); build a new session to run again"
            )

    def close(self) -> None:
        """Shut down the session's worker pool, if one was ever started.

        Idempotent: closing twice is a no-op.  Any other call on a closed
        session raises :class:`RuntimeError` at the facade — previously a
        use-after-close failed obscurely deep inside the pool.  A borrowed
        external pool (the ``pool=`` constructor argument) is *not* closed;
        its owner decides its lifetime.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._pool_attempted = False
        self._push = None
        self._closed = True

    def __enter__(self) -> "ERSession":
        self._require_open("enter")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PushSession:
    """One push-mode engine run opened by :meth:`ERSession.push`.

    A thin facade over :class:`repro.execution.push.PushRun` that adds the
    session's builders (matcher, system, engine, shared pool) and profile-
    level ingestion: :meth:`ingest` wraps raw profiles into the next
    :class:`~repro.core.increments.Increment` so callers never hand-number
    increments.  :meth:`feed` remains available for replaying prepared
    increments (checkpoint restore, plan adapters) with their original
    indices.

    The run is lazy like the engine's own: state materializes at the first
    drain, which is what lets a restore see every increment fed before it.
    """

    def __init__(
        self,
        session: ERSession,
        system_name: str,
        *,
        resume_from: EngineCheckpoint | None = None,
        adopt_checkpoint_budget: bool = False,
    ) -> None:
        self._session = session
        self.system_name = system_name
        matcher = session.build_matcher()
        self._engine = session.build_engine(matcher)
        self._run = self._engine.open_push(
            session.build_system(system_name),
            session.ground_truth,
            resume_from=resume_from,
            adopt_checkpoint_budget=adopt_checkpoint_budget,
        )
        self._next_index = 0

    # -- feeding -------------------------------------------------------
    def ingest(
        self, profiles: Sequence[EntityProfile], at: float | None = None
    ) -> float:
        """Feed one increment of profiles arriving at virtual time ``at``.

        ``at`` defaults to "now" (the later of the run's clock and the last
        arrival); explicit times must be non-decreasing.  Returns the
        arrival time recorded.
        """
        increment = Increment(index=self._next_index, profiles=tuple(profiles))
        return self.feed(increment, at=at)

    def feed(self, increment: Increment, at: float | None = None) -> float:
        """Feed one prepared :class:`Increment` (keeps its index)."""
        recorded = self._run.feed(increment, at=at)
        self._next_index = max(self._next_index, increment.index + 1)
        return recorded

    def feed_plan(self, plan: StreamPlan) -> None:
        """Feed every increment of a prepared stream plan."""
        for at, increment in plan:
            self.feed(increment, at=at)

    # -- driving -------------------------------------------------------
    def start(self) -> None:
        """Materialize the run state now (applying any pending restore)."""
        self._run.start()

    def drain(self, until: float) -> float:
        """Advance the run to the absolute virtual horizon ``until``."""
        clock = self._run.drain(until)
        self._session.last_checkpoint = self._engine.last_checkpoint
        return clock

    def checkpoint(self) -> EngineCheckpoint:
        """Take a consistent cut of the run (between drains)."""
        return self._run.checkpoint()

    def results(self) -> RunResult:
        """Finalize the run; repeated calls return the same result."""
        result = self._run.results()
        self._session.last_checkpoint = self._engine.last_checkpoint
        return result

    # -- introspection -------------------------------------------------
    @property
    def started(self) -> bool:
        return self._run.started

    @property
    def finished(self) -> bool:
        return self._run.finished

    @property
    def horizon(self) -> float | None:
        return self._run.horizon

    @property
    def clock(self) -> float:
        return self._run.clock

    @property
    def matches(self) -> frozenset[tuple[int, int]]:
        return self._run.matches

    @property
    def comparisons_executed(self) -> int:
        return self._run.comparisons_executed

    @property
    def increments_fed(self) -> int:
        return self._run.increments_fed

    @property
    def backlog(self) -> int:
        return self._run.backlog

    @property
    def work_exhausted(self) -> bool:
        return self._run.work_exhausted


def run_cell(config: ExperimentConfig, system_name: str) -> RunResult:
    """Execute one comparison cell — the unit Tier B fans out.

    Both the serial comparison loop and the process-pool children resolve a
    cell through this one function, which is what makes parallel collation
    result-identical to serial execution by construction.
    """
    with ERSession.from_config(config, systems=(system_name,)) as session:
        return session.run(system_name)
