"""Setup shim.

The offline environment lacks the ``wheel`` package needed by PEP 660
editable installs; this shim lets ``pip install -e . --no-use-pep517`` (and
plain ``pip install -e .`` on fuller environments) work everywhere.
"""

from setuptools import setup

setup()
