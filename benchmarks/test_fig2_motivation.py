"""Figure 2: the motivating experiment on the movies dataset.

Two progressive baselines naively adapted to streams (PPS-GLOBAL,
PPS-LOCAL), the incremental baseline (I-BASE), and a PIER algorithm (I-PES)
over four stream shapes: slow vs fast rates x short vs long streams.

Expected shapes (paper, Figure 2):
* PPS-LOCAL barely finds anything (no inter-increment comparisons);
* PPS-GLOBAL is fine on slow streams but collapses on fast/long streams
  (per-increment reassessment of the full prioritization);
* I-BASE eventually finds the most matches on slow streams but is not
  progressive, and falls behind on fast streams;
* I-PES tracks the best of both everywhere.
"""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import make_matcher, make_system
from repro.evaluation.reporting import pc_over_time_table, summary_table
from repro.streaming.engine import StreamingEngine

from benchmarks.helpers import report, run_once

SYSTEMS = ("PPS-GLOBAL", "PPS-LOCAL", "I-BASE", "I-PES")
SCALE = 0.35

# (n_increments, rate, budget) — slow/fast x short/long
CONFIGS = {
    "slow_short": (100, 0.5, 300.0),
    "slow_long": (1200, 4.0, 500.0),
    "fast_short": (100, 16.0, 60.0),
    "fast_long": (1200, 16.0, 120.0),
}


def _run_cell(label: str):
    n_increments, rate, budget = CONFIGS[label]
    dataset = load_dataset("movies", scale=SCALE)
    increments = split_into_increments(dataset, n_increments, seed=0)
    plan = make_stream_plan(increments, rate=rate)
    results = {}
    for system_name in SYSTEMS:
        engine = StreamingEngine(make_matcher("JS"), budget=budget)
        results[system_name] = engine.run(
            make_system(system_name, dataset), plan, dataset.ground_truth
        )
    return results


@pytest.mark.parametrize("label", list(CONFIGS))
def test_fig2_cell(benchmark, label):
    results = run_once(benchmark, lambda: _run_cell(label))
    budget = CONFIGS[label][2]
    times = [budget * f for f in (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)]
    text = pc_over_time_table(results, times) + "\n\n" + summary_table(results)
    report(f"fig2_{label}", text)

    # PPS-LOCAL never gets anywhere
    assert results["PPS-LOCAL"].final_pc < 0.15
    # I-PES is never dominated in early quality
    pes_auc = results["I-PES"].curve.area_under_curve(budget)
    for other in ("PPS-GLOBAL", "PPS-LOCAL", "I-BASE"):
        assert pes_auc >= results[other].curve.area_under_curve(budget) - 0.02


def test_fig2_global_collapses_on_fast_long_streams(benchmark):
    def run_pair():
        return _run_cell("slow_short"), _run_cell("fast_long")

    slow, fast = run_once(benchmark, run_pair)
    # PPS-GLOBAL works on slow/short but degrades on fast/long
    assert slow["PPS-GLOBAL"].final_pc > 0.5
    assert fast["PPS-GLOBAL"].final_pc < slow["PPS-GLOBAL"].final_pc - 0.2
