"""Figure 7: the incremental setting with a fast stream (32 ΔD/s).

census_2m and dbpedia x {JS, ED}, all six algorithms.  Expected shapes
(paper, Figure 7):

* the naive PPS/PBS adaptations stay near PC 0 within the budget;
* with JS, I-BASE reaches a comparable eventual PC but lags the PIER
  algorithms in early quality;
* with ED, I-BASE cannot consume the stream within the budget (missing ×),
  while the adaptive PIER algorithms do;
* I-PES is the best all-rounder; I-PBS wins on the relational census data
  where the smallest blocks are highly informative.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import pc_over_time_table, summary_table

from benchmarks.helpers import report, run_once

SYSTEMS = ("PPS-GLOBAL", "PBS-GLOBAL", "I-BASE", "I-PCS", "I-PBS", "I-PES")
RATE = 32.0

SETUPS = {
    # dataset → (scale, n_increments, JS budget, ED budget)
    "census_2m": (0.5, 400, 30.0, 90.0),
    "dbpedia": (0.4, 400, 30.0, 150.0),
}


def _run(dataset_name: str, matcher: str):
    scale, n_increments, js_budget, ed_budget = SETUPS[dataset_name]
    budget = js_budget if matcher == "JS" else ed_budget
    config = ExperimentConfig(
        dataset_name=dataset_name,
        systems=SYSTEMS,
        matcher=matcher,
        scale=scale,
        n_increments=n_increments,
        rate=RATE,
        budget=budget,
    )
    return budget, run_experiment(config)


@pytest.mark.parametrize("dataset_name", list(SETUPS))
@pytest.mark.parametrize("matcher", ["JS", "ED"])
def test_fig7_cell(benchmark, dataset_name, matcher):
    budget, results = run_once(benchmark, lambda: _run(dataset_name, matcher))
    times = [budget * f for f in (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)]
    text = pc_over_time_table(results, times) + "\n\n" + summary_table(results)
    report(f"fig7_{dataset_name}_{matcher}", text)

    auc = lambda name: results[name].curve.area_under_curve(budget)

    # Naive adaptations of batch progressive ER fail on fast streams.
    assert results["PPS-GLOBAL"].final_pc < 0.5
    # PIER beats the incremental baseline in early quality...
    assert auc("I-PES") > auc("I-BASE")
    # ...and at least matches its eventual quality.
    assert results["I-PES"].final_pc >= results["I-BASE"].final_pc - 0.02

    if matcher == "ED":
        # The non-adaptive baseline consumes the stream later than PIER (or
        # not at all within budget).  The paper notes the effect is "much
        # more visible on D_dbpedia than D_2M" — census records are short,
        # so ED is not always its bottleneck; hence the tolerance.
        ibase_consumed = results["I-BASE"].stream_consumed_at
        pes_consumed = results["I-PES"].stream_consumed_at
        assert pes_consumed is not None
        tolerance = 1.0 if dataset_name == "census_2m" else 0.0
        assert ibase_consumed is None or ibase_consumed >= pes_consumed - tolerance

    if dataset_name == "census_2m" and matcher == "ED":
        # Relational census data rewards block-centric scheduling.
        assert auc("I-PBS") > auc("I-PCS")
