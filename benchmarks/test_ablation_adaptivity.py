"""Ablation: the adaptive ``findK`` budget vs fixed emission budgets.

Algorithm 1 chooses K dynamically from the measured input/service rates.
This ablation pins K to fixed values and compares early quality on a fast
stream with the expensive matcher — the regime where adaptivity matters
(too-large K delays ingestion, too-small K wastes idle capacity).
"""

from __future__ import annotations

from repro.core.increments import make_stream_plan, split_into_increments
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import make_matcher
from repro.evaluation.reporting import format_table
from repro.pier.base import PierSystem
from repro.pier.ipes import IPES
from repro.priority.rates import AdaptiveK
from repro.streaming.engine import StreamingEngine

from benchmarks.helpers import report, run_once

BUDGET = 90.0


def _controller(kind: str) -> AdaptiveK:
    if kind == "adaptive":
        return AdaptiveK()
    fixed = int(kind)
    return AdaptiveK(initial=fixed, minimum=fixed, maximum=fixed)


def _run_all():
    dataset = load_dataset("dbpedia", scale=0.3)
    increments = split_into_increments(dataset, 300, seed=0)
    plan = make_stream_plan(increments, rate=32.0)
    rows = []
    aucs = {}
    for kind in ("adaptive", "4", "64", "1024", "16384"):
        system = PierSystem(IPES(), clean_clean=True, adaptive_k=_controller(kind))
        engine = StreamingEngine(make_matcher("ED"), budget=BUDGET)
        result = engine.run(system, plan, dataset.ground_truth)
        auc = result.curve.area_under_curve(BUDGET)
        aucs[kind] = auc
        rows.append(
            [
                f"K={kind}",
                f"{auc:.3f}",
                f"{result.final_pc:.3f}",
                result.comparisons_executed,
                f"{result.stream_consumed_at:.1f}s"
                if result.stream_consumed_at is not None
                else "never",
            ]
        )
    table = format_table(
        ["budget policy", "early AUC", "final PC", "comparisons", "stream consumed"],
        rows,
    )
    return table, aucs


def test_ablation_adaptive_k(benchmark):
    table, aucs = run_once(benchmark, _run_all)
    report("ablation_adaptive_k", table)
    # The adaptive controller must be competitive with the best fixed K
    # (which is unknown a priori) ...
    best_fixed = max(value for kind, value in aucs.items() if kind != "adaptive")
    assert aucs["adaptive"] >= best_fixed - 0.1
    # ... and clearly beat at least one badly chosen fixed K.
    worst_fixed = min(value for kind, value in aucs.items() if kind != "adaptive")
    assert aucs["adaptive"] > worst_fixed
