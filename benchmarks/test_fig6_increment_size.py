"""Figure 6: influence of the increment size (dbpedia, ED matcher).

Many small increments vs few large ones, for I-PBS and I-PES, against their
batch counterparts PBS and PPS.  Expected shapes (paper, Figure 6):

* with fewer/larger increments, I-PBS's comparison order approaches PBS's
  (better PC per comparison);
* the price is a longer per-increment pre-analysis, visible in PC over
  time early on;
* I-PES changes far less with increment size.
"""

from __future__ import annotations

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import (
    pc_over_comparisons_table,
    pc_over_time_table,
)

from benchmarks.helpers import report, run_once

SCALE = 0.3
BUDGET = 150.0
MANY, FEW = 300, 15


def _run():
    results = {}
    for label, n_increments, systems in (
        ("many", MANY, ("I-PBS", "I-PES")),
        ("few", FEW, ("I-PBS", "I-PES")),
        ("batch", 1, ("PBS", "PPS")),
    ):
        config = ExperimentConfig(
            dataset_name="dbpedia",
            systems=systems,
            matcher="ED",
            scale=SCALE,
            n_increments=n_increments,
            rate=None,
            budget=BUDGET,
        )
        for name, result in run_experiment(config).items():
            results[f"{name}({n_increments})" if n_increments > 1 else name] = result
    return results


def test_fig6_increment_size(benchmark):
    results = run_once(benchmark, _run)
    times = [BUDGET * f for f in (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)]
    most = max(result.comparisons_executed for result in results.values())
    counts = [int(most * f) for f in (0.05, 0.1, 0.25, 0.5, 1.0)]
    text = (
        "PC over time:\n"
        + pc_over_time_table(results, times)
        + "\n\nPC over comparisons:\n"
        + pc_over_comparisons_table(results, counts)
    )
    report("fig6_increment_size", text)

    # Larger increments move I-PBS's comparison order towards PBS:
    # at a mid-range comparison count, few-large >= many-small.
    probe = max(int(most * 0.25), 1)
    few = results[f"I-PBS({FEW})"].curve.pc_at_comparisons(probe)
    many = results[f"I-PBS({MANY})"].curve.pc_at_comparisons(probe)
    assert few >= many - 0.05

    # I-PES is comparatively insensitive to increment size (eventual PC).
    pes_gap = abs(
        results[f"I-PES({FEW})"].final_pc - results[f"I-PES({MANY})"].final_pc
    )
    assert pes_gap < 0.15
