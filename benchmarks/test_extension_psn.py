"""Extension: the LS-PSN / GS-PSN progressive baselines (paper §2.4).

The paper's evaluation restricts itself to PPS and PBS, "the two best
methods for schema-agnostic progressive ER" of Simonini et al.  This
extension benchmark runs the other two methods of that work next to them
in the static progressive setting, confirming the original ranking
(PPS/PBS dominate the PSN variants on heterogeneous data).
"""

from __future__ import annotations

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import pc_over_comparisons_table, summary_table

from benchmarks.helpers import report, run_once

SYSTEMS = ("PPS", "PBS", "LS-PSN", "GS-PSN")
BUDGET = 60.0


def _run():
    config = ExperimentConfig(
        dataset_name="dblp_acm",
        systems=SYSTEMS,
        matcher="JS",
        scale=0.5,
        n_increments=1,
        rate=None,
        budget=BUDGET,
    )
    return run_experiment(config)


def test_extension_psn_baselines(benchmark):
    results = run_once(benchmark, _run)
    most = max(result.comparisons_executed for result in results.values())
    counts = [int(most * f) for f in (0.02, 0.05, 0.1, 0.25, 0.5, 1.0)]
    text = pc_over_comparisons_table(results, counts) + "\n\n" + summary_table(results)
    report("extension_psn", text)
    # All four progressive baselines produce useful early orders.
    for name in SYSTEMS:
        assert results[name].final_pc > 0.5, name
    # Meta-blocking-guided PPS outranks the sorted-neighborhood orders early.
    probe = max(int(most * 0.05), 1)
    pps_early = results["PPS"].curve.pc_at_comparisons(probe)
    assert pps_early >= results["LS-PSN"].curve.pc_at_comparisons(probe) - 0.05
