"""Service saturation benchmark: ``python -m benchmarks.service``.

Boots a real :class:`repro.service.ERServer` on a localhost socket and
drives it the way the ROADMAP's production service would be driven:

* **Saturation** — N concurrent tenants (default 8; CI runs ``--tenants 3``),
  each on its own connection and its own thread, sustain a fixed increment
  rate through the full push surface (``open``/``ingest``/``drain``/
  ``results``).  Wall-clock p50/p99 per-ingest latency and per-tenant
  ingest-to-first-match latency are recorded (reported, never gated — wall
  time is host-dependent).  What *is* asserted, per tenant: the service
  result fingerprint is **bit-identical** to replaying the tenant's
  accepted op log through a standalone in-process session.
* **Overload** — a second server with a deliberately tiny op queue takes a
  pipelined ingest burst at 2x the saturation volume.  The gate is the
  resilience contract: requests are *shed* (``error: "shed"``), the server
  never crashes, and the surviving accepted subset still replays
  bit-identically.

The baseline ``benchmarks/BENCH_service.json`` is schema-gated like
``BENCH_smoke.json``: counter names, per-tenant fields or section keys that
appear or disappear must be acknowledged with ``--update``.  Values are not
byte-gated (the file embeds wall latencies and timing-dependent shed
counts), so the baseline is only rewritten on ``--update``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import queue
import random
import sys
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.core.profile import EntityProfile
from repro.service import (
    ERServer,
    ServiceClient,
    TenantConfig,
    TenantSession,
    result_fingerprint,
)

BENCH_SCHEMA_VERSION = 1
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_service.json"

CONFIG = {
    "tenants": 8,
    # Tenants cycle through the three PIER strategies — genuinely
    # heterogeneous workloads multiplexed onto one server.
    "systems": ["I-PES", "I-PCS", "I-PBS"],
    "matcher": "JS",
    "entities_per_tenant": 30,
    "duplicate_rate": 0.5,
    "batch_size": 5,
    # One batch every 2 virtual seconds; budget leaves room to finish.
    "virtual_interval": 2.0,
    "budget": 60.0,
    "seed": 7,
    "overload": {
        "queue_limit": 2,
        # 2x the saturation ingest volume, pipelined against the tiny queue.
        "factor": 2,
    },
}

FIRST = ("ada", "grace", "alan", "edsger", "barbara", "donald", "tony", "john")
LAST = ("lovelace", "hopper", "turing", "dijkstra", "liskov", "knuth", "hoare")
CITY = ("london", "zurich", "pittsburgh", "austin", "cambridge", "eindhoven")


def tenant_workload(index: int) -> list[list[EntityProfile]]:
    """Deterministic dirty-ER batches for tenant ``index``.

    Each entity yields one profile; with probability ``duplicate_rate`` a
    near-duplicate (one attribute perturbed, so token Jaccard stays well
    above the JS threshold) rides along later in the stream.
    """
    rng = random.Random(CONFIG["seed"] * 1000 + index)
    profiles: list[EntityProfile] = []
    pid = 0
    for _ in range(CONFIG["entities_per_tenant"]):
        attributes = {
            "name": f"{rng.choice(FIRST)} {rng.choice(LAST)}",
            "city": rng.choice(CITY),
            "dept": f"dept{rng.randint(1, 4)}",
        }
        profiles.append(EntityProfile(pid, attributes))
        pid += 1
        if rng.random() < CONFIG["duplicate_rate"]:
            duplicate = dict(attributes)
            duplicate["dept"] = f"dept{rng.randint(5, 9)}"
            profiles.append(EntityProfile(pid, duplicate))
            pid += 1
    rng.shuffle(profiles)
    size = CONFIG["batch_size"]
    return [profiles[start : start + size] for start in range(0, len(profiles), size)]


# ----------------------------------------------------------------------
# An in-process server on a real localhost socket
# ----------------------------------------------------------------------
class ServerThread:
    """Run an :class:`ERServer` event loop in a daemon thread."""

    def __init__(self, **kwargs: object) -> None:
        self._kwargs = kwargs
        self._port_queue: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        ready = self._port_queue.get(timeout=30)
        if isinstance(ready, BaseException):
            raise ready
        self.port = ready
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._thread.join(timeout=60)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop (no clean shutdown)")

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # surface startup failures to the caller
            self._port_queue.put(exc)

    async def _serve(self) -> None:
        async with ERServer(**self._kwargs) as server:
            self._port_queue.put(server.port)
            await server.serve_until_stopped()


# ----------------------------------------------------------------------
# Phase 1: saturation
# ----------------------------------------------------------------------
def drive_tenant(
    port: int,
    index: int,
    barrier: threading.Barrier,
    out: dict,
    errors: list,
) -> None:
    tenant_id = f"t{index}"
    system = CONFIG["systems"][index % len(CONFIG["systems"])]
    batches = tenant_workload(index)
    try:
        with ServiceClient("127.0.0.1", port) as client:
            client.open(
                tenant_id,
                system=system,
                matcher=CONFIG["matcher"],
                budget=CONFIG["budget"],
            )
            # All tenants are open before any ingests: the stats probe in
            # the main thread observes them concurrently active.
            barrier.wait(timeout=30)
            barrier.wait(timeout=30)

            accepted: list[tuple[float, list[EntityProfile]]] = []
            latencies: list[float] = []
            first_send = first_match = None
            for i, batch in enumerate(batches):
                at = i * CONFIG["virtual_interval"]
                sent = time.perf_counter()
                if first_send is None:
                    first_send = sent
                reply = client.ingest(tenant_id, batch, at=at)
                now = time.perf_counter()
                latencies.append(now - sent)
                accepted.append((reply["at"], batch))
                if first_match is None and reply["matches"] > 0:
                    first_match = now - first_send
            client.drain(tenant_id, CONFIG["budget"])
            reply = client.results(tenant_id)
            client.close_tenant(tenant_id)

        # The determinism contract: replaying the accepted op log through a
        # standalone session must reproduce the service result bit-for-bit.
        replay = TenantSession(
            TenantConfig(
                tenant_id=tenant_id,
                system=system,
                matcher=CONFIG["matcher"],
                budget=CONFIG["budget"],
            )
        )
        for at, batch in accepted:
            replay.ingest(batch, at=at)
        replay.drain(CONFIG["budget"])
        standalone = result_fingerprint(replay.results())
        replay.close()

        out[index] = {
            "tenant": tenant_id,
            "system": system,
            "ingests": len(accepted),
            "profiles": sum(len(batch) for _, batch in accepted),
            "matches": len(reply["result"]["matches"]),
            "comparisons": reply["result"]["comparisons_executed"],
            "clock_end": reply["result"]["clock_end"],
            "fingerprint": reply["fingerprint"],
            "bit_identical": reply["fingerprint"] == standalone,
            "ingest_wall_s": latencies,
            "first_match_wall_s": first_match,
        }
    except Exception as exc:
        errors.append((tenant_id, exc))
        barrier.abort()


def run_saturation(n_tenants: int) -> dict:
    out: dict[int, dict] = {}
    errors: list = []
    with ServerThread(max_tenants=n_tenants) as server:
        barrier = threading.Barrier(n_tenants + 1)
        threads = [
            threading.Thread(
                target=drive_tenant, args=(server.port, i, barrier, out, errors)
            )
            for i in range(n_tenants)
        ]
        for thread in threads:
            thread.start()
        with ServiceClient("127.0.0.1", server.port) as probe:
            barrier.wait(timeout=30)  # every tenant is open
            stats = probe.stats()
            concurrent = len(stats["tenants"])
            barrier.wait(timeout=30)  # release the ingest storm
            for thread in threads:
                thread.join(timeout=300)
            counters = probe.stats()["metrics"]["counters"]
            probe.shutdown()
    if errors:
        tenant_id, exc = errors[0]
        raise RuntimeError(f"tenant {tenant_id} failed: {exc!r}") from exc
    return {
        "tenants": [out[i] for i in sorted(out)],
        "concurrent_tenants": concurrent,
        "all_bit_identical": all(entry["bit_identical"] for entry in out.values()),
        "service_counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("service.")
        },
    }


# ----------------------------------------------------------------------
# Phase 2: 2x overload against a tiny queue
# ----------------------------------------------------------------------
def run_overload() -> dict:
    tenant_id = "storm"
    batches = tenant_workload(0)
    sends = CONFIG["overload"]["factor"] * len(batches)
    with ServerThread(queue_limit=CONFIG["overload"]["queue_limit"]) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.open(
                tenant_id,
                system="I-PES",
                matcher=CONFIG["matcher"],
                budget=CONFIG["budget"],
            )
            # Pipelined burst: every request is written before any reply is
            # read, so the tenant queue fills while the first ingest is
            # still draining — a call-response loop would self-throttle and
            # never observe shedding.
            pending = []
            for i in range(sends):
                batch = batches[i % len(batches)]
                at = i * CONFIG["virtual_interval"] / CONFIG["overload"]["factor"]
                pending.append((client.send_ingest(tenant_id, batch, at=at), batch))
            accepted: list[tuple[float, list[EntityProfile]]] = []
            shed = 0
            for request_id, batch in pending:
                reply = client.wait(request_id, check=False)
                if reply.get("ok"):
                    accepted.append((reply["at"], batch))
                elif reply.get("error") == "shed":
                    shed += 1
                else:
                    raise RuntimeError(f"unexpected overload reply: {reply}")
            # The server survived: it still answers, drains, finalizes.
            survived = client.ping().get("ok", False)
            client.drain(tenant_id, CONFIG["budget"])
            reply = client.results(tenant_id)
            client.shutdown()

    replay = TenantSession(
        TenantConfig(
            tenant_id=tenant_id,
            system="I-PES",
            matcher=CONFIG["matcher"],
            budget=CONFIG["budget"],
        )
    )
    for at, batch in accepted:
        replay.ingest(batch, at=at)
    replay.drain(CONFIG["budget"])
    standalone = result_fingerprint(replay.results())
    replay.close()

    return {
        "sent": sends,
        "accepted": len(accepted),
        "shed": shed,
        "shed_occurred": shed > 0,
        "server_survived": survived,
        "fingerprint": reply["fingerprint"],
        "replay_bit_identical": reply["fingerprint"] == standalone,
    }


# ----------------------------------------------------------------------
# Assembly + schema gate (same mechanics as benchmarks.smoke)
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float | None:
    ordered = sorted(values)
    if not ordered:
        return None
    rank = max(0, min(len(ordered) - 1, math.ceil(q / 100 * len(ordered)) - 1))
    return ordered[rank]


def build_snapshot(n_tenants: int) -> dict:
    saturation = run_saturation(n_tenants)
    overload = run_overload()
    ingest_latencies = [
        value for entry in saturation["tenants"] for value in entry["ingest_wall_s"]
    ]
    latency = {
        "ingest_p50_s": percentile(ingest_latencies, 50),
        "ingest_p99_s": percentile(ingest_latencies, 99),
        "samples": len(ingest_latencies),
    }
    for entry in saturation["tenants"]:
        del entry["ingest_wall_s"]
    config = dict(CONFIG)
    config["tenants"] = n_tenants
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "config": config,
        "saturation": saturation,
        "overload": overload,
        "latency_wall_s": latency,
    }


def check_invariants(payload: dict, n_tenants: int) -> list[str]:
    """The hard gates — failures here are bugs, not schema drift."""
    problems: list[str] = []
    saturation = payload["saturation"]
    if saturation["concurrent_tenants"] < n_tenants:
        problems.append(
            f"only {saturation['concurrent_tenants']}/{n_tenants} tenants "
            "were concurrently active"
        )
    for entry in saturation["tenants"]:
        if not entry["bit_identical"]:
            problems.append(
                f"tenant {entry['tenant']}: service fingerprint diverged "
                "from the standalone replay"
            )
        if entry["matches"] == 0:
            problems.append(f"tenant {entry['tenant']}: produced no matches")
    overload = payload["overload"]
    if not overload["shed_occurred"]:
        problems.append("overload burst was never shed (queue never filled)")
    if not overload["server_survived"]:
        problems.append("server stopped answering under overload")
    if not overload["replay_bit_identical"]:
        problems.append("overload tenant: accepted-log replay diverged")
    if overload["accepted"] + overload["shed"] != overload["sent"]:
        problems.append("overload accounting: accepted + shed != sent")
    return problems


def schema_paths(obj: object, prefix: str = "") -> set[str]:
    """Flattened key paths describing the *structure* of a payload."""
    paths: set[str] = set()
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.add(path)
            paths |= schema_paths(value, path)
    elif isinstance(obj, list):
        for value in obj:
            paths |= schema_paths(value, f"{prefix}[]")
    return paths


def diff_schema(baseline: dict, current: dict) -> tuple[set[str], set[str]]:
    old = schema_paths(baseline)
    new = schema_paths(current)
    return old - new, new - old


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.service",
        description="multi-tenant service saturation run with bit-identity gates",
    )
    parser.add_argument(
        "--tenants", type=int, default=CONFIG["tenants"],
        help=f"concurrent tenants to sustain (default: {CONFIG['tenants']})",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_BASELINE,
        help="baseline path (default: benchmarks/BENCH_service.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="accept schema drift and rewrite the baseline",
    )
    args = parser.parse_args(argv)
    if args.tenants < 1:
        parser.error("--tenants must be >= 1")

    payload = build_snapshot(args.tenants)

    saturation = payload["saturation"]
    for entry in saturation["tenants"]:
        first = entry["first_match_wall_s"]
        print(
            f"{entry['tenant']} [{entry['system']}]: "
            f"{entry['ingests']} ingests, {entry['matches']} matches, "
            f"{entry['comparisons']} comparisons, "
            f"bit_identical={entry['bit_identical']}, "
            f"first_match={'n/a' if first is None else f'{first * 1000:.1f}ms'}"
        )
    latency = payload["latency_wall_s"]
    print(
        f"ingest latency over {latency['samples']} samples: "
        f"p50={latency['ingest_p50_s'] * 1000:.1f}ms "
        f"p99={latency['ingest_p99_s'] * 1000:.1f}ms"
    )
    overload = payload["overload"]
    print(
        f"overload: sent={overload['sent']} accepted={overload['accepted']} "
        f"shed={overload['shed']} survived={overload['server_survived']} "
        f"replay_bit_identical={overload['replay_bit_identical']}"
    )

    problems = check_invariants(payload, args.tenants)
    if problems:
        print("\nservice invariants violated:")
        for problem in problems:
            print(f"  ! {problem}")
        return 1

    if args.out.exists() and not args.update:
        baseline = json.loads(args.out.read_text())
        removed, added = diff_schema(baseline, payload)
        if removed or added:
            print("\nservice-schema drift detected against", args.out)
            for path in sorted(removed):
                print(f"  - removed: {path}")
            for path in sorted(added):
                print(f"  + added:   {path}")
            print("re-run with --update to accept the new schema")
            return 1
        print(f"\nschema gate passed against {args.out}")
    elif args.update or not args.out.exists():
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
