"""Figure 8: varying the increment input rate (4 / 8 / 16 ΔD/s).

census_2m and dbpedia, JS and ED.  Expected shapes (paper, Figure 8):

* on slow streams, I-BASE keeps up and all approaches are comparable
  (everyone is arrival-bound);
* as the rate rises, I-BASE stagnates while the adaptive PIER algorithms
  keep improving early quality;
* with ED, everything slows but the same ordering holds.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import pc_over_time_table, summary_table

from benchmarks.helpers import report, run_once

SYSTEMS = ("I-BASE", "I-PCS", "I-PBS", "I-PES")
RATES = (4.0, 8.0, 16.0)

SETUPS = {
    # dataset → (scale, n_increments, JS budget, ED budget)
    "census_2m": (0.4, 240, 70.0, 120.0),
    "dbpedia": (0.3, 240, 70.0, 150.0),
}


def _run(dataset_name: str, matcher: str, rate: float):
    scale, n_increments, js_budget, ed_budget = SETUPS[dataset_name]
    budget = js_budget if matcher == "JS" else ed_budget
    config = ExperimentConfig(
        dataset_name=dataset_name,
        systems=SYSTEMS,
        matcher=matcher,
        scale=scale,
        n_increments=n_increments,
        rate=rate,
        budget=budget,
    )
    return budget, run_experiment(config)


@pytest.mark.parametrize("dataset_name", list(SETUPS))
@pytest.mark.parametrize("matcher", ["JS", "ED"])
def test_fig8_rate_sweep(benchmark, dataset_name, matcher):
    def sweep():
        return {rate: _run(dataset_name, matcher, rate) for rate in RATES}

    by_rate = run_once(benchmark, sweep)
    sections = []
    for rate, (budget, results) in by_rate.items():
        times = [budget * f for f in (0.1, 0.25, 0.5, 0.75, 1.0)]
        sections.append(
            f"--- input rate {rate:g} dD/s ---\n"
            + pc_over_time_table(results, times)
            + "\n"
            + summary_table(results)
        )
    report(f"fig8_{dataset_name}_{matcher}", "\n\n".join(sections))

    # PIER's early-quality edge over I-BASE grows with the input rate.
    def edge(rate):
        budget, results = by_rate[rate]
        auc = lambda name: results[name].curve.area_under_curve(budget)
        return auc("I-PES") - auc("I-BASE")

    assert edge(16.0) >= edge(4.0) - 0.05
    # At the highest rate the baseline is clearly dominated.
    assert edge(16.0) > 0.0
