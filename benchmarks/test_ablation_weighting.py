"""Ablation: weighting schemes inside the PIER strategies.

The paper uses CBS everywhere ("the fastest to compute") and names the
choice of weighting scheme as the main sensitivity of I-PCS — with I-PES
"compensating poor performance of weighting schemes".  Its future work asks
for "a heuristic for determining the best appropriate method".  This
ablation quantifies the sensitivity: I-PCS and I-PES under CBS, ECBS, JS
and ARCS on the heterogeneous dbpedia analogue.
"""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import make_matcher
from repro.evaluation.reporting import format_table
from repro.metablocking.weights import make_scheme
from repro.pier.base import PierSystem
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES
from repro.streaming.engine import StreamingEngine

from benchmarks.helpers import report, run_once

SCHEMES = ("cbs", "ecbs", "js", "arcs")
BUDGET = 90.0


def _run_all():
    dataset = load_dataset("dbpedia", scale=0.25)
    increments = split_into_increments(dataset, 100, seed=0)
    plan = make_stream_plan(increments, rate=None)
    rows = []
    spread = {}
    for strategy_name, factory in (("I-PCS", IPCS), ("I-PES", IPES)):
        aucs = []
        for scheme_name in SCHEMES:
            system = PierSystem(
                factory(scheme=make_scheme(scheme_name)), clean_clean=True
            )
            engine = StreamingEngine(make_matcher("ED"), budget=BUDGET)
            result = engine.run(system, plan, dataset.ground_truth)
            auc = result.curve.area_under_curve(BUDGET)
            aucs.append(auc)
            rows.append(
                [strategy_name, scheme_name.upper(), f"{auc:.3f}", f"{result.final_pc:.3f}"]
            )
        spread[strategy_name] = max(aucs) - min(aucs)
    table = format_table(["strategy", "scheme", "early AUC", "final PC"], rows)
    return table, spread


def test_ablation_weighting_schemes(benchmark):
    table, spread = run_once(benchmark, _run_all)
    text = table + (
        f"\n\nAUC spread across schemes:  I-PCS={spread['I-PCS']:.3f}"
        f"  I-PES={spread['I-PES']:.3f}"
    )
    report("ablation_weighting", text)
    # I-PES is designed to be less sensitive to the weighting scheme than
    # the purely comparison-centric I-PCS.
    assert spread["I-PES"] <= spread["I-PCS"] + 0.05
