"""Figure 1: matches found over time by batch, progressive, and incremental
ER over static and dynamic data (the paper's motivating sketch).

Static data: batch ER discovers matches late (uniformly over its run, all
results effectively at the end), progressive ER front-loads discovery after
a pre-analysis delay, incremental ER rises in steps.  Dynamic data:
incremental ER degrades when increments arrive faster than it can process
them, while progressive-incremental (I-PES) keeps the early-discovery
profile.
"""

from __future__ import annotations

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import pc_over_time_table

from benchmarks.helpers import report, run_once

SCALE = 0.4


def _static_setting():
    config = ExperimentConfig(
        dataset_name="dblp_acm",
        systems=("BATCH", "PBS", "I-PES"),
        matcher="ED",
        scale=SCALE,
        n_increments=50,
        rate=None,
        budget=120.0,
    )
    return run_experiment(config)


def _dynamic_setting():
    config = ExperimentConfig(
        dataset_name="dblp_acm",
        systems=("I-BASE", "I-PES"),
        matcher="ED",
        scale=SCALE,
        n_increments=100,
        rate=16.0,
        budget=120.0,
    )
    return run_experiment(config)


def test_fig1_static(benchmark):
    results = run_once(benchmark, _static_setting)
    times = [1, 2, 5, 10, 20, 40, 80, 120]
    table = pc_over_time_table(results, times)
    report("fig1_static", table)
    # progressive ER (PBS) must beat batch ER early...
    midpoint = results["BATCH"].clock_end / 2
    assert results["PBS"].curve.pc_at_time(midpoint) > results["BATCH"].curve.pc_at_time(
        midpoint
    )
    # ...and so must PIER, despite consuming the data incrementally
    assert results["I-PES"].curve.pc_at_time(midpoint) > results["BATCH"].curve.pc_at_time(
        midpoint
    )


def test_fig1_dynamic(benchmark):
    results = run_once(benchmark, _dynamic_setting)
    times = [2, 5, 10, 20, 40, 80, 120]
    table = pc_over_time_table(results, times)
    report("fig1_dynamic", table)
    # PIER dominates the incremental baseline's early quality on fast streams
    assert results["I-PES"].curve.area_under_curve(120.0) >= results[
        "I-BASE"
    ].curve.area_under_curve(120.0)
