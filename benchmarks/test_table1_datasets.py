"""Table 1: dataset characteristics.

Regenerates the paper's Table 1 for the synthetic analogues: profile counts
(per source for Clean-Clean), match counts, and — as extra context — the
paper's original sizes for comparison.
"""

from __future__ import annotations

from repro.datasets.registry import DATASET_SPECS, load_dataset
from repro.evaluation.reporting import format_table

from benchmarks.helpers import report, run_once


def _build_table() -> str:
    rows = []
    for name, spec in DATASET_SPECS.items():
        dataset = load_dataset(name)
        sizes = dataset.source_sizes()
        if len(sizes) == 2:
            profile_cell = f"{sizes[0]} - {sizes[1]}"
        else:
            profile_cell = str(sizes[0])
        rows.append(
            [
                name,
                spec.kind,
                profile_cell,
                len(dataset.ground_truth),
                spec.paper_profiles,
                spec.paper_matches,
            ]
        )
    return format_table(
        ["name", "kind", "#profiles (ours)", "#matches (ours)",
         "#profiles (paper)", "#matches (paper)"],
        rows,
    )


def test_table1_dataset_characteristics(benchmark):
    table = run_once(benchmark, _build_table)
    report("table1_datasets", table)
    assert "dblp_acm" in table
    assert "census_2m" in table
