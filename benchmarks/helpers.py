"""Shared utilities for the figure/table reproduction benchmarks.

Every benchmark in this directory reproduces one artifact of the paper's
evaluation section (Table 1, Figures 1-2 and 4-8).  The pattern is:

* the experiment runs once inside ``benchmark.pedantic`` (so
  ``pytest benchmarks/ --benchmark-only`` also reports its wall time);
* the reproduced series/table is printed and appended to
  ``benchmarks/results/<name>.txt`` so the output survives pytest's
  capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a reproduction artifact and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(banner.lstrip("\n") + text + "\n")


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
