"""Figure 4: PC over time in the progressive (static) setting.

All four datasets x {JS, ED} matchers; batch progressive baselines (PPS,
PBS) against the PIER algorithms consuming the same data as an increment
sequence.  Expected shapes (paper, Figure 4):

* PPS pays a long initialization before emitting anything — on the large
  heterogeneous dataset it dwarfs everyone else's start;
* PBS starts fastest (initialization is only a block sort);
* with JS, all PIER methods reach near-baseline eventual quality;
* with ED, I-PCS/I-PBS degrade on the heterogeneous datasets while I-PES
  stays robust; on census (relational), block-centric scheduling shines.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import pc_over_time_table, summary_table

from benchmarks.helpers import report, run_once

SYSTEMS = ("PPS", "PBS", "I-PCS", "I-PBS", "I-PES")

# dataset → (scale, increments, JS budget, ED budget)
SETUPS = {
    "dblp_acm": (0.5, 100, 10.0, 60.0),
    "movies": (0.3, 100, 20.0, 120.0),
    "census_2m": (0.3, 150, 20.0, 120.0),
    "dbpedia": (0.3, 150, 30.0, 150.0),
}


def _run(dataset_name: str, matcher: str):
    scale, n_increments, js_budget, ed_budget = SETUPS[dataset_name]
    config = ExperimentConfig(
        dataset_name=dataset_name,
        systems=SYSTEMS,
        matcher=matcher,
        scale=scale,
        n_increments=n_increments,
        rate=None,  # static setting
        budget=js_budget if matcher == "JS" else ed_budget,
    )
    return config, run_experiment(config)


@pytest.mark.parametrize("dataset_name", list(SETUPS))
@pytest.mark.parametrize("matcher", ["JS", "ED"])
def test_fig4_cell(benchmark, dataset_name, matcher):
    config, results = run_once(benchmark, lambda: _run(dataset_name, matcher))
    budget = config.budget
    times = [budget * f for f in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)]
    text = pc_over_time_table(results, times) + "\n\n" + summary_table(results)
    report(f"fig4_{dataset_name}_{matcher}", text)

    # Eventual quality with a cheap matcher: all PIER methods land close to
    # the progressive baselines.
    if matcher == "JS":
        baseline = max(results["PPS"].final_pc, results["PBS"].final_pc)
        assert results["I-PES"].final_pc >= baseline - 0.1

    # With the expensive matcher on heterogeneous data, I-PES dominates the
    # other CBS-driven PIER strategies in early quality.
    if matcher == "ED" and dataset_name == "dbpedia":
        auc = lambda name: results[name].curve.area_under_curve(budget)
        assert auc("I-PES") >= auc("I-PCS") - 0.02


def test_fig4_pps_initialization_dominates_on_large_data(benchmark):
    """PPS's pre-analysis makes its curve flat long after PBS has begun."""

    def run():
        _, results = _run("dbpedia", "JS")
        return results

    results = run_once(benchmark, run)
    pps, pbs = results["PPS"], results["PBS"]
    early = 0.05 * 30.0
    assert pbs.curve.pc_at_time(early) > pps.curve.pc_at_time(early)
