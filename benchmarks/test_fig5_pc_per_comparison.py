"""Figure 5: PC per emitted comparison (no time budget).

The comparison-efficiency view of the same progressive setting: how much
PC does each algorithm buy per executed comparison?  Expected shapes
(paper, Figure 5):

* PPS is by far the most comparison-efficient (meta-blocking graph +
  per-profile top-k emits few, good comparisons);
* I-PCS needs far more comparisons than I-PES for the same PC on
  heterogeneous data (CBS over-prioritizes long non-matches);
* PBS and I-PBS execute roughly the same comparisons, but I-PBS spends
  them less well (lazy refills reorder emission).
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import ExperimentConfig, run_experiment
from repro.evaluation.reporting import pc_over_comparisons_table

from benchmarks.helpers import report, run_once

SYSTEMS = ("PPS", "PBS", "I-PCS", "I-PBS", "I-PES")

SETUPS = {
    "dblp_acm": 0.5,
    "movies": 0.3,
    "census_2m": 0.3,
    "dbpedia": 0.3,
}


def _run(dataset_name: str):
    config = ExperimentConfig(
        dataset_name=dataset_name,
        systems=SYSTEMS,
        matcher="JS",          # the matcher does not affect the x-axis
        scale=SETUPS[dataset_name],
        n_increments=100,
        rate=None,
        budget=10_000.0,       # effectively unbounded: run to completion
    )
    return run_experiment(config)


@pytest.mark.parametrize("dataset_name", list(SETUPS))
def test_fig5_pc_per_comparison(benchmark, dataset_name):
    results = run_once(benchmark, lambda: _run(dataset_name))
    most = max(result.comparisons_executed for result in results.values())
    counts = [int(most * f) for f in (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)]
    table = pc_over_comparisons_table(results, counts)
    report(f"fig5_{dataset_name}", table)

    # On heterogeneous data PPS buys more PC per comparison than plain block
    # scheduling early on.  (census_2m is the paper's exception: relational
    # data with highly informative smallest blocks rewards block-centric
    # scheduling, so the probe is skipped there.)
    if dataset_name != "census_2m":
        probe = max(int(most * 0.05), 1)
        assert results["PPS"].curve.pc_at_comparisons(probe) >= results[
            "PBS"
        ].curve.pc_at_comparisons(probe) - 0.05

    # Run-to-completion: every algorithm reaches a high eventual PC
    for name, result in results.items():
        assert result.final_pc > 0.55, f"{name} ended at {result.final_pc:.3f}"


def test_fig5_ipes_more_comparison_efficient_than_ipcs(benchmark):
    """On the heterogeneous dbpedia analogue, I-PES reaches mid-range PC
    with fewer comparisons than I-PCS (the CBS-misleads effect)."""
    results = run_once(benchmark, lambda: _run("dbpedia"))

    def comparisons_to_reach(name):
        count = results[name].curve.comparisons_to_pc(0.5)
        return count if count is not None else float("inf")

    assert comparisons_to_reach("I-PES") <= comparisons_to_reach("I-PCS") * 1.25
