"""Performance benchmark target: ``python -m benchmarks.perf``.

Measures the two wall-clock optimizations that ride on the unified
execution core and gates against regressions:

* **batched matching** — ``matcher.evaluate_batch`` versus the scalar
  pair-at-a-time loop on identical pair samples.  The batched kernel must
  stay at least ``MIN_JS_SPEEDUP``× faster for JS (the cheap matcher, where
  per-pair Python dispatch dominates) and must remain bit-identical (the
  benchmark re-verifies similarity/cost equality on every run);
* **slots** — per-instance memory of the slotted
  :class:`~repro.priority.bounded_pq.BoundedPriorityQueue` versus a
  ``__dict__``-backed replica, plus enqueue/dequeue throughput.  I-PES
  allocates one queue per entity, so the footprint is a real lever;
* **single-sweep weighting** — profiles/second through candidate
  generation + I-WNP (``ComparisonGenerator.generate``) on the sweep
  kernel versus the legacy per-pair ``scheme.weight()`` path, for all four
  weighting schemes.  The sweep must stay at least
  ``MIN_CBS_SWEEP_SPEEDUP``× faster for CBS (the paper's default scheme)
  and both paths must emit bit-identical comparison streams (re-verified
  on every run).

* **ED kernel** — the pre-PR expensive-matcher hot path (pair-at-a-time
  ``evaluate`` on the banded-DP kernel) versus the current default
  (staged ``evaluate_batch`` on the Myers bit-parallel kernel) on the same
  pair sample.  The new path must stay at least ``MIN_ED_SPEEDUP``× faster
  and pair-level bit-identical (same similarities *and* costs); on top of
  that, one end-to-end engine run per kernel re-verifies that kernel
  choice never changes the observable outcome — curve, duplicates,
  telemetry-stripped metrics, and the checkpoint fingerprint;

* **parallel matching** — one full resolution through
  :class:`repro.api.ERSession` at ``workers=4`` versus ``workers=1``.
  The sharded run must stay bit-identical to serial — curve, duplicates,
  comparison count, virtual clock, telemetry-stripped metrics, and the
  checkpoint fingerprint are all re-verified on every run — and must reach
  ``MIN_PARALLEL_SPEEDUP``× on hosts with at least
  ``PARALLEL_GATE_MIN_CORES`` cores (the wall-clock gate is recorded but
  not enforced on smaller hosts, where a process pool cannot win).  The
  sharded run must also actually use the shared-memory profile transport:
  ``parallel.shm_segments``/``parallel.shm_bytes`` are recorded and the
  benchmark fails if rounds were sharded with zero segments published.

* **blocking substrate** — one full progressive run per substrate
  (token / lsh / lsh-prefilter) through :class:`repro.api.ERSession`.
  Both LSH substrates must cut the executed candidate volume by at least
  ``MIN_LSH_CANDIDATE_CUT``× versus token blocking while losing at most
  ``MAX_LSH_PC_LOSS`` pair completeness at the final budget, the
  ``blocking.lsh.*`` telemetry must show real work (signatures, buckets,
  and — for the prefilter — pruned candidates), and a repeated LSH run
  must be bit-identical down to the checkpoint fingerprint (the
  determinism that crash-resume restores rely on).

Unlike the smoke/chaos baselines, every recorded value here is wall-clock
(host-dependent), so the checked-in ``BENCH_perf.json`` is refreshed only
with ``--update``; a plain run gates on the *structure* of the payload
(schema drift) and on the speedup/memory thresholds, never on absolute
timings.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Sequence

from repro.api import EngineOptions, ERSession
from repro.blocking.blocks import BlockCollection
from repro.core.dataset import ERKind
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import _build_matcher
from repro.metablocking.weights import make_scheme
from repro.parallel import strip_parallel_telemetry
from repro.pier.base import ComparisonGenerator
from repro.priority.bounded_pq import BoundedPriorityQueue

from benchmarks.smoke import diff_schema

BENCH_SCHEMA_VERSION = 3
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_perf.json"

CONFIG = {
    "dataset": "dblp_acm",
    "scale": 0.5,
    "n_pairs": 4000,
    "sample_seed": 17,
    "matchers": ["JS", "ED"],
    "repeats": 5,
    "queue_instances": 20000,
    "queue_ops": 50000,
    "prioritization_profiles": 400,
    "prioritization_max_block_size": 200,
    "schemes": ["CBS", "ECBS", "JS", "ARCS"],
    "beta": 0.2,
    "parallel": {
        "dataset": "dblp_acm",
        "scale": 0.2,
        "system": "BATCH",
        "matcher": "ED",
        "n_increments": 10,
        "budget": 60.0,
        "checkpoint_every": 5.0,
        "workers": 4,
        "repeats": 3,
    },
    "blocking": {
        "dataset": "dblp_acm",
        "scale": 0.3,
        "system": "I-PCS",
        "matcher": "JS",
        "n_increments": 10,
        "rate": 5.0,
        "budget": 60.0,
        # The cheap JS matcher exhausts these streams after ~2 virtual
        # seconds, so checkpoints must tick faster than that for the
        # fingerprint identity check to see real mid-run state.
        "checkpoint_every": 0.5,
        "lsh_bands": 16,
        "lsh_rows": 2,
        "lsh_seed": 0,
    },
}

#: The batched JS kernel must amortize at least this much per-pair dispatch.
MIN_JS_SPEEDUP = 2.0

#: The single-sweep weighting kernel must beat the per-pair path by at
#: least this much on CBS (the paper's default scheme).
MIN_CBS_SWEEP_SPEEDUP = 3.0

#: The current ED hot path (staged batch + Myers bit-parallel kernel) must
#: beat the pre-PR path (scalar loop + banded DP) by at least this much.
MIN_ED_SPEEDUP = 3.0

#: The sharded matcher fleet must beat the serial run by at least this
#: much — enforced only on hosts with enough cores to make it possible.
MIN_PARALLEL_SPEEDUP = 2.0
PARALLEL_GATE_MIN_CORES = 4

#: Each LSH substrate must execute at most 1/this of token blocking's
#: candidate comparisons at the same budget...
MIN_LSH_CANDIDATE_CUT = 2.0

#: ...while giving up no more than this much pair completeness (absolute,
#: at the final budget) versus token blocking.
MAX_LSH_PC_LOSS = 0.02


class _DictBackedQueue:
    """Layout replica of ``BoundedPriorityQueue`` without ``__slots__``.

    Used purely to measure the per-instance memory the slots declaration
    saves; it carries the same attributes with the same initial values.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._max_heap: list = []
        self._min_heap: list = []
        self._size = 0
        self._counter = itertools.count()
        self.evictions = 0
        self.rejections = 0


def _sample_pairs(dataset, n: int, seed: int):
    rng = random.Random(seed)
    profiles = dataset.profiles
    return [
        (profiles[rng.randrange(len(profiles))], profiles[rng.randrange(len(profiles))])
        for _ in range(n)
    ]


def _best_of(repeats: int, fn) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_matcher(name: str, pairs, repeats: int) -> dict:
    # Warm any internal caches (the ED text cache) outside the timed region
    # so both paths see identical cache state.
    scalar_matcher = _build_matcher(name)
    batched_matcher = _build_matcher(name)
    scalar_results = [scalar_matcher.evaluate(x, y) for x, y in pairs]
    batched_results = batched_matcher.evaluate_batch(pairs)
    mismatches = sum(
        1
        for scalar, batched in zip(scalar_results, batched_results)
        if scalar != batched
    )
    if mismatches:
        raise AssertionError(
            f"{name}: batched kernel diverged from scalar on {mismatches} pairs"
        )

    scalar_s = _best_of(repeats, lambda: [scalar_matcher.evaluate(x, y) for x, y in pairs])
    batched_s = _best_of(repeats, lambda: batched_matcher.evaluate_batch(pairs))
    return {
        "pairs": len(pairs),
        "scalar_wall_s": round(scalar_s, 6),
        "batched_wall_s": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "bit_identical": True,
    }


def _bench_ed_kernel(pairs, repeats: int) -> dict:
    """Pre-PR ED hot path (scalar loop + banded DP) vs the current default
    (staged ``evaluate_batch`` + Myers bit-parallel kernel)."""
    legacy_matcher = _build_matcher("ED", ed_kernel="banded")
    fast_matcher = _build_matcher("ED")
    legacy_results = [legacy_matcher.evaluate(x, y) for x, y in pairs]
    fast_results = fast_matcher.evaluate_batch(pairs)
    # One pass worth of staged-scoring outcomes (deterministic for the
    # sampled pairs, unlike the timed repeats below which accumulate).
    kernel_counts = dict(fast_matcher.kernel_counts)
    mismatches = sum(
        1 for legacy, fast in zip(legacy_results, fast_results) if legacy != fast
    )
    if mismatches:
        raise AssertionError(
            f"ED: Myers batched path diverged from banded scalar on "
            f"{mismatches} pairs"
        )

    legacy_s = _best_of(
        repeats, lambda: [legacy_matcher.evaluate(x, y) for x, y in pairs]
    )
    fast_s = _best_of(repeats, lambda: fast_matcher.evaluate_batch(pairs))
    return {
        "pairs": len(pairs),
        "legacy_scalar_banded_wall_s": round(legacy_s, 6),
        "batched_myers_wall_s": round(fast_s, 6),
        "speedup": round(legacy_s / fast_s, 3),
        "kernel_counts": kernel_counts,
        "bit_identical": True,
    }


def _instance_bytes(factory, n: int) -> float:
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    instances = [factory() for _ in range(n)]
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    total = sum(stat.size_diff for stat in after.compare_to(before, "filename"))
    del instances
    return total / n


def _queue_throughput(ops: int, repeats: int) -> float:
    keys = [random.Random(5).random() for _ in range(ops)]

    def run() -> None:
        queue: BoundedPriorityQueue[int] = BoundedPriorityQueue(capacity=1024)
        for index, key in enumerate(keys):
            queue.enqueue(index, key)
        while queue:
            queue.dequeue()

    return ops / _best_of(repeats, run)


def _bench_slots() -> dict:
    slotted = _instance_bytes(BoundedPriorityQueue, CONFIG["queue_instances"])
    dict_backed = _instance_bytes(_DictBackedQueue, CONFIG["queue_instances"])
    return {
        "instances_sampled": CONFIG["queue_instances"],
        "bytes_per_instance_slots": round(slotted, 1),
        "bytes_per_instance_dict": round(dict_backed, 1),
        "bytes_saved_per_instance": round(dict_backed - slotted, 1),
        "enqueue_dequeue_ops_per_s": round(
            _queue_throughput(CONFIG["queue_ops"], CONFIG["repeats"]), 0
        ),
    }


def _bench_prioritization(dataset, repeats: int) -> dict:
    """Profiles/second through generate + I-WNP, sweep vs per-pair."""
    collection = BlockCollection(
        clean_clean=dataset.kind is ERKind.CLEAN_CLEAN,
        max_block_size=CONFIG["prioritization_max_block_size"],
    )
    for profile in dataset.profiles:
        collection.add_profile(profile)
    sample = dataset.profiles[-CONFIG["prioritization_profiles"]:]
    sources = {profile.pid: profile.source for profile in dataset.profiles}
    jobs = []
    for profile in sample:
        # Mirror the engine's predicates, including their self-describing
        # markers (PierSystem.valid_partner), so the benchmark measures the
        # pipeline exactly as the strategies drive it.
        if collection.clean_clean:
            valid = lambda pid, s=profile.source: sources[pid] != s
            valid.cross_source_only = True
        else:
            valid = lambda pid: True
            valid.always_true = True
        jobs.append((profile, valid))

    per_scheme = {}
    for scheme_name in CONFIG["schemes"]:
        scheme = make_scheme(scheme_name)
        sweep_gen = ComparisonGenerator(beta=CONFIG["beta"], scheme=scheme)
        pair_gen = ComparisonGenerator(beta=CONFIG["beta"], scheme=scheme, per_pair=True)

        def run_sweep():
            return [sweep_gen.generate(collection, p, v) for p, v in jobs]

        def run_per_pair():
            return [pair_gen.generate(collection, p, v) for p, v in jobs]

        mismatches = sum(1 for a, b in zip(run_sweep(), run_per_pair()) if a != b)
        if mismatches:
            raise AssertionError(
                f"{scheme_name}: sweep kernel diverged from per-pair weighting "
                f"on {mismatches}/{len(jobs)} profiles"
            )
        sweep_s = _best_of(repeats, run_sweep)
        pair_s = _best_of(repeats, run_per_pair)
        per_scheme[scheme_name] = {
            "profiles": len(jobs),
            "per_pair_wall_s": round(pair_s, 6),
            "sweep_wall_s": round(sweep_s, 6),
            "per_pair_profiles_per_s": round(len(jobs) / pair_s, 1),
            "sweep_profiles_per_s": round(len(jobs) / sweep_s, 1),
            "speedup": round(pair_s / sweep_s, 3),
            "bit_identical": True,
        }
    return per_scheme


def _stable_metrics(snapshot: dict) -> dict:
    """Metrics with everything host-dependent removed: wall-clock phase
    timings and the parallel telemetry (worker gauge, shard counters)."""
    snapshot = strip_parallel_telemetry(snapshot)
    snapshot["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in snapshot["phases"].items()
    }
    return snapshot


def _checkpoint_fingerprint(checkpoint) -> tuple:
    """The deterministic portion of a checkpoint (wall timings removed).

    Mid-run telemetry never reaches the metrics registry (parallel counters
    accumulate on run state and flush at finalize), so checkpoint metrics
    need no parallel stripping — only the host wall clocks go.
    """
    metrics_state = dict(checkpoint.metrics_state)
    metrics_state["phases"] = {
        phase: (virtual_s, count)
        for phase, (virtual_s, _wall_s, count) in metrics_state["phases"].items()
    }
    return (
        checkpoint.engine,
        checkpoint.budget,
        checkpoint.plan_fingerprint,
        checkpoint.clock,
        checkpoint.ingest_clock,
        checkpoint.next_arrival,
        checkpoint.consumed_at,
        checkpoint.rounds,
        checkpoint.ingested,
        checkpoint.shed,
        checkpoint.duplicates_dropped,
        checkpoint.seen_increments,
        checkpoint.duplicates,
        checkpoint.quarantined,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        metrics_state,
    )


def _parallel_session(
    knobs: dict, workers: int, ed_kernel: str = "auto"
) -> ERSession:
    return ERSession(
        knobs["dataset"],
        systems=(knobs["system"],),
        matcher=knobs["matcher"],
        engine=EngineOptions(workers=workers, ed_kernel=ed_kernel),
        scale=knobs["scale"],
        n_increments=knobs["n_increments"],
        rate=None,
        budget=knobs["budget"],
        checkpoint_every=knobs["checkpoint_every"],
    )


def _run_observable(session: ERSession) -> tuple[dict, tuple, dict]:
    """One ERSession run reduced to (observable, fingerprint, counters)."""
    result = session.run()
    observable = {
        "curve": result.curve.points,
        "duplicates": sorted(result.duplicates),
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "metrics": _stable_metrics(result.details["metrics"]),
    }
    fingerprint = _checkpoint_fingerprint(session.last_checkpoint)
    return observable, fingerprint, result.details["metrics"]["counters"]


def _bench_parallel() -> dict:
    """End-to-end ERSession run, sharded fleet versus serial."""
    knobs = CONFIG["parallel"]
    observable = {}
    fingerprints = {}
    walls = {}
    counters = {}
    for workers in (1, knobs["workers"]):
        # One session per worker count: the pool spawns once (outside the
        # timed region, like any warmup) and is reused across repeats.
        with _parallel_session(knobs, workers) as session:
            observable[workers], fingerprints[workers], counters[workers] = (
                _run_observable(session)
            )
            walls[workers] = _best_of(knobs["repeats"], session.run)

    if observable[1] != observable[knobs["workers"]]:
        raise AssertionError(
            "parallel: sharded run diverged from serial "
            "(curve/duplicates/comparisons/clock/metrics)"
        )
    if fingerprints[1] != fingerprints[knobs["workers"]]:
        raise AssertionError(
            "parallel: checkpoint fingerprint diverged between worker counts"
        )

    # Kernel choice must be unobservable end-to-end: re-run the serial cell
    # on the pre-PR banded kernel and demand the identical outcome.
    with _parallel_session(knobs, 1, ed_kernel="banded") as session:
        banded_observable, banded_fingerprint, _ = _run_observable(session)
    if banded_observable != observable[1] or banded_fingerprint != fingerprints[1]:
        raise AssertionError(
            "ED kernels: banded engine run diverged from the Myers default "
            "(curve/duplicates/metrics/checkpoint fingerprint)"
        )

    sharded = counters[knobs["workers"]]
    cores = os.cpu_count() or 1
    speedup = walls[1] / walls[knobs["workers"]]
    return {
        "workers": knobs["workers"],
        "cores_detected": cores,
        "gate_enforced": cores >= PARALLEL_GATE_MIN_CORES,
        "comparisons": observable[1]["comparisons_executed"],
        "rounds_sharded": int(sharded.get("parallel.rounds_sharded", 0)),
        "pairs_sharded": int(sharded.get("parallel.pairs_sharded", 0)),
        "pool_fallbacks": int(sharded.get("parallel.fallbacks", 0)),
        "shm_segments": int(sharded.get("parallel.shm_segments", 0)),
        "shm_bytes": int(sharded.get("parallel.shm_bytes", 0)),
        "serial_wall_s": round(walls[1], 6),
        "parallel_wall_s": round(walls[knobs["workers"]], 6),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "cross_kernel_identical": True,
    }


def _blocking_session(knobs: dict, substrate: str) -> ERSession:
    return ERSession(
        knobs["dataset"],
        systems=(knobs["system"],),
        matcher=knobs["matcher"],
        engine=EngineOptions(
            blocking=substrate,
            lsh_bands=knobs["lsh_bands"],
            lsh_rows=knobs["lsh_rows"],
            lsh_seed=knobs["lsh_seed"],
        ),
        scale=knobs["scale"],
        n_increments=knobs["n_increments"],
        rate=knobs["rate"],
        budget=knobs["budget"],
        checkpoint_every=knobs["checkpoint_every"],
    )


def _bench_blocking() -> dict:
    """One progressive run per substrate: candidate volume vs recall.

    Unlike every other section, the LSH substrates deliberately change
    *what* is computed, so the gate is a quality trade: the candidate cut
    must be worth it (``MIN_LSH_CANDIDATE_CUT``) and the recall cost must
    be negligible (``MAX_LSH_PC_LOSS``).  Determinism is re-verified by
    re-running the ``lsh`` cell and demanding a bit-identical observable
    and checkpoint fingerprint — the property checkpoint restores build on.
    """
    knobs = CONFIG["blocking"]
    truth = load_dataset(knobs["dataset"], scale=knobs["scale"]).ground_truth
    per_substrate = {}
    observables = {}
    fingerprints = {}
    for substrate in ("token", "lsh", "lsh-prefilter"):
        with _blocking_session(knobs, substrate) as session:
            start = time.perf_counter()
            observable, fingerprint, counters = _run_observable(session)
            wall_s = time.perf_counter() - start
        observables[substrate] = observable
        fingerprints[substrate] = fingerprint
        per_substrate[substrate] = {
            "comparisons": observable["comparisons_executed"],
            "pair_completeness": round(
                truth.pair_completeness(observable["duplicates"]), 6
            ),
            "weighting_ops": int(counters.get("strategy.weighting_ops", 0)),
            "lsh_signatures": int(counters.get("blocking.lsh.signatures", 0)),
            "lsh_buckets": int(counters.get("blocking.lsh.buckets", 0)),
            "lsh_candidates_pruned": int(
                counters.get("blocking.lsh.candidates_pruned", 0)
            ),
            "wall_s": round(wall_s, 6),
        }

    with _blocking_session(knobs, "lsh") as session:
        repeat_observable, repeat_fingerprint, _ = _run_observable(session)
    deterministic = (
        repeat_observable == observables["lsh"]
        and repeat_fingerprint == fingerprints["lsh"]
    )
    if not deterministic:
        raise AssertionError(
            "blocking: repeated lsh run diverged from the first "
            "(curve/duplicates/metrics/checkpoint fingerprint)"
        )

    token = per_substrate["token"]
    for substrate in ("lsh", "lsh-prefilter"):
        entry = per_substrate[substrate]
        entry["candidate_cut"] = round(
            token["comparisons"] / max(entry["comparisons"], 1), 3
        )
        entry["pc_loss"] = round(
            token["pair_completeness"] - entry["pair_completeness"], 6
        )
    return {
        "truth_pairs": len(truth),
        "substrates": per_substrate,
        "lsh_deterministic": True,
    }


def build_snapshot() -> dict:
    dataset = load_dataset(CONFIG["dataset"], scale=CONFIG["scale"])
    pairs = _sample_pairs(dataset, CONFIG["n_pairs"], CONFIG["sample_seed"])
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "config": CONFIG,
        "batched_matching": {
            name: _bench_matcher(name, pairs, CONFIG["repeats"])
            for name in CONFIG["matchers"]
        },
        "ed_kernel": _bench_ed_kernel(pairs, CONFIG["repeats"]),
        "slots": _bench_slots(),
        "prioritization": _bench_prioritization(dataset, CONFIG["repeats"]),
        "parallel": _bench_parallel(),
        "blocking": _bench_blocking(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="measure batched-kernel speedup and slots memory savings",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_BASELINE,
        help="baseline path (default: benchmarks/BENCH_perf.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline with this host's measurements",
    )
    args = parser.parse_args(argv)

    payload = build_snapshot()
    for name, entry in payload["batched_matching"].items():
        print(
            f"{name}: scalar={entry['scalar_wall_s']:.4f}s "
            f"batched={entry['batched_wall_s']:.4f}s "
            f"speedup={entry['speedup']:.2f}x"
        )
    ed = payload["ed_kernel"]
    staged = ", ".join(
        f"{stage}={count}" for stage, count in sorted(ed["kernel_counts"].items())
    )
    print(
        f"ed-kernel: legacy={ed['legacy_scalar_banded_wall_s']:.4f}s "
        f"myers-batched={ed['batched_myers_wall_s']:.4f}s "
        f"speedup={ed['speedup']:.2f}x ({staged})"
    )
    slots = payload["slots"]
    print(
        f"slots: {slots['bytes_per_instance_slots']:.0f} B/queue vs "
        f"{slots['bytes_per_instance_dict']:.0f} B dict-backed "
        f"(saves {slots['bytes_saved_per_instance']:.0f} B), "
        f"{slots['enqueue_dequeue_ops_per_s']:.0f} queue ops/s"
    )

    for scheme_name, entry in payload["prioritization"].items():
        print(
            f"weighting[{scheme_name}]: per-pair={entry['per_pair_profiles_per_s']:.0f} "
            f"profiles/s sweep={entry['sweep_profiles_per_s']:.0f} profiles/s "
            f"speedup={entry['speedup']:.2f}x"
        )

    parallel = payload["parallel"]
    gate_note = "enforced" if parallel["gate_enforced"] else (
        f"not enforced, {parallel['cores_detected']} core(s)"
    )
    print(
        f"parallel: serial={parallel['serial_wall_s']:.4f}s "
        f"workers={parallel['workers']} -> {parallel['parallel_wall_s']:.4f}s "
        f"speedup={parallel['speedup']:.2f}x "
        f"({parallel['pairs_sharded']} pairs sharded, "
        f"{parallel['shm_segments']} shm segments / "
        f"{parallel['shm_bytes']} B, gate {gate_note})"
    )

    blocking = payload["blocking"]
    for substrate, entry in blocking["substrates"].items():
        extra = ""
        if substrate != "token":
            extra = (
                f" cut={entry['candidate_cut']:.1f}x "
                f"pc_loss={entry['pc_loss']:+.4f}"
            )
        print(
            f"blocking[{substrate}]: comparisons={entry['comparisons']} "
            f"pc={entry['pair_completeness']:.4f} "
            f"weighting_ops={entry['weighting_ops']}{extra}"
        )

    failures = []
    js_speedup = payload["batched_matching"]["JS"]["speedup"]
    if js_speedup < MIN_JS_SPEEDUP:
        failures.append(
            f"JS batched speedup {js_speedup:.2f}x below the {MIN_JS_SPEEDUP}x gate"
        )
    if ed["speedup"] < MIN_ED_SPEEDUP:
        failures.append(
            f"ED Myers batched speedup {ed['speedup']:.2f}x over the pre-PR "
            f"scalar banded path is below the {MIN_ED_SPEEDUP}x gate"
        )
    if not ed["bit_identical"]:
        failures.append("ED: Myers batched path diverged from banded scalar")
    if slots["bytes_saved_per_instance"] <= 0:
        failures.append("slotted queue is not smaller than the dict-backed replica")
    cbs_sweep = payload["prioritization"]["CBS"]["speedup"]
    if cbs_sweep < MIN_CBS_SWEEP_SPEEDUP:
        failures.append(
            f"CBS sweep speedup {cbs_sweep:.2f}x below the "
            f"{MIN_CBS_SWEEP_SPEEDUP}x gate"
        )
    for scheme_name, entry in payload["prioritization"].items():
        if not entry["bit_identical"]:
            failures.append(f"{scheme_name}: sweep stream diverged from per-pair")
    if not parallel["bit_identical"]:
        failures.append("parallel: sharded run diverged from serial")
    if parallel["rounds_sharded"] == 0:
        failures.append("parallel: worker pool never sharded a round")
    if parallel["rounds_sharded"] > 0 and parallel["shm_segments"] == 0:
        failures.append(
            "parallel: rounds were sharded but no shared-memory segments "
            "were published (shm transport inactive)"
        )
    if parallel["gate_enforced"] and parallel["speedup"] < MIN_PARALLEL_SPEEDUP:
        failures.append(
            f"parallel speedup {parallel['speedup']:.2f}x below the "
            f"{MIN_PARALLEL_SPEEDUP}x gate on a {parallel['cores_detected']}-core host"
        )
    if not blocking["lsh_deterministic"]:
        failures.append("blocking: repeated lsh run was not bit-identical")
    for substrate in ("lsh", "lsh-prefilter"):
        entry = blocking["substrates"][substrate]
        if entry["candidate_cut"] < MIN_LSH_CANDIDATE_CUT:
            failures.append(
                f"blocking[{substrate}]: candidate cut "
                f"{entry['candidate_cut']:.2f}x below the "
                f"{MIN_LSH_CANDIDATE_CUT}x gate"
            )
        if entry["pc_loss"] > MAX_LSH_PC_LOSS:
            failures.append(
                f"blocking[{substrate}]: pair-completeness loss "
                f"{entry['pc_loss']:.4f} above the {MAX_LSH_PC_LOSS} gate"
            )
        if entry["lsh_signatures"] == 0 or entry["lsh_buckets"] == 0:
            failures.append(
                f"blocking[{substrate}]: blocking.lsh.* telemetry shows no "
                f"work (signatures={entry['lsh_signatures']}, "
                f"buckets={entry['lsh_buckets']})"
            )
    if blocking["substrates"]["lsh-prefilter"]["lsh_candidates_pruned"] == 0:
        failures.append(
            "blocking[lsh-prefilter]: the co-bucket filter never pruned a "
            "candidate (blocking.lsh.candidates_pruned == 0)"
        )

    if args.out.exists() and not args.update:
        baseline = json.loads(args.out.read_text())
        removed, added = diff_schema(baseline, payload)
        if removed or added:
            print("\nperf-schema drift detected against", args.out)
            for path in sorted(removed):
                print(f"  - removed: {path}")
            for path in sorted(added):
                print(f"  + added:   {path}")
            failures.append("schema drift (re-run with --update to accept)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    if args.update or not args.out.exists():
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.out}")
    else:
        print("\nperf gates passed (baseline untouched; use --update to refresh)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
