"""Performance benchmark target: ``python -m benchmarks.perf``.

Measures the two wall-clock optimizations that ride on the unified
execution core and gates against regressions:

* **batched matching** — ``matcher.evaluate_batch`` versus the scalar
  pair-at-a-time loop on identical pair samples.  The batched kernel must
  stay at least ``MIN_JS_SPEEDUP``× faster for JS (the cheap matcher, where
  per-pair Python dispatch dominates) and must remain bit-identical (the
  benchmark re-verifies similarity/cost equality on every run);
* **slots** — per-instance memory of the slotted
  :class:`~repro.priority.bounded_pq.BoundedPriorityQueue` versus a
  ``__dict__``-backed replica, plus enqueue/dequeue throughput.  I-PES
  allocates one queue per entity, so the footprint is a real lever;
* **single-sweep weighting** — profiles/second through candidate
  generation + I-WNP (``ComparisonGenerator.generate``) on the sweep
  kernel versus the legacy per-pair ``scheme.weight()`` path, for all four
  weighting schemes.  The sweep must stay at least
  ``MIN_CBS_SWEEP_SPEEDUP``× faster for CBS (the paper's default scheme)
  and both paths must emit bit-identical comparison streams (re-verified
  on every run).

Unlike the smoke/chaos baselines, every recorded value here is wall-clock
(host-dependent), so the checked-in ``BENCH_perf.json`` is refreshed only
with ``--update``; a plain run gates on the *structure* of the payload
(schema drift) and on the speedup/memory thresholds, never on absolute
timings.
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Sequence

from repro.blocking.blocks import BlockCollection
from repro.core.dataset import ERKind
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import make_matcher
from repro.metablocking.weights import make_scheme
from repro.pier.base import ComparisonGenerator
from repro.priority.bounded_pq import BoundedPriorityQueue

from benchmarks.smoke import diff_schema

BENCH_SCHEMA_VERSION = 1
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_perf.json"

CONFIG = {
    "dataset": "dblp_acm",
    "scale": 0.5,
    "n_pairs": 4000,
    "sample_seed": 17,
    "matchers": ["JS", "ED"],
    "repeats": 5,
    "queue_instances": 20000,
    "queue_ops": 50000,
    "prioritization_profiles": 400,
    "prioritization_max_block_size": 200,
    "schemes": ["CBS", "ECBS", "JS", "ARCS"],
    "beta": 0.2,
}

#: The batched JS kernel must amortize at least this much per-pair dispatch.
MIN_JS_SPEEDUP = 2.0

#: The single-sweep weighting kernel must beat the per-pair path by at
#: least this much on CBS (the paper's default scheme).
MIN_CBS_SWEEP_SPEEDUP = 3.0


class _DictBackedQueue:
    """Layout replica of ``BoundedPriorityQueue`` without ``__slots__``.

    Used purely to measure the per-instance memory the slots declaration
    saves; it carries the same attributes with the same initial values.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._max_heap: list = []
        self._min_heap: list = []
        self._size = 0
        self._counter = itertools.count()
        self.evictions = 0
        self.rejections = 0


def _sample_pairs(dataset, n: int, seed: int):
    rng = random.Random(seed)
    profiles = dataset.profiles
    return [
        (profiles[rng.randrange(len(profiles))], profiles[rng.randrange(len(profiles))])
        for _ in range(n)
    ]


def _best_of(repeats: int, fn) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_matcher(name: str, pairs, repeats: int) -> dict:
    # Warm any internal caches (the ED text cache) outside the timed region
    # so both paths see identical cache state.
    scalar_matcher = make_matcher(name)
    batched_matcher = make_matcher(name)
    scalar_results = [scalar_matcher.evaluate(x, y) for x, y in pairs]
    batched_results = batched_matcher.evaluate_batch(pairs)
    mismatches = sum(
        1
        for scalar, batched in zip(scalar_results, batched_results)
        if scalar != batched
    )
    if mismatches:
        raise AssertionError(
            f"{name}: batched kernel diverged from scalar on {mismatches} pairs"
        )

    scalar_s = _best_of(repeats, lambda: [scalar_matcher.evaluate(x, y) for x, y in pairs])
    batched_s = _best_of(repeats, lambda: batched_matcher.evaluate_batch(pairs))
    return {
        "pairs": len(pairs),
        "scalar_wall_s": round(scalar_s, 6),
        "batched_wall_s": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "bit_identical": True,
    }


def _instance_bytes(factory, n: int) -> float:
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    instances = [factory() for _ in range(n)]
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    total = sum(stat.size_diff for stat in after.compare_to(before, "filename"))
    del instances
    return total / n


def _queue_throughput(ops: int, repeats: int) -> float:
    keys = [random.Random(5).random() for _ in range(ops)]

    def run() -> None:
        queue: BoundedPriorityQueue[int] = BoundedPriorityQueue(capacity=1024)
        for index, key in enumerate(keys):
            queue.enqueue(index, key)
        while queue:
            queue.dequeue()

    return ops / _best_of(repeats, run)


def _bench_slots() -> dict:
    slotted = _instance_bytes(BoundedPriorityQueue, CONFIG["queue_instances"])
    dict_backed = _instance_bytes(_DictBackedQueue, CONFIG["queue_instances"])
    return {
        "instances_sampled": CONFIG["queue_instances"],
        "bytes_per_instance_slots": round(slotted, 1),
        "bytes_per_instance_dict": round(dict_backed, 1),
        "bytes_saved_per_instance": round(dict_backed - slotted, 1),
        "enqueue_dequeue_ops_per_s": round(
            _queue_throughput(CONFIG["queue_ops"], CONFIG["repeats"]), 0
        ),
    }


def _bench_prioritization(dataset, repeats: int) -> dict:
    """Profiles/second through generate + I-WNP, sweep vs per-pair."""
    collection = BlockCollection(
        clean_clean=dataset.kind is ERKind.CLEAN_CLEAN,
        max_block_size=CONFIG["prioritization_max_block_size"],
    )
    for profile in dataset.profiles:
        collection.add_profile(profile)
    sample = dataset.profiles[-CONFIG["prioritization_profiles"]:]
    sources = {profile.pid: profile.source for profile in dataset.profiles}
    jobs = []
    for profile in sample:
        # Mirror the engine's predicates, including their self-describing
        # markers (PierSystem.valid_partner), so the benchmark measures the
        # pipeline exactly as the strategies drive it.
        if collection.clean_clean:
            valid = lambda pid, s=profile.source: sources[pid] != s
            valid.cross_source_only = True
        else:
            valid = lambda pid: True
            valid.always_true = True
        jobs.append((profile, valid))

    per_scheme = {}
    for scheme_name in CONFIG["schemes"]:
        scheme = make_scheme(scheme_name)
        sweep_gen = ComparisonGenerator(beta=CONFIG["beta"], scheme=scheme)
        pair_gen = ComparisonGenerator(beta=CONFIG["beta"], scheme=scheme, per_pair=True)

        def run_sweep():
            return [sweep_gen.generate(collection, p, v) for p, v in jobs]

        def run_per_pair():
            return [pair_gen.generate(collection, p, v) for p, v in jobs]

        mismatches = sum(1 for a, b in zip(run_sweep(), run_per_pair()) if a != b)
        if mismatches:
            raise AssertionError(
                f"{scheme_name}: sweep kernel diverged from per-pair weighting "
                f"on {mismatches}/{len(jobs)} profiles"
            )
        sweep_s = _best_of(repeats, run_sweep)
        pair_s = _best_of(repeats, run_per_pair)
        per_scheme[scheme_name] = {
            "profiles": len(jobs),
            "per_pair_wall_s": round(pair_s, 6),
            "sweep_wall_s": round(sweep_s, 6),
            "per_pair_profiles_per_s": round(len(jobs) / pair_s, 1),
            "sweep_profiles_per_s": round(len(jobs) / sweep_s, 1),
            "speedup": round(pair_s / sweep_s, 3),
            "bit_identical": True,
        }
    return per_scheme


def build_snapshot() -> dict:
    dataset = load_dataset(CONFIG["dataset"], scale=CONFIG["scale"])
    pairs = _sample_pairs(dataset, CONFIG["n_pairs"], CONFIG["sample_seed"])
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "config": CONFIG,
        "batched_matching": {
            name: _bench_matcher(name, pairs, CONFIG["repeats"])
            for name in CONFIG["matchers"]
        },
        "slots": _bench_slots(),
        "prioritization": _bench_prioritization(dataset, CONFIG["repeats"]),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="measure batched-kernel speedup and slots memory savings",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_BASELINE,
        help="baseline path (default: benchmarks/BENCH_perf.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline with this host's measurements",
    )
    args = parser.parse_args(argv)

    payload = build_snapshot()
    for name, entry in payload["batched_matching"].items():
        print(
            f"{name}: scalar={entry['scalar_wall_s']:.4f}s "
            f"batched={entry['batched_wall_s']:.4f}s "
            f"speedup={entry['speedup']:.2f}x"
        )
    slots = payload["slots"]
    print(
        f"slots: {slots['bytes_per_instance_slots']:.0f} B/queue vs "
        f"{slots['bytes_per_instance_dict']:.0f} B dict-backed "
        f"(saves {slots['bytes_saved_per_instance']:.0f} B), "
        f"{slots['enqueue_dequeue_ops_per_s']:.0f} queue ops/s"
    )

    for scheme_name, entry in payload["prioritization"].items():
        print(
            f"weighting[{scheme_name}]: per-pair={entry['per_pair_profiles_per_s']:.0f} "
            f"profiles/s sweep={entry['sweep_profiles_per_s']:.0f} profiles/s "
            f"speedup={entry['speedup']:.2f}x"
        )

    failures = []
    js_speedup = payload["batched_matching"]["JS"]["speedup"]
    if js_speedup < MIN_JS_SPEEDUP:
        failures.append(
            f"JS batched speedup {js_speedup:.2f}x below the {MIN_JS_SPEEDUP}x gate"
        )
    if slots["bytes_saved_per_instance"] <= 0:
        failures.append("slotted queue is not smaller than the dict-backed replica")
    cbs_sweep = payload["prioritization"]["CBS"]["speedup"]
    if cbs_sweep < MIN_CBS_SWEEP_SPEEDUP:
        failures.append(
            f"CBS sweep speedup {cbs_sweep:.2f}x below the "
            f"{MIN_CBS_SWEEP_SPEEDUP}x gate"
        )
    for scheme_name, entry in payload["prioritization"].items():
        if not entry["bit_identical"]:
            failures.append(f"{scheme_name}: sweep stream diverged from per-pair")

    if args.out.exists() and not args.update:
        baseline = json.loads(args.out.read_text())
        removed, added = diff_schema(baseline, payload)
        if removed or added:
            print("\nperf-schema drift detected against", args.out)
            for path in sorted(removed):
                print(f"  - removed: {path}")
            for path in sorted(added):
                print(f"  + added:   {path}")
            failures.append("schema drift (re-run with --update to accept)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1

    if args.update or not args.out.exists():
        args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.out}")
    else:
        print("\nperf gates passed (baseline untouched; use --update to refresh)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
