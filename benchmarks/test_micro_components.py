"""Micro-benchmarks of the substrate hot paths (wall-clock, pytest-benchmark).

These complement the figure reproductions: the virtual-time engine makes the
*experiments* machine-independent, while these measure the real throughput
of the data structures a production deployment would care about.
"""

from __future__ import annotations

import random

import pytest

from repro.blocking.blocks import BlockCollection
from repro.core.profile import EntityProfile
from repro.datasets.registry import load_dataset
from repro.matching.matcher import EditDistanceMatcher, JaccardMatcher
from repro.matching.similarity import levenshtein
from repro.metablocking.weights import CommonBlocksScheme
from repro.metablocking.wnp import incremental_wnp
from repro.pier.ipes import IPES
from repro.core.comparison import WeightedComparison
from repro.priority.bloom import ScalableBloomFilter
from repro.priority.bounded_pq import BoundedPriorityQueue


@pytest.fixture(scope="module")
def census():
    return load_dataset("census_2m", scale=0.3)


@pytest.fixture(scope="module")
def indexed_census(census):
    collection = BlockCollection(max_block_size=200)
    for profile in census:
        collection.add_profile(profile)
    return collection


def test_bench_tokenize_profile(benchmark, census):
    profiles = list(census)[:500]

    def tokenize_all():
        total = 0
        for profile in profiles:
            fresh = EntityProfile(profile.pid, profile.attributes)
            total += len(fresh.tokens())
        return total

    assert benchmark(tokenize_all) > 0


def test_bench_incremental_blocking(benchmark, census):
    profiles = list(census)[:800]

    def index_all():
        collection = BlockCollection(max_block_size=200)
        for profile in profiles:
            collection.add_profile(profile)
        return len(collection)

    assert benchmark(index_all) > 0


def test_bench_cbs_weighting(benchmark, census, indexed_census):
    scheme = CommonBlocksScheme()
    rng = random.Random(0)
    pids = [profile.pid for profile in census]
    pairs = [(rng.choice(pids), rng.choice(pids)) for _ in range(2000)]

    def weigh_all():
        return sum(
            scheme.weight(indexed_census, x, y) for x, y in pairs if x != y
        )

    benchmark(weigh_all)


def test_bench_iwnp(benchmark, census, indexed_census):
    rng = random.Random(1)
    pids = [profile.pid for profile in census]
    target = pids[0]
    candidates = rng.sample(pids[1:], 200)

    def clean():
        return incremental_wnp(indexed_census, target, candidates)

    result = benchmark(clean)
    assert result.total_candidates == 200


def test_bench_bounded_pq_enqueue_dequeue(benchmark):
    rng = random.Random(2)
    keys = [rng.random() for _ in range(5000)]

    def churn():
        queue = BoundedPriorityQueue(capacity=1024)
        for index, key in enumerate(keys):
            queue.enqueue(index, key)
        drained = 0
        while queue:
            queue.dequeue()
            drained += 1
        return drained

    assert benchmark(churn) <= 1024


def test_bench_scalable_bloom(benchmark):
    def fill_and_probe():
        bloom = ScalableBloomFilter(initial_capacity=1024)
        for i in range(20_000):
            bloom.add(i, i + 1)
        return sum(1 for i in range(20_000) if (i, i + 1) in bloom)

    assert benchmark(fill_and_probe) == 20_000


def test_bench_levenshtein_banded(benchmark):
    rng = random.Random(3)
    alphabet = "abcdefghij "
    texts = ["".join(rng.choice(alphabet) for _ in range(120)) for _ in range(60)]

    def measure():
        total = 0
        for i in range(0, len(texts) - 1, 2):
            total += levenshtein(texts[i], texts[i + 1], max_distance=36)
        return total

    assert benchmark(measure) > 0


def test_bench_matcher_js(benchmark, census):
    matcher = JaccardMatcher(0.35)
    profiles = list(census)[:400]

    def run_matcher():
        hits = 0
        for i in range(0, len(profiles) - 1, 2):
            hits += matcher.evaluate(profiles[i], profiles[i + 1]).is_match
        return hits

    benchmark(run_matcher)


def test_bench_matcher_ed(benchmark, census):
    matcher = EditDistanceMatcher(0.7)
    profiles = list(census)[:200]

    def run_matcher():
        hits = 0
        for i in range(0, len(profiles) - 1, 2):
            hits += matcher.evaluate(profiles[i], profiles[i + 1]).is_match
        return hits

    benchmark(run_matcher)


def test_bench_ipes_insert_dequeue(benchmark):
    rng = random.Random(4)
    comparisons = [
        WeightedComparison.of(rng.randrange(2000), 2000 + rng.randrange(2000), rng.random() * 10)
        for _ in range(5000)
    ]

    def churn():
        strategy = IPES()
        for weighted in comparisons:
            strategy._insert_weighted(weighted)
        drained = 0
        while strategy.dequeue() is not None:
            drained += 1
        return drained

    assert benchmark(churn) > 0
