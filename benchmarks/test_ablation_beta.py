"""Ablation: the block-ghosting parameter β.

β controls how many of a profile's blocks survive cleaning (keep blocks up
to ``|b_min|/β``): larger β prunes harder.  It is the central
selection-vs-quality knob shared by I-BASE and all PIER strategies — the
paper inherits it from the ICDE 2021 pipeline without sweeping it, so this
ablation quantifies the tradeoff: eventual PC of the per-increment
selection vs the number of comparisons generated.
"""

from __future__ import annotations

from repro.core.increments import make_stream_plan, split_into_increments
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import make_matcher
from repro.evaluation.reporting import format_table
from repro.incremental.ibase import IBaseSystem
from repro.pier.base import PierSystem
from repro.pier.ipes import IPES
from repro.streaming.engine import StreamingEngine

from benchmarks.helpers import report, run_once

BETAS = (0.5, 0.3, 0.2, 0.1)
BUDGET = 120.0


def _run_all():
    dataset = load_dataset("movies", scale=0.2)
    increments = split_into_increments(dataset, 60, seed=0)
    plan = make_stream_plan(increments, rate=8.0)
    rows = []
    ibase_pc = {}
    ibase_cmp = {}
    for beta in BETAS:
        ibase = IBaseSystem(clean_clean=True, beta=beta)
        result = StreamingEngine(make_matcher("JS"), budget=BUDGET).run(
            ibase, plan, dataset.ground_truth
        )
        ibase_pc[beta] = result.final_pc
        ibase_cmp[beta] = result.comparisons_executed
        rows.append(["I-BASE", beta, f"{result.final_pc:.3f}", result.comparisons_executed])

        # For PIER the idle refill masks β's effect on *eventual* quality,
        # so report its early quality instead (selection drives the start).
        pes = PierSystem(IPES(beta=beta), clean_clean=True)
        pes_result = StreamingEngine(make_matcher("JS"), budget=BUDGET).run(
            pes, plan, dataset.ground_truth
        )
        rows.append(
            [
                "I-PES",
                beta,
                f"{pes_result.curve.pc_at_time(plan.last_arrival):.3f} (PC@stream-end)",
                pes_result.comparisons_executed,
            ]
        )
    table = format_table(["system", "beta", "final PC / early PC", "comparisons"], rows)
    return table, ibase_pc, ibase_cmp


def test_ablation_beta(benchmark):
    table, ibase_pc, ibase_cmp = run_once(benchmark, _run_all)
    report("ablation_beta", table)
    # Smaller β keeps more blocks → strictly more selected comparisons …
    assert ibase_cmp[0.1] > ibase_cmp[0.5]
    # … and a (weakly) higher eventual PC for the non-refilling baseline.
    assert ibase_pc[0.1] >= ibase_pc[0.5]
