"""Chaos benchmark gate: ``python -m benchmarks.chaos``.

Runs the three PIER strategies (I-PCS, I-PBS, I-PES) through a *perturbed*
stream — seeded drops, redeliveries, reorders, bursts, profile corruption —
with a :class:`~repro.resilience.faults.FaultyMatcher` injecting transient
failures and latency spikes, on a serial engine configured with retry,
cost-ceiling quarantine, load shedding, and periodic checkpoints.  The
resulting observability snapshots are written to
``benchmarks/BENCH_chaos.json`` (wall-clock fields stripped, so the file is
byte-for-byte reproducible across hosts).

The target *fails* (exit code 1) when

* any strategy raises an uncaught exception under chaos — the resilience
  layer is expected to absorb every injected fault; or
* the metric schema drifts from the checked-in baseline (same contract as
  ``benchmarks.smoke``: re-run with ``--update`` and commit the refreshed
  baseline together with a ``docs/observability.md`` update).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import Sequence

from repro.api import ERSession
from repro.resilience import FaultSpec, ResilienceConfig, RetryPolicy

from benchmarks.smoke import diff_schema

BENCH_SCHEMA_VERSION = 1
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_chaos.json"

CONFIG = {
    "dataset": "dblp_acm",
    "scale": 0.2,
    "n_increments": 12,
    "rate": 5.0,
    "matcher": "ED",
    "budget": 10.0,
    "seed": 0,
    "fault_seed": 7,
    "systems": ["I-PCS", "I-PBS", "I-PES"],
    # max_attempts=2 (not the default 3) so retry exhaustion — and with it
    # the quarantine path — actually triggers at the injected failure rate.
    "resilience": {
        "max_attempts": 2,
        "cost_ceiling": 0.5,
        "shed_watermark": 8,
        "checkpoint_every": 2.0,
    },
}


def build_snapshot() -> dict:
    """Run the chaos configuration; raises if any strategy fails to finish."""
    knobs = CONFIG["resilience"]
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=knobs["max_attempts"]),
        cost_ceiling=knobs["cost_ceiling"],
        shed_watermark=knobs["shed_watermark"],
        checkpoint_every=knobs["checkpoint_every"],
    )
    with ERSession(
        CONFIG["dataset"],
        systems=tuple(CONFIG["systems"]),
        matcher=CONFIG["matcher"],
        scale=CONFIG["scale"],
        n_increments=CONFIG["n_increments"],
        rate=CONFIG["rate"],
        budget=CONFIG["budget"],
        seed=CONFIG["seed"],
        faults=FaultSpec.chaos(CONFIG["fault_seed"]),
        resilience=resilience,
    ) as session:
        results = session.compare()
        report = session.fault_reports[0]
    print(report.summary())
    systems: dict[str, dict] = {}
    for name, result in results.items():
        metrics = dict(result.details["metrics"])
        metrics["phases"] = {
            phase: {key: value for key, value in totals.items() if key != "wall_s"}
            for phase, totals in metrics["phases"].items()
        }
        resilience_report = dict(result.details["resilience"])
        resilience_report["quarantined_pairs"] = len(resilience_report["quarantined_pairs"])
        systems[name] = {
            "final_pc": result.final_pc,
            "comparisons_executed": result.comparisons_executed,
            "clock_end": result.clock_end,
            "increments_ingested": result.increments_ingested,
            "work_exhausted": result.work_exhausted,
            "resilience": resilience_report,
            "metrics": metrics,
        }
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "config": CONFIG,
        "faults": {
            "dropped": len(report.dropped),
            "duplicated": len(report.duplicated),
            "emptied": len(report.emptied),
            "reordered_swaps": report.reordered_swaps,
            "coalesced_bursts": report.coalesced_bursts,
            "corrupted_profiles": report.corrupted_profiles,
        },
        "systems": systems,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.chaos",
        description="run the PIER strategies under seeded chaos and check metric-schema drift",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_BASELINE,
        help="baseline path (default: benchmarks/BENCH_chaos.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="accept schema drift and rewrite the baseline",
    )
    args = parser.parse_args(argv)

    try:
        payload = build_snapshot()
    except Exception:
        traceback.print_exc()
        print("\nchaos run raised — the resilience layer must absorb injected faults")
        return 1

    for name, entry in payload["systems"].items():
        resil = entry["resilience"]
        print(
            f"{name}: PC={entry['final_pc']:.3f} "
            f"comparisons={entry['comparisons_executed']} "
            f"retries={resil['retries']} "
            f"quarantined={resil['quarantined_pairs']} "
            f"shed={resil['shed_increments']} "
            f"checkpoints={resil['checkpoints_taken']}"
        )

    if args.out.exists() and not args.update:
        baseline = json.loads(args.out.read_text())
        removed, added = diff_schema(baseline, payload)
        if removed or added:
            print("\nmetric-schema drift detected against", args.out)
            for path in sorted(removed):
                print(f"  - removed: {path}")
            for path in sorted(added):
                print(f"  + added:   {path}")
            print("re-run with --update to accept the new schema")
            return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
