"""Chaos benchmark gate: ``python -m benchmarks.chaos``.

Two chaos surfaces, both seeded and bit-reproducible:

**Stream + matcher chaos** — the three PIER strategies (I-PCS, I-PBS,
I-PES) run through a *perturbed* stream — seeded drops, redeliveries,
reorders, bursts, profile corruption — with a
:class:`~repro.resilience.faults.FaultyMatcher` injecting transient
failures and latency spikes, on a serial engine configured with retry,
cost-ceiling quarantine, load shedding, and periodic checkpoints.

**Worker-fleet chaos** — the same engine on a 2-worker matching fleet
whose workers are condemned on an explicit seeded schedule
(:class:`~repro.resilience.faults.WorkerFaultSpec`): SIGKILL mid-round, a
hang past the reply deadline, a corrupt reply.  The supervision layer
(:mod:`repro.parallel.supervision`) must absorb every fault — each
scenario's curve, stripped metrics, and mid-run checkpoint fingerprint
are asserted *bit-identical* to the serial (``workers=1``) reference, and
the fleet must heal back to full configured width afterwards.

The resulting observability snapshots are written to
``benchmarks/BENCH_chaos.json`` (wall-clock fields stripped, so the file is
byte-for-byte reproducible across hosts).

The target *fails* (exit code 1) when

* any strategy raises an uncaught exception under chaos — the resilience
  layer is expected to absorb every injected fault; or
* a worker-fault scenario diverges from the serial reference, leaves the
  fleet short-handed, or fires different supervision counters than its
  schedule implies; or
* the metric schema drifts from the checked-in baseline (same contract as
  ``benchmarks.smoke``: re-run with ``--update`` and commit the refreshed
  baseline together with a ``docs/observability.md`` update).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import Sequence

from repro.api import EngineOptions, ERSession
from repro.parallel import strip_parallel_telemetry
from repro.resilience import FaultSpec, ResilienceConfig, RetryPolicy, WorkerFaultSpec

from benchmarks.smoke import diff_schema

BENCH_SCHEMA_VERSION = 1
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_chaos.json"

CONFIG = {
    "dataset": "dblp_acm",
    "scale": 0.2,
    "n_increments": 12,
    "rate": 5.0,
    "matcher": "ED",
    "budget": 10.0,
    "seed": 0,
    "fault_seed": 7,
    "systems": ["I-PCS", "I-PBS", "I-PES"],
    # Candidate-generation substrate; chaos pins token blocking (the LSH
    # tier is exercised and gated in benchmarks.perf).
    "blocking": "token",
    # max_attempts=2 (not the default 3) so retry exhaustion — and with it
    # the quarantine path — actually triggers at the injected failure rate.
    "resilience": {
        "max_attempts": 2,
        "cost_ceiling": 0.5,
        "shed_watermark": 8,
        "checkpoint_every": 2.0,
    },
}

#: Worker-fleet chaos scenarios: explicit ``(slot, request ordinal)``
#: schedules (at most one fault per slot, so round arithmetic — and with
#: it every supervision counter below — is fully deterministic).  The
#: ``expect`` counters are the schedule spelled out: the gate fails if the
#: run's supervision telemetry differs.
WORKER_FAULT_CONFIG = {
    "dataset": "dblp_acm",
    "scale": 0.2,
    "n_increments": 12,
    "rate": 5.0,
    "matcher": "ED",
    "budget": 10.0,
    "seed": 0,
    "system": "I-PES",
    "workers": 2,
    "checkpoint_every": 2.0,
    "reply_timeout_s": 1.0,
    "min_shard": 1,
    # Every fault fires at request ordinal 2 — before any eviction can
    # change the request distribution — so each scenario's supervision
    # counters are identical on every host.
    "scenarios": {
        "kill": {
            "spec": {"kill_on": [[0, 2], [1, 2]]},
            "expect": {"evictions": 2, "reassigned_chunks": 2, "reply_timeouts": 0},
        },
        "hang": {
            "spec": {"hang_on": [[1, 2]], "hang_s": 30.0},
            "expect": {"evictions": 1, "reassigned_chunks": 1, "reply_timeouts": 1},
        },
        "corrupt": {
            "spec": {"corrupt_on": [[0, 2], [1, 2]]},
            "expect": {"evictions": 2, "reassigned_chunks": 2, "reply_timeouts": 0},
        },
    },
}


def _comparable_surface(result) -> dict:
    """Everything observable about a run except wall clocks and the
    parallel telemetry (the documented worker-count divergence surface)."""
    metrics = strip_parallel_telemetry(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    return {
        "curve": result.curve.points,
        "duplicates": result.duplicates,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "match_events": result.match_events,
        "metrics": metrics,
    }


def _checkpoint_fingerprint(checkpoint):
    """The deterministic portion of a mid-run checkpoint (wall clocks go);
    ``metrics_state`` is compared without stripping — supervision telemetry
    must never leak into a checkpoint."""
    if checkpoint is None:
        return None
    metrics_state = dict(checkpoint.metrics_state)
    metrics_state["phases"] = {
        phase: (virtual_s, count)
        for phase, (virtual_s, _wall_s, count) in metrics_state["phases"].items()
    }
    return (
        checkpoint.engine,
        checkpoint.clock,
        checkpoint.rounds,
        checkpoint.ingested,
        checkpoint.duplicates,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        metrics_state,
    )


def _worker_chaos_session(worker_faults: WorkerFaultSpec | None, workers: int) -> ERSession:
    config = WORKER_FAULT_CONFIG
    return ERSession(
        config["dataset"],
        systems=(config["system"],),
        matcher=config["matcher"],
        scale=config["scale"],
        n_increments=config["n_increments"],
        rate=config["rate"],
        budget=config["budget"],
        seed=config["seed"],
        checkpoint_every=config["checkpoint_every"],
        worker_faults=worker_faults,
        engine=EngineOptions(
            workers=workers,
            reply_timeout_s=config["reply_timeout_s"],
            min_shard=config["min_shard"],
        ),
    )


def build_worker_faults_section() -> dict:
    """Run every worker-fault scenario against the serial reference.

    Raises when any scenario breaks the supervision invariant — results
    and checkpoint fingerprints must be bit-identical to ``workers=1``
    under every fault schedule, with the fleet healed to full width.
    """
    config = WORKER_FAULT_CONFIG
    with _worker_chaos_session(None, workers=1) as session:
        reference = session.run()
        reference_fingerprint = _checkpoint_fingerprint(session.last_checkpoint)
    reference_surface = _comparable_surface(reference)

    scenarios: dict[str, dict] = {}
    for name, scenario in config["scenarios"].items():
        raw = scenario["spec"]
        spec = WorkerFaultSpec(
            kill_on=tuple(map(tuple, raw.get("kill_on", ()))),
            hang_on=tuple(map(tuple, raw.get("hang_on", ()))),
            corrupt_on=tuple(map(tuple, raw.get("corrupt_on", ()))),
            hang_s=raw.get("hang_s", 30.0),
        )
        with _worker_chaos_session(spec, workers=config["workers"]) as session:
            result = session.run()
            fingerprint = _checkpoint_fingerprint(session.last_checkpoint)
            pool = session._pool
            if pool is None:
                raise RuntimeError(
                    "worker pool unavailable: the worker-fault scenarios "
                    "need a live fleet to condemn"
                )
            recovered = pool.heal() == pool.size
        counters = result.details["metrics"]["counters"]
        observed = {
            "evictions": counters["parallel.supervision.evictions"],
            "reassigned_chunks": counters["parallel.supervision.reassigned_chunks"],
            "reply_timeouts": counters["parallel.supervision.reply_timeouts"],
        }
        results_identical = _comparable_surface(result) == reference_surface
        checkpoint_identical = fingerprint == reference_fingerprint
        if not results_identical:
            raise AssertionError(
                f"worker-fault scenario {name!r} changed the result surface "
                "— supervision must change where pairs are scored, never what"
            )
        if not checkpoint_identical:
            raise AssertionError(
                f"worker-fault scenario {name!r} changed the mid-run "
                "checkpoint fingerprint"
            )
        if not recovered:
            raise AssertionError(
                f"worker-fault scenario {name!r} left the fleet short-handed"
            )
        if observed != scenario["expect"]:
            raise AssertionError(
                f"worker-fault scenario {name!r} supervision counters "
                f"{observed} != scheduled {scenario['expect']}"
            )
        scenarios[name] = {
            "schedule": raw,
            "supervision": observed,
            "results_identical": results_identical,
            "checkpoint_identical": checkpoint_identical,
            "fleet_recovered": recovered,
        }
    return {
        "config": {key: value for key, value in config.items() if key != "scenarios"},
        "scenarios": scenarios,
    }


def build_snapshot() -> dict:
    """Run the chaos configuration; raises if any strategy fails to finish."""
    knobs = CONFIG["resilience"]
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=knobs["max_attempts"]),
        cost_ceiling=knobs["cost_ceiling"],
        shed_watermark=knobs["shed_watermark"],
        checkpoint_every=knobs["checkpoint_every"],
    )
    with ERSession(
        CONFIG["dataset"],
        systems=tuple(CONFIG["systems"]),
        matcher=CONFIG["matcher"],
        scale=CONFIG["scale"],
        n_increments=CONFIG["n_increments"],
        rate=CONFIG["rate"],
        budget=CONFIG["budget"],
        seed=CONFIG["seed"],
        faults=FaultSpec.chaos(CONFIG["fault_seed"]),
        resilience=resilience,
        engine=EngineOptions(blocking=CONFIG["blocking"]),
    ) as session:
        results = session.compare()
        report = session.fault_reports[0]
    print(report.summary())
    systems: dict[str, dict] = {}
    for name, result in results.items():
        metrics = dict(result.details["metrics"])
        metrics["phases"] = {
            phase: {key: value for key, value in totals.items() if key != "wall_s"}
            for phase, totals in metrics["phases"].items()
        }
        resilience_report = dict(result.details["resilience"])
        resilience_report["quarantined_pairs"] = len(resilience_report["quarantined_pairs"])
        systems[name] = {
            "final_pc": result.final_pc,
            "comparisons_executed": result.comparisons_executed,
            "clock_end": result.clock_end,
            "increments_ingested": result.increments_ingested,
            "work_exhausted": result.work_exhausted,
            "resilience": resilience_report,
            "metrics": metrics,
        }
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "config": CONFIG,
        "faults": {
            "dropped": len(report.dropped),
            "duplicated": len(report.duplicated),
            "emptied": len(report.emptied),
            "reordered_swaps": report.reordered_swaps,
            "coalesced_bursts": report.coalesced_bursts,
            "corrupted_profiles": report.corrupted_profiles,
        },
        "systems": systems,
        "worker_faults": build_worker_faults_section(),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.chaos",
        description="run the PIER strategies under seeded chaos and check metric-schema drift",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_BASELINE,
        help="baseline path (default: benchmarks/BENCH_chaos.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="accept schema drift and rewrite the baseline",
    )
    args = parser.parse_args(argv)

    try:
        payload = build_snapshot()
    except Exception:
        traceback.print_exc()
        print("\nchaos run raised — the resilience layer must absorb injected faults")
        return 1

    for name, entry in payload["systems"].items():
        resil = entry["resilience"]
        print(
            f"{name}: PC={entry['final_pc']:.3f} "
            f"comparisons={entry['comparisons_executed']} "
            f"retries={resil['retries']} "
            f"quarantined={resil['quarantined_pairs']} "
            f"shed={resil['shed_increments']} "
            f"checkpoints={resil['checkpoints_taken']}"
        )
    for name, entry in payload["worker_faults"]["scenarios"].items():
        supervision = entry["supervision"]
        print(
            f"worker-faults/{name}: evictions={supervision['evictions']} "
            f"rescued={supervision['reassigned_chunks']} "
            f"reply_timeouts={supervision['reply_timeouts']} "
            f"bit_identical={entry['results_identical'] and entry['checkpoint_identical']} "
            f"fleet_recovered={entry['fleet_recovered']}"
        )

    if args.out.exists() and not args.update:
        baseline = json.loads(args.out.read_text())
        removed, added = diff_schema(baseline, payload)
        if removed or added:
            print("\nmetric-schema drift detected against", args.out)
            for path in sorted(removed):
                print(f"  - removed: {path}")
            for path in sorted(added):
                print(f"  + added:   {path}")
            print("re-run with --update to accept the new schema")
            return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
