"""Extension: irregular (Poisson) arrivals and pipelined execution.

The paper's problem statement allows increments "at a possibly varying
rate"; its deployment is task parallel.  This benchmark checks both
extensions: PIER's adaptivity carries over from fixed-rate to Poisson
arrivals of the same mean rate, and the two-stage pipelined engine consumes
the stream no later than the serial engine.
"""

from __future__ import annotations

from repro.core.increments import (
    make_poisson_stream_plan,
    make_stream_plan,
    split_into_increments,
)
from repro.datasets.registry import load_dataset
from repro.evaluation.experiments import make_matcher, make_system
from repro.evaluation.reporting import summary_table
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

from benchmarks.helpers import report, run_once

BUDGET = 60.0
RATE = 16.0


def _run_all():
    dataset = load_dataset("dbpedia", scale=0.3)
    increments = split_into_increments(dataset, 120, seed=0)
    fixed_plan = make_stream_plan(increments, rate=RATE)
    poisson_plan = make_poisson_stream_plan(increments, rate=RATE, seed=5)
    results = {}
    for label, plan, engine_factory in (
        ("fixed/serial", fixed_plan, StreamingEngine),
        ("poisson/serial", poisson_plan, StreamingEngine),
        ("poisson/pipelined", poisson_plan, PipelinedStreamingEngine),
    ):
        engine = engine_factory(make_matcher("ED"), budget=BUDGET)
        results[label] = engine.run(
            make_system("I-PES", dataset), plan, dataset.ground_truth
        )
    return results


def test_extension_varying_rate_and_pipelining(benchmark):
    results = run_once(benchmark, _run_all)
    report("extension_varying_rate", summary_table(results))

    fixed = results["fixed/serial"]
    poisson = results["poisson/serial"]
    pipelined = results["poisson/pipelined"]

    # Adaptivity carries over: similar quality under irregular arrivals.
    assert abs(poisson.final_pc - fixed.final_pc) < 0.2
    # The pipelined engine never consumes the stream later than the serial
    # engine, and never loses quality.
    assert pipelined.stream_consumed_at is not None
    if poisson.stream_consumed_at is not None:
        assert pipelined.stream_consumed_at <= poisson.stream_consumed_at + 1e-9
    assert pipelined.curve.area_under_curve(BUDGET) >= poisson.curve.area_under_curve(
        BUDGET
    ) - 0.05
