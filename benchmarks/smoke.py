"""Fast benchmark smoke target: ``python -m benchmarks.smoke``.

Runs one small deterministic stream through the three PIER strategies
(I-PCS, I-PBS, I-PES) on the serial engine and writes the resulting
observability snapshots to ``benchmarks/BENCH_smoke.json`` — the first data
point of the perf trajectory.  All recorded quantities are virtual-clock
derived (wall-clock fields are stripped), so the file is byte-for-byte
reproducible across hosts and any diff under git is a real behavior change.

The target *fails* (exit code 1) when the metric schema drifts from the
checked-in baseline: top-level keys, counter/gauge/phase names or per-round
sample fields that appear or disappear must be acknowledged by re-running
with ``--update`` and committing the refreshed baseline together with a
``docs/observability.md`` update.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.api import EngineOptions, ERSession

BENCH_SCHEMA_VERSION = 1
DEFAULT_BASELINE = Path(__file__).parent / "BENCH_smoke.json"

CONFIG = {
    "dataset": "dblp_acm",
    "scale": 0.2,
    "n_increments": 10,
    "rate": 5.0,
    # ED is costly enough that a 10s virtual budget leaves the run
    # budget-bound (work_exhausted=False), so the baseline actually
    # exercises prioritization and deadline-cut accounting.
    "matcher": "ED",
    "budget": 10.0,
    "seed": 0,
    "systems": ["I-PCS", "I-PBS", "I-PES"],
    # The candidate-generation substrate (token / lsh / lsh-prefilter).
    # The smoke baseline pins the paper's token blocking; the LSH tier has
    # its own gated section in benchmarks.perf.
    "blocking": "token",
}


def build_snapshot() -> dict:
    """Run the smoke configuration and collect one entry per system."""
    with ERSession(
        CONFIG["dataset"],
        systems=tuple(CONFIG["systems"]),
        matcher=CONFIG["matcher"],
        engine=EngineOptions(blocking=CONFIG["blocking"]),
        scale=CONFIG["scale"],
        n_increments=CONFIG["n_increments"],
        rate=CONFIG["rate"],
        budget=CONFIG["budget"],
        seed=CONFIG["seed"],
    ) as session:
        results = session.compare()
    systems: dict[str, dict] = {}
    for name, result in results.items():
        metrics = dict(result.details["metrics"])
        # Rebuild the snapshot without host-dependent wall-clock fields.
        metrics["phases"] = {
            phase: {key: value for key, value in totals.items() if key != "wall_s"}
            for phase, totals in metrics["phases"].items()
        }
        systems[name] = {
            "final_pc": result.final_pc,
            "comparisons_executed": result.comparisons_executed,
            "clock_end": result.clock_end,
            "increments_ingested": result.increments_ingested,
            "work_exhausted": result.work_exhausted,
            "metrics": metrics,
        }
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "config": CONFIG,
        "systems": systems,
    }


def schema_paths(obj: object, prefix: str = "") -> set[str]:
    """Flattened key paths describing the *structure* of a payload.

    Values are ignored; lists contribute the union of their element
    structures under ``[]`` so sample-count changes do not register.
    """
    paths: set[str] = set()
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.add(path)
            paths |= schema_paths(value, path)
    elif isinstance(obj, list):
        for value in obj:
            paths |= schema_paths(value, f"{prefix}[]")
    return paths


def diff_schema(baseline: dict, current: dict) -> tuple[set[str], set[str]]:
    """(removed, added) schema paths between baseline and current payloads."""
    old = schema_paths(baseline)
    new = schema_paths(current)
    return old - new, new - old


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.smoke",
        description="run the benchmark smoke suite and check metric-schema drift",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_BASELINE,
        help="baseline path (default: benchmarks/BENCH_smoke.json)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="accept schema drift and rewrite the baseline",
    )
    args = parser.parse_args(argv)

    payload = build_snapshot()
    for name, entry in payload["systems"].items():
        print(
            f"{name}: PC={entry['final_pc']:.3f} "
            f"comparisons={entry['comparisons_executed']} "
            f"clock_end={entry['clock_end']:.3f}s"
        )

    if args.out.exists() and not args.update:
        baseline = json.loads(args.out.read_text())
        removed, added = diff_schema(baseline, payload)
        if removed or added:
            print("\nmetric-schema drift detected against", args.out)
            for path in sorted(removed):
                print(f"  - removed: {path}")
            for path in sorted(added):
                print(f"  + added:   {path}")
            print("re-run with --update to accept the new schema")
            return 1

    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
