"""Tests for the LS-PSN / GS-PSN progressive baselines (extensions)."""

from __future__ import annotations

import pytest

from repro.core.increments import Increment
from repro.progressive.psn import GSPSNSystem, LSPSNSystem
from repro.streaming.system import PipelineStats

from tests.conftest import make_profile


def _stats() -> PipelineStats:
    return PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)


def _drain(system, max_rounds=300):
    pairs = []
    empty_streak = 0
    for _ in range(max_rounds):
        result = system.emit(_stats())
        pairs.extend(result.batch)
        if result.batch:
            empty_streak = 0
            continue
        empty_streak += 1
        if empty_streak >= 2:
            break
    return pairs


PROFILES = (
    make_profile(0, "aardvark"),
    make_profile(1, "aardvark"),
    make_profile(2, "zebra"),
    make_profile(3, "zebra"),
    make_profile(4, "aardvark zebra"),
)


class TestLSPSN:
    def test_window_one_pairs_first(self):
        system = LSPSNSystem()
        system.ingest(Increment(0, PROFILES))
        system.emit(_stats())  # init
        pairs = _drain(system)
        # adjacent-in-array pairs (token neighbors) come before distant ones
        assert (0, 1) in pairs[:4]
        assert (2, 3) in pairs[:6]

    def test_no_duplicate_pairs(self):
        system = LSPSNSystem()
        system.ingest(Increment(0, PROFILES))
        system.emit(_stats())
        pairs = _drain(system)
        assert len(pairs) == len(set(pairs))

    def test_window_cap(self):
        tight = LSPSNSystem(max_window=1)
        tight.ingest(Increment(0, PROFILES))
        tight.emit(_stats())
        wide = LSPSNSystem(max_window=10)
        wide.ingest(Increment(0, PROFILES))
        wide.emit(_stats())
        assert len(_drain(tight)) <= len(_drain(wide))

    def test_validation(self):
        with pytest.raises(ValueError):
            LSPSNSystem(max_window=0)

    def test_clean_clean_filter(self):
        system = LSPSNSystem(clean_clean=True)
        profiles = (
            make_profile(0, "tok", source=0),
            make_profile(1, "tok", source=0),
            make_profile(2, "tok", source=1),
        )
        system.ingest(Increment(0, profiles))
        system.emit(_stats())
        assert set(_drain(system)) <= {(0, 2), (1, 2)}


class TestGSPSN:
    def test_frequent_coocurrence_first(self):
        system = GSPSNSystem(max_window=4)
        system.ingest(Increment(0, PROFILES))
        system.emit(_stats())
        pairs = _drain(system)
        assert pairs  # emits something
        # profile 4 co-occurs in both token neighborhoods → its pairs and the
        # same-token pairs carry the highest frequencies
        assert set(pairs[:3]) & {(0, 1), (2, 3), (0, 4), (1, 4), (2, 4), (3, 4)}

    def test_init_heavier_than_lspsn(self):
        profiles = tuple(make_profile(i, f"shared tok{i % 4}") for i in range(40))
        ls, gs = LSPSNSystem(), GSPSNSystem()
        ls.ingest(Increment(0, profiles))
        gs.ingest(Increment(0, profiles))
        assert gs.emit(_stats()).cost > ls.emit(_stats()).cost

    def test_validation(self):
        with pytest.raises(ValueError):
            GSPSNSystem(max_window=0)

    def test_runs_via_factory(self, toy_dirty_dataset):
        from repro.evaluation.experiments import make_system

        for name in ("LS-PSN", "GS-PSN"):
            system = make_system(name, toy_dirty_dataset)
            assert system.name == name
