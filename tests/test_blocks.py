"""Tests for blocks and the incremental block collection."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.blocks import Block, BlockCollection
from repro.core.profile import EntityProfile

from tests.conftest import make_profile


class TestBlock:
    def test_add_and_len(self):
        block = Block("tok")
        block.add(1, 0)
        block.add(2, 1)
        assert len(block) == 2
        assert set(block) == {1, 2}

    def test_members_by_source(self):
        block = Block("tok")
        block.add(1, 0)
        block.add(2, 1)
        block.add(3, 1)
        assert block.members(0) == (1,)
        assert block.members(1) == (2, 3)
        assert block.members(9) == ()

    def test_members_snapshot_cannot_corrupt_index(self):
        """members() hands out a copy; mutating it must not touch the block."""
        block = Block("tok")
        block.add(1, 0)
        block.add(2, 0)
        snapshot = block.members(0)
        assert isinstance(snapshot, tuple)  # immutable — no .append to misuse
        assert block.members(0) == (1, 2)
        assert len(block) == 2

    def test_comparison_count_cache_invalidated_on_add(self):
        block = Block("tok")
        block.add(1, 0)
        block.add(2, 0)
        assert block.comparison_count(clean_clean=False) == 1
        block.add(3, 0)
        assert block.comparison_count(clean_clean=False) == 3
        # switching the kind must not serve the stale cached value
        block_cc = Block("tok2")
        block_cc.add(1, 0)
        block_cc.add(2, 1)
        assert block_cc.comparison_count(clean_clean=False) == 1
        assert block_cc.comparison_count(clean_clean=True) == 1
        block_cc.add(3, 1)
        assert block_cc.comparison_count(clean_clean=True) == 2
        assert block_cc.comparison_count(clean_clean=False) == 3

    def test_comparison_count_dirty(self):
        block = Block("tok")
        for pid in range(4):
            block.add(pid, 0)
        assert block.comparison_count(clean_clean=False) == 6

    def test_comparison_count_clean_clean(self):
        block = Block("tok")
        block.add(1, 0)
        block.add(2, 0)
        block.add(3, 1)
        assert block.comparison_count(clean_clean=True) == 2

    def test_pairs_dirty(self):
        block = Block("tok")
        for pid in (1, 2, 3):
            block.add(pid, 0)
        assert set(block.pairs(False)) == {(1, 2), (1, 3), (2, 3)}

    def test_pairs_clean_clean_cross_source_only(self):
        block = Block("tok")
        block.add(1, 0)
        block.add(2, 0)
        block.add(3, 1)
        assert set(block.pairs(True)) == {(1, 3), (2, 3)}


class TestBlockCollection:
    def test_add_profile_indexes_tokens(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha beta"))
        assert "alpha" in collection
        assert collection.blocks_of(1) == {"alpha", "beta"}

    def test_readd_rejected(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha"))
        with pytest.raises(ValueError):
            collection.add_profile(make_profile(1, "alpha"))

    def test_common_blocks(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha beta gamma"))
        collection.add_profile(make_profile(2, "beta gamma delta"))
        assert collection.common_blocks(1, 2) == 2
        assert collection.common_blocks(1, 99) == 0

    def test_purging_drops_oversized_blocks(self):
        collection = BlockCollection(max_block_size=3)
        for pid in range(5):
            collection.add_profile(make_profile(pid, "shared unique%d" % pid))
        assert "shared" not in collection
        assert all("shared" not in collection.blocks_of(pid) for pid in range(5))
        assert "shared" in collection.purged_keys()

    def test_purged_token_not_reindexed(self):
        collection = BlockCollection(max_block_size=2)
        for pid in range(4):
            collection.add_profile(make_profile(pid, "common extra%d" % pid))
        # after purge, new arrivals with the token must not recreate the block
        collection.add_profile(make_profile(10, "common fresh"))
        assert "common" not in collection
        assert collection.blocks_of(10) == {"fresh"}

    def test_max_block_size_validation(self):
        with pytest.raises(ValueError):
            BlockCollection(max_block_size=1)

    def test_total_comparisons_dirty_incremental(self):
        collection = BlockCollection(max_block_size=None)
        for pid in range(4):
            collection.add_profile(make_profile(pid, "shared"))
        assert collection.total_comparisons() == 6

    def test_total_comparisons_clean_clean(self):
        collection = BlockCollection(clean_clean=True, max_block_size=None)
        collection.add_profile(make_profile(0, "shared", source=0))
        collection.add_profile(make_profile(1, "shared", source=0))
        collection.add_profile(make_profile(2, "shared", source=1))
        assert collection.total_comparisons() == 2

    def test_total_comparisons_after_purge(self):
        collection = BlockCollection(max_block_size=2)
        for pid in range(4):
            collection.add_profile(make_profile(pid, "common only%d" % pid))
        # 'common' purged on 3rd insert; remaining blocks are singletons
        assert collection.total_comparisons() == 0

    def test_blocks_of_as_blocks(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha beta"))
        blocks = collection.blocks_of_as_blocks(1)
        assert {block.key for block in blocks} == {"alpha", "beta"}

    def test_profiles_indexed(self):
        collection = BlockCollection()
        assert collection.profiles_indexed() == 0
        collection.add_profile(make_profile(1, "alpha"))
        assert collection.profiles_indexed() == 1
        assert collection.is_indexed(1)
        assert not collection.is_indexed(2)

    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=30))
    @settings(max_examples=60)
    def test_total_comparisons_invariant(self, token_choices):
        """The incremental counter must always equal the from-scratch sum."""
        collection = BlockCollection(max_block_size=4)
        for pid, token_index in enumerate(token_choices):
            profile = EntityProfile(pid, {"v": f"tok{token_index} own{pid}"})
            collection.add_profile(profile)
        recomputed = sum(
            block.comparison_count(collection.clean_clean) for block in collection
        )
        assert collection.total_comparisons() == recomputed

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.booleans()),
            max_size=25,
        )
    )
    @settings(max_examples=60)
    def test_total_comparisons_invariant_clean_clean(self, entries):
        collection = BlockCollection(clean_clean=True, max_block_size=5)
        for pid, (token_index, source) in enumerate(entries):
            profile = EntityProfile(pid, {"v": f"tok{token_index}"}, source=int(source))
            collection.add_profile(profile)
        recomputed = sum(
            block.comparison_count(collection.clean_clean) for block in collection
        )
        assert collection.total_comparisons() == recomputed

    def test_key_id_dense_interning(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha beta"))
        collection.add_profile(make_profile(2, "beta gamma"))
        ids = {key: collection.key_id(key) for key in ("alpha", "beta", "gamma")}
        assert sorted(ids.values()) == [0, 1, 2]
        # interning is stable: asking again returns the same id
        assert collection.key_id("beta") == ids["beta"]
        for key, kid in ids.items():
            assert collection.get(key).bid == kid

    def test_block_count_of_matches_blocks_of(self):
        collection = BlockCollection(max_block_size=3)
        for pid in range(5):
            collection.add_profile(make_profile(pid, "shared own%d" % pid))
        for pid in range(5):
            assert collection.block_count_of(pid) == len(collection.blocks_of(pid))
        assert collection.block_count_of(99) == 0

    def test_iter_partner_blocks_skips_purged_and_sorted(self):
        collection = BlockCollection(max_block_size=3)
        for pid in range(5):
            collection.add_profile(make_profile(pid, "zzshared aaown%d" % pid))
        blocks = collection.iter_partner_blocks(0)
        assert [block.key for block in blocks] == ["aaown0"]  # purged 'zzshared' gone
        # cache refreshes after a purge triggered by later arrivals
        collection.add_profile(make_profile(10, "aaown0 fresh"))
        collection.add_profile(make_profile(11, "aaown0 other"))
        collection.add_profile(make_profile(12, "aaown0 more"))
        assert [block.key for block in collection.iter_partner_blocks(0)] == []

    def test_partner_counts_dirty(self):
        collection = BlockCollection(max_block_size=None)
        collection.add_profile(make_profile(1, "alpha beta"))
        collection.add_profile(make_profile(2, "beta gamma"))
        collection.add_profile(make_profile(3, "alpha beta gamma"))
        counts = collection.partner_counts(1)
        assert counts == {2: 1, 3: 2}
        assert 1 not in counts

    def test_partner_counts_clean_clean_cross_source(self):
        collection = BlockCollection(clean_clean=True, max_block_size=None)
        collection.add_profile(make_profile(1, "alpha beta", source=0))
        collection.add_profile(make_profile(2, "alpha beta", source=0))
        collection.add_profile(make_profile(3, "alpha", source=1))
        counts = collection.partner_counts(1, source=0)
        assert counts == {3: 1}  # same-source partner 2 excluded

    def test_inverse_index_consistency(self):
        collection = BlockCollection(max_block_size=10)
        for pid in range(8):
            collection.add_profile(make_profile(pid, f"shared tok{pid % 3}"))
        for block in collection:
            for pid in block:
                assert block.key in collection.blocks_of(pid)


class TestBlocksOfImmutableView:
    """Regression: ``blocks_of`` used to hand out the live internal key set,
    which purges mutate in place — callers holding the return value saw it
    change under them (and could corrupt the index by mutating it back)."""

    def test_returns_frozenset(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha beta"))
        view = collection.blocks_of(1)
        assert isinstance(view, frozenset)
        assert collection.blocks_of(99) == frozenset()

    def test_snapshot_survives_later_purge(self):
        collection = BlockCollection(max_block_size=3)
        collection.add_profile(make_profile(0, "shared own0"))
        snapshot = collection.blocks_of(0)
        assert snapshot == {"shared", "own0"}
        for pid in range(1, 5):  # 4th 'shared' member triggers the purge
            collection.add_profile(make_profile(pid, "shared own%d" % pid))
        assert "shared" in snapshot  # caller's snapshot is frozen in time
        assert "shared" not in collection.blocks_of(0)

    def test_view_cannot_mutate_index(self):
        collection = BlockCollection()
        collection.add_profile(make_profile(1, "alpha"))
        view = collection.blocks_of(1)
        with pytest.raises(AttributeError):
            view.add("rogue")
        assert collection.blocks_of(1) == {"alpha"}


class TestPurgeReAddInteraction:
    """``max_block_size`` purging against later/updated arrivals: purged keys
    are blacklisted forever, dense ids stay reserved, and the incremental
    comparison counter stays consistent through every interleaving."""

    def test_updated_profile_does_not_resurrect_purged_key(self):
        collection = BlockCollection(max_block_size=2)
        for pid in range(4):
            collection.add_profile(make_profile(pid, "hub extra%d" % pid))
        assert "hub" in collection.purged_keys()
        # An "updated" record arrives as a new pid carrying the purged token
        # plus fresh ones: the purged key must stay dead, fresh keys index.
        collection.add_profile(make_profile(10, "hub fresh other"))
        assert "hub" not in collection
        assert collection.blocks_of(10) == {"fresh", "other"}
        assert collection.block_count_of(10) == 2
        assert "hub" in collection.purged_keys()

    def test_readd_rejected_even_after_purge_emptied_blocks(self):
        collection = BlockCollection(max_block_size=2)
        for pid in range(4):
            collection.add_profile(make_profile(pid, "hub"))
        assert collection.blocks_of(0) == frozenset()  # all its blocks purged
        assert collection.is_indexed(0)
        with pytest.raises(ValueError):
            collection.add_profile(make_profile(0, "hub brand-new"))

    def test_purged_key_id_stays_reserved(self):
        collection = BlockCollection(max_block_size=2)
        collection.add_profile(make_profile(0, "hub alpha"))
        hub_id = collection.key_id("hub")
        for pid in range(1, 4):
            collection.add_profile(make_profile(pid, "hub"))
        assert "hub" in collection.purged_keys()
        assert collection.key_id("hub") == hub_id  # id survives the purge
        collection.add_profile(make_profile(10, "beta"))
        assert collection.key_id("beta") > hub_id  # never reissued

    def test_comparison_counter_consistent_through_purge_and_readds(self):
        collection = BlockCollection(max_block_size=3)
        for pid in range(6):
            collection.add_profile(make_profile(pid, "hub tok%d" % (pid % 2)))
        collection.add_profile(make_profile(10, "hub tok0 tok1"))
        recomputed = sum(
            block.comparison_count(collection.clean_clean) for block in collection
        )
        assert collection.total_comparisons() == recomputed


_PURGE_HASHSEED_SCRIPT = """
from repro.blocking.blocks import BlockCollection
from repro.core.profile import EntityProfile

collection = BlockCollection(max_block_size=5)
# Skewed stream: a hot hub token that gets purged mid-stream, plus per-pid
# tokens, plus "updated" re-arrivals carrying purged tokens under new pids.
for pid in range(40):
    collection.add_profile(EntityProfile(pid, {"v": "hub tok%d own%d" % (pid % 7, pid)}))
for pid in range(100, 110):
    collection.add_profile(EntityProfile(pid, {"v": "hub tok0 fresh%d" % pid}))
print(sorted(collection.purged_keys()))
print(collection.total_comparisons())
for pid in sorted(list(range(40)) + list(range(100, 110))):
    print(pid, sorted(collection.blocks_of(pid)), collection.block_count_of(pid))
print(sorted(collection.keys()))
# NOTE: dense key *ids* are deliberately not probed — interning follows the
# (hash-seed dependent) token iteration order; every downstream consumer
# sorts blocks by key, never by id, so the emitted streams stay identical.
"""


class TestPurgeHashSeedStability:
    """Purge timing, blacklists, and dense ids must be independent of the
    interpreter hash seed (token iteration order varies per seed)."""

    @staticmethod
    def _purge_trace_under_seed(seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c", _PURGE_HASHSEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout

    def test_purge_trace_identical_across_hash_seeds(self):
        out_a = self._purge_trace_under_seed("0")
        out_b = self._purge_trace_under_seed("31337")
        assert out_a == out_b
        assert "hub" in out_a  # the hub block really was purged
        assert len(out_a.splitlines()) > 50
