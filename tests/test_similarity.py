"""Tests for similarity functions, including hypothesis metric properties."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.matching.similarity import (
    ED_KERNELS,
    dice,
    jaccard,
    levenshtein,
    normalized_edit_similarity,
    overlap_coefficient,
)

short_text = st.text(alphabet="abcde ", max_size=24)
token_sets = st.frozensets(st.sampled_from(["a", "b", "c", "d", "e", "f"]), max_size=6)

# Includes characters beyond the Basic Multilingual Plane (a clef and an
# emoji) so the bit-vector kernel is exercised on astral-plane code points,
# and is long enough (via max_size below) to cross the 64-character word
# boundary into the multi-word big-int regime.
kernel_text = st.text(alphabet="abcd 𝄞😀é", max_size=90)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0
        assert jaccard({"a"}, set()) == 0.0

    @given(token_sets, token_sets)
    def test_bounds_and_symmetry(self, x, y):
        value = jaccard(x, y)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(y, x)

    @given(token_sets)
    def test_self_similarity(self, x):
        if x:
            assert jaccard(x, x) == 1.0


class TestDiceAndOverlap:
    def test_dice_partial(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient({"a"}, {"a", "b", "c"}) == 1.0

    @given(token_sets, token_sets)
    def test_dice_dominates_jaccard(self, x, y):
        assert dice(x, y) >= jaccard(x, y)

    @given(token_sets, token_sets)
    def test_overlap_dominates_dice(self, x, y):
        assert overlap_coefficient(x, y) >= dice(x, y) - 1e-12


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "acb", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_bound_caps_result(self):
        assert levenshtein("aaaa", "bbbb", max_distance=2) == 3

    def test_bound_exact_when_within(self):
        assert levenshtein("kitten", "sitting", max_distance=3) == 3
        assert levenshtein("kitten", "sitting", max_distance=10) == 3

    def test_bound_zero(self):
        assert levenshtein("same", "same", max_distance=0) == 0
        assert levenshtein("same", "diff", max_distance=0) == 1

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        distance = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text, st.integers(min_value=0, max_value=30))
    def test_banded_agrees_with_full(self, a, b, k):
        full = levenshtein(a, b)
        banded = levenshtein(a, b, max_distance=k)
        assert banded == (full if full <= k else k + 1)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestEditDistanceKernels:
    """All kernels must return identical integers for every input."""

    @pytest.mark.parametrize("kernel", ED_KERNELS)
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("kitten", "sitting", 3),
            ("𝄞😀", "😀𝄞", 2),
            ("a" * 70, "a" * 69 + "b", 1),
        ],
    )
    def test_known_distances_every_kernel(self, kernel, a, b, expected):
        assert levenshtein(a, b, kernel=kernel) == expected

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            levenshtein("ab", "cd", kernel="simd")

    @given(kernel_text, kernel_text, st.integers(min_value=0, max_value=12))
    @settings(max_examples=150)
    def test_kernels_agree_under_bound(self, a, b, k):
        """Bounded distances straddling ``k`` agree across every kernel,
        including the capped ``k + 1`` overflow value."""
        results = {
            kernel: levenshtein(a, b, max_distance=k, kernel=kernel)
            for kernel in ED_KERNELS
        }
        assert len(set(results.values())) == 1, results
        full = levenshtein(a, b, kernel="full")
        assert results["auto"] == (full if full <= k else k + 1)

    @given(kernel_text, kernel_text)
    @settings(max_examples=60)
    def test_kernels_agree_unbounded(self, a, b):
        results = {kernel: levenshtein(a, b, kernel=kernel) for kernel in ED_KERNELS}
        assert len(set(results.values())) == 1, results

    def test_long_pattern_uses_multiword_bitvector(self):
        """Patterns past 64 chars exercise the big-int Myers regime."""
        base = "the quick brown fox jumps over the lazy dog " * 3  # 135 chars
        edited = base[:40] + "X" + base[41:100] + "YZ" + base[100:]
        expected = levenshtein(base, edited, kernel="full")
        assert expected > 0
        assert levenshtein(base, edited, kernel="myers") == expected
        assert levenshtein(base, edited, max_distance=expected, kernel="myers") == expected
        assert (
            levenshtein(base, edited, max_distance=expected - 1, kernel="myers")
            == expected
        )

    @given(kernel_text, kernel_text, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_normalized_similarity_bit_identical_across_kernels(self, a, b, t):
        floats = {
            kernel: normalized_edit_similarity(a, b, min_similarity=t, kernel=kernel)
            for kernel in ED_KERNELS
        }
        assert len({value.hex() for value in floats.values()}) == 1, floats

    def test_float_bit_identity_across_hash_seeds(self):
        """``peq`` is a dict keyed by characters, so iteration order could
        vary with PYTHONHASHSEED — the similarity floats must not."""
        script = (
            "from repro.matching.similarity import ED_KERNELS, "
            "normalized_edit_similarity as nes\n"
            "pairs = [('kitten', 'sitting'), ('𝄞😀ab', 'ab😀𝄞'), "
            "('progressive entity resolution over incremental data streams "
            "with budgets', 'progresive entity resolutoin over incremental "
            "data stream with budget'), ('', 'x')]\n"
            "print([nes(a, b, min_similarity=0.5, kernel=k).hex() "
            "for a, b in pairs for k in ED_KERNELS])\n"
        )
        src_dir = str(Path(repro.__file__).parents[1])
        outputs = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src_dir)
            result = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestNormalizedEditSimilarity:
    def test_identical(self):
        assert normalized_edit_similarity("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert normalized_edit_similarity("", "") == 0.0

    def test_known_value(self):
        # distance 3 over max length 7
        assert normalized_edit_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)

    def test_min_similarity_exact_above_threshold(self):
        exact = normalized_edit_similarity("kitten", "sitting")
        thresholded = normalized_edit_similarity("kitten", "sitting", min_similarity=0.5)
        assert thresholded == pytest.approx(exact)

    def test_min_similarity_validation(self):
        with pytest.raises(ValueError):
            normalized_edit_similarity("a", "b", min_similarity=1.5)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        assert 0.0 <= normalized_edit_similarity(a, b) <= 1.0

    @given(short_text, short_text, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_threshold_decision_is_exact(self, a, b, threshold):
        """The banded computation must never flip a >=threshold decision."""
        longest = max(len(a), len(b))
        true_similarity = (1.0 - levenshtein(a, b) / longest) if longest else 0.0
        approx = normalized_edit_similarity(a, b, min_similarity=threshold)
        assert (approx >= threshold) == (true_similarity >= threshold)
