"""Tests for the unified session API (``repro.api``).

``ERSession`` is the single entry point every driver (``resolve_stream``,
the CLI, the benchmark drivers, ``run_experiment``) now routes through.
Pinned here:

* construction/validation of :class:`EngineOptions` and the ``workers``
  shorthand;
* stream-plan semantics — batch baselines get single-increment plans in
  the static setting, plans are built once and shared across systems;
* round-trips: session ↔ :class:`ExperimentConfig`, ``resolve_stream``
  equals a hand-built session, ``run_experiment`` equals
  ``session.compare()``;
* fault wiring (int seed → :meth:`FaultSpec.chaos`, reports accumulate)
  and checkpoint capture;
* the legacy entry points still work but raise ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings

import pytest

from repro import resolve_stream
from repro.api import EngineOptions, ERSession
from repro.evaluation.experiments import (
    ExperimentConfig,
    make_matcher,
    make_system,
    run_experiment,
)
from repro.matching.matcher import EditDistanceMatcher, JaccardMatcher
from repro.resilience import FaultSpec, FaultyMatcher

BUDGET = 8.0


@pytest.fixture(scope="module")
def dataset(small_dblp_acm):
    return small_dblp_acm


def _session(dataset, **kwargs):
    defaults = dict(
        systems=("I-PES",),
        matcher="JS",
        n_increments=8,
        rate=5.0,
        budget=BUDGET,
    )
    defaults.update(kwargs)
    return ERSession(dataset, **defaults)


def _comparable(result):
    metrics = dict(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    return (
        result.curve.points,
        result.duplicates,
        result.comparisons_executed,
        result.clock_end,
        metrics,
    )


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
def test_engine_options_rejects_zero_workers():
    with pytest.raises(ValueError, match="workers"):
        EngineOptions(workers=0)


def test_session_rejects_empty_systems(dataset):
    with pytest.raises(ValueError, match="at least one"):
        ERSession(dataset, systems=())


def test_workers_shorthand_overrides_engine_options(dataset):
    session = _session(dataset, engine=EngineOptions(workers=1), workers=3)
    assert session.engine_options.workers == 3
    # The rest of the options survive the override.
    session = _session(dataset, engine=EngineOptions(pipelined=True), workers=2)
    assert session.engine_options == EngineOptions(pipelined=True, workers=2)


def test_single_string_system_accepted(dataset):
    session = _session(dataset, systems="I-BASE")
    assert session.systems == ("I-BASE",)


def test_matcher_construction(dataset):
    assert isinstance(_session(dataset, matcher="JS").build_matcher(), JaccardMatcher)
    assert isinstance(
        _session(dataset, matcher="ED").build_matcher(), EditDistanceMatcher
    )
    assert isinstance(
        _session(dataset, matcher="JS", faults=7).build_matcher(), FaultyMatcher
    )


# ----------------------------------------------------------------------
# Stream-plan semantics
# ----------------------------------------------------------------------
def test_static_batch_baselines_get_single_increment_plans(dataset):
    session = ERSession(dataset, systems=("I-PES", "PPS", "BATCH"), budget=BUDGET)
    assert len(session.plan_for("PPS").increments) == 1
    assert len(session.plan_for("I-PES").increments) == session.n_increments
    # Plans are cached: the two batch systems share one object, and so do
    # repeated calls for the same streaming shape.
    assert session.plan_for("BATCH") is session.plan_for("PPS")
    assert session.plan_for("I-PES") is session.plan_for("I-PCS")


def test_streaming_setting_streams_everyone(dataset):
    session = _session(dataset, systems=("PPS",))
    assert len(session.plan_for("PPS").increments) == session.n_increments


def test_fault_seed_int_becomes_chaos_spec(dataset):
    session = _session(dataset, faults=7)
    assert session.fault_spec == FaultSpec.chaos(7)
    assert session.fault_reports == []
    session.plan_for("I-PES")
    assert len(session.fault_reports) == 1
    # The cached plan does not re-apply faults.
    session.plan_for("I-PES")
    assert len(session.fault_reports) == 1


# ----------------------------------------------------------------------
# Execution round-trips
# ----------------------------------------------------------------------
def test_resolve_stream_routes_through_session(dataset):
    via_function = resolve_stream(
        dataset, algorithm="I-PES", matcher="JS", n_increments=8, rate=5.0, budget=BUDGET
    )
    with _session(dataset) as session:
        via_session = session.run()
    assert _comparable(via_function) == _comparable(via_session)


def test_compare_runs_every_system_in_order(dataset):
    with _session(dataset, systems=("I-PES", "I-BASE"), budget=4.0) as session:
        results = session.compare()
    assert list(results) == ["I-PES", "I-BASE"]
    for result in results.values():
        assert result.comparisons_executed > 0


def test_run_experiment_matches_session_compare(dataset):
    config = ExperimentConfig(
        dataset_name=dataset.name,
        systems=("I-PES",),
        matcher="JS",
        n_increments=8,
        rate=5.0,
        budget=4.0,
        dataset=dataset,
    )
    with pytest.warns(DeprecationWarning):
        legacy = run_experiment(config)
    with ERSession.from_config(config) as session:
        modern = session.compare()
    assert list(legacy) == list(modern)
    for name in legacy:
        assert _comparable(legacy[name]) == _comparable(modern[name])


def test_config_round_trip(dataset):
    session = _session(
        dataset,
        systems=("I-PES", "I-BASE"),
        matcher="ED",
        engine=EngineOptions(pipelined=True, workers=2),
    )
    config = session.to_config()
    assert config.systems == ("I-PES", "I-BASE")
    assert config.engine == EngineOptions(pipelined=True, workers=2)
    assert config.dataset is dataset
    rebuilt = ERSession.from_config(config)
    assert rebuilt.systems == session.systems
    assert rebuilt.engine_options == session.engine_options
    assert rebuilt.matcher_name == session.matcher_name
    assert rebuilt.rate == session.rate


def test_engine_options_select_engine_and_kernel(dataset):
    from repro.streaming.pipelined import PipelinedStreamingEngine

    session = _session(dataset, engine=EngineOptions(pipelined=True, scalar_matching=True))
    engine = session.build_engine(session.build_matcher())
    assert isinstance(engine, PipelinedStreamingEngine)
    assert engine.batch_matching is False


def test_checkpoint_every_captures_last_checkpoint(dataset):
    with _session(dataset, matcher="ED", checkpoint_every=2.0) as session:
        session.run()
        assert session.last_checkpoint is not None
        assert session.last_checkpoint.clock <= BUDGET


def test_session_close_is_reentrant(dataset):
    session = _session(dataset)
    session.run()
    session.close()
    session.close()


def test_use_after_close_raises_at_the_facade(dataset):
    session = _session(dataset)
    session.close()
    assert session.closed
    with pytest.raises(RuntimeError, match="closed"):
        session.run()
    with pytest.raises(RuntimeError, match="closed"):
        session.compare()
    with pytest.raises(RuntimeError, match="closed"):
        session.push()
    with pytest.raises(RuntimeError, match="closed"):
        session.ingest(dataset.profiles[:2])
    with pytest.raises(RuntimeError, match="closed"):
        session.drain(1.0)
    with pytest.raises(RuntimeError, match="closed"):
        session.results()
    with pytest.raises(RuntimeError, match="closed"):
        with session:
            pass  # pragma: no cover - enter must refuse


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
def test_deprecated_names_dropped_from_package_roots():
    """The shims live only in ``repro.evaluation.experiments`` now."""
    import repro
    import repro.evaluation

    for name in ("make_matcher", "make_system", "run_experiment"):
        assert not hasattr(repro, name)
        assert name not in repro.__all__
        assert not hasattr(repro.evaluation, name)
        assert name not in repro.evaluation.__all__


def test_make_matcher_shim_warns():
    with pytest.warns(DeprecationWarning, match="ERSession"):
        matcher = make_matcher("JS")
    assert isinstance(matcher, JaccardMatcher)


def test_make_system_shim_warns(dataset):
    with pytest.warns(DeprecationWarning, match="ERSession"):
        system = make_system("I-PES", dataset)
    assert "I-PES" in system.name


def test_session_itself_never_warns(dataset):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with _session(dataset, budget=2.0) as session:
            session.run()
