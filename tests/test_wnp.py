"""Tests for WNP / I-WNP comparison cleaning."""

from __future__ import annotations

from repro.blocking.blocks import BlockCollection
from repro.metablocking.wnp import batch_wnp_for_profile, incremental_wnp

from tests.conftest import make_profile


def _collection() -> BlockCollection:
    collection = BlockCollection(max_block_size=None)
    collection.add_profile(make_profile(0, "alpha beta gamma delta"))
    collection.add_profile(make_profile(1, "alpha beta gamma"))  # strong partner
    collection.add_profile(make_profile(2, "alpha"))             # weak partner
    collection.add_profile(make_profile(3, "alpha beta"))        # medium partner
    return collection


class TestIncrementalWNP:
    def test_prunes_below_average(self):
        collection = _collection()
        result = incremental_wnp(collection, 0, [1, 2, 3])
        kept_partners = {c.other(0) for c in (w.comparison() for w in result.kept)}
        # weights: p1=3, p2=1, p3=2 → average 2 → keep p1, p3
        assert kept_partners == {1, 3}
        assert result.pruned == 1

    def test_weights_attached(self):
        collection = _collection()
        result = incremental_wnp(collection, 0, [1])
        assert result.kept[0].weight == 3.0

    def test_empty_candidates(self):
        result = incremental_wnp(_collection(), 0, [])
        assert result.kept == ()
        assert result.weighting_cost_units == 0

    def test_self_candidate_ignored(self):
        result = incremental_wnp(_collection(), 0, [0])
        assert result.kept == ()

    def test_duplicate_candidates_collapsed(self):
        collection = _collection()
        result = incremental_wnp(collection, 0, [1, 1, 1])
        assert len(result.kept) == 1
        assert result.weighting_cost_units == 1

    def test_single_candidate_always_kept(self):
        """A single candidate equals the average and must survive."""
        result = incremental_wnp(_collection(), 0, [2])
        assert len(result.kept) == 1

    def test_total_candidates_bookkeeping(self):
        result = incremental_wnp(_collection(), 0, [1, 2, 3])
        assert result.total_candidates == 3


class TestBatchWNP:
    def test_gathers_all_coblock_partners(self):
        collection = _collection()
        result = batch_wnp_for_profile(collection, 0, lambda pid: True)
        assert result.total_candidates == 3

    def test_partner_filter(self):
        collection = _collection()
        result = batch_wnp_for_profile(collection, 0, lambda pid: pid != 1)
        partners = {w.comparison().other(0) for w in result.kept}
        assert 1 not in partners
