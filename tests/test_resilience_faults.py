"""Tests for seeded fault injection: stream perturbation and FaultyMatcher.

Determinism is the contract under test: the same seed must replay the same
faults bit-identically, at the spec level (perturbed plans), the matcher
level (failure schedules) and the run level (chaos runs across strategies).
"""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher
from repro.incremental.ibase import IBaseSystem
from repro.matching.matcher import JaccardMatcher
from repro.pier.base import PierSystem
from repro.pier.ipbs import IPBS
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES
from repro.resilience import (
    FaultSpec,
    FaultyMatcher,
    ResilienceConfig,
    RetryPolicy,
    TransientMatcherError,
    apply_faults,
)
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

from tests.conftest import make_profile

ALL_STRATEGIES = [lambda: PierSystem(IPES()), lambda: PierSystem(IPCS()),
                  lambda: PierSystem(IPBS()), IBaseSystem]


def _plan(dataset, n=8, rate=5.0, seed=0):
    return make_stream_plan(split_into_increments(dataset, n, seed=seed), rate=rate)


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(coalesce_span=1)
        with pytest.raises(ValueError):
            FaultSpec(duplicate_delay=-1.0)

    def test_noop_detection(self):
        assert FaultSpec().is_noop
        assert not FaultSpec.chaos(0).is_noop


class TestApplyFaults:
    def test_noop_spec_preserves_plan(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        report = apply_faults(plan, FaultSpec(seed=1))
        assert report.plan.arrival_times == plan.arrival_times
        assert report.plan.increments == plan.increments
        assert report.summary().startswith("faults: dropped=0")

    def test_same_seed_same_perturbation(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        a = apply_faults(plan, FaultSpec.chaos(seed=11))
        b = apply_faults(plan, FaultSpec.chaos(seed=11))
        assert a.plan.arrival_times == b.plan.arrival_times
        assert a.plan.increments == b.plan.increments
        assert a.dropped == b.dropped
        assert a.duplicated == b.duplicated

    def test_different_seed_different_perturbation(self, small_dblp_acm):
        plan = _plan(small_dblp_acm, n=20)
        a = apply_faults(plan, FaultSpec.chaos(seed=1))
        b = apply_faults(plan, FaultSpec.chaos(seed=2))
        assert (
            a.plan.increments != b.plan.increments
            or a.plan.arrival_times != b.plan.arrival_times
        )

    def test_times_stay_nondecreasing_and_conserved(self, small_dblp_acm):
        plan = _plan(small_dblp_acm, n=20)
        # StreamPlan.__post_init__ re-validates monotonicity on construction,
        # so a successfully built perturbed plan is already well-formed.
        report = apply_faults(plan, FaultSpec.chaos(seed=3))
        delivered_ids = {increment.index for increment in report.plan.increments}
        assert delivered_ids.isdisjoint(report.dropped)
        assert delivered_ids | set(report.dropped) == {
            increment.index for increment in plan.increments
        }

    def test_duplicates_share_ids(self, small_dblp_acm):
        plan = _plan(small_dblp_acm, n=20)
        report = apply_faults(plan, FaultSpec(seed=5, duplicate_rate=1.0))
        ids = [increment.index for increment in report.plan.increments]
        assert len(ids) == 2 * len(plan)
        assert sorted(set(ids)) == sorted(increment.index for increment in plan.increments)

    def test_dropped_increments_missing(self, small_dblp_acm):
        plan = _plan(small_dblp_acm, n=10)
        report = apply_faults(plan, FaultSpec(seed=5, drop_rate=1.0))
        assert len(report.plan) == 0
        assert len(report.dropped) == 10

    def test_emptied_increments_have_no_profiles(self):
        profiles = (make_profile(0, "alpha beta"), make_profile(1, "alpha beta"))
        from repro.core.increments import Increment

        plan = make_stream_plan([Increment(0, profiles)], rate=2.0)
        report = apply_faults(plan, FaultSpec(seed=0, empty_rate=1.0))
        assert all(increment.is_empty for increment in report.plan.increments)

    def test_corruption_keeps_pid_and_source(self):
        from repro.core.increments import Increment

        profiles = tuple(make_profile(i, f"value{i} text", source=1) for i in range(6))
        plan = make_stream_plan([Increment(0, profiles)], rate=2.0)
        report = apply_faults(plan, FaultSpec(seed=4, corrupt_rate=1.0))
        assert report.corrupted_profiles == 6
        for original, delivered in zip(profiles, report.plan.increments[0].profiles):
            assert delivered.pid == original.pid
            assert delivered.source == original.source


class TestFaultyMatcher:
    def _profiles(self):
        return make_profile(0, "alpha beta gamma"), make_profile(1, "alpha beta delta")

    def test_parameters_validated(self):
        inner = JaccardMatcher(0.5)
        with pytest.raises(ValueError):
            FaultyMatcher(inner, failure_rate=1.2)
        with pytest.raises(ValueError):
            FaultyMatcher(inner, failure_rate=0.6, latency_spike_rate=0.6)
        with pytest.raises(ValueError):
            FaultyMatcher(inner, latency_spike_factor=0.5)

    def test_failures_carry_wasted_cost(self):
        x, y = self._profiles()
        matcher = FaultyMatcher(
            JaccardMatcher(0.5), seed=0, failure_rate=1.0, latency_spike_rate=0.0
        )
        with pytest.raises(TransientMatcherError) as exc:
            matcher.evaluate(x, y)
        assert exc.value.cost > 0.0
        assert matcher.faults_injected == 1

    def test_latency_spike_stretches_cost(self):
        x, y = self._profiles()
        clean = JaccardMatcher(0.5)
        spiky = FaultyMatcher(
            JaccardMatcher(0.5), seed=0, failure_rate=0.0,
            latency_spike_rate=1.0, latency_spike_factor=10.0,
        )
        base = clean.evaluate(x, y)
        spiked = spiky.evaluate(x, y)
        assert spiked.cost == pytest.approx(10.0 * base.cost)
        assert spiked.is_match == base.is_match
        assert spiky.spikes_injected == 1

    def test_schedule_replays_after_reset(self):
        x, y = self._profiles()
        matcher = FaultyMatcher(JaccardMatcher(0.5), seed=42, failure_rate=0.3)

        def schedule():
            outcomes = []
            for _ in range(50):
                try:
                    matcher.evaluate(x, y)
                    outcomes.append("ok")
                except TransientMatcherError:
                    outcomes.append("fail")
            return outcomes

        first = schedule()
        matcher.reset_stats()
        assert schedule() == first
        assert "fail" in first and "ok" in first


class TestChaosRuns:
    """A seeded chaos run must complete on every strategy, with the
    resilience counters populated and the whole run replayable."""

    RESILIENCE = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3),
        cost_ceiling=1.0,
        shed_watermark=16,
        checkpoint_every=2.0,
    )

    def _chaos_run(self, factory, dataset, engine_cls=StreamingEngine, seed=7):
        plan = _plan(dataset, n=10, rate=5.0)
        report = apply_faults(plan, FaultSpec.chaos(seed=seed))
        matcher = FaultyMatcher(make_matcher("ED"), seed=seed)
        engine = engine_cls(matcher, budget=10.0, resilience=self.RESILIENCE)
        return engine.run(factory(), report.plan, dataset.ground_truth)

    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_chaos_completes_on_every_strategy(self, factory, small_dblp_acm):
        result = self._chaos_run(factory, small_dblp_acm)
        counters = result.details["metrics"]["counters"]
        assert counters["engine.retries"] > 0
        assert "engine.quarantined_pairs" in counters
        assert result.clock_end <= 10.0
        assert result.final_pc > 0.0

    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_chaos_completes_on_pipelined_engine(self, factory, small_dblp_acm):
        result = self._chaos_run(factory, small_dblp_acm, engine_cls=PipelinedStreamingEngine)
        counters = result.details["metrics"]["counters"]
        assert counters["engine.retries"] > 0
        assert "engine.quarantined_pairs" in counters
        assert result.clock_end <= 10.0

    def test_chaos_run_is_deterministic(self, small_dblp_acm):
        a = self._chaos_run(lambda: PierSystem(IPES()), small_dblp_acm)
        b = self._chaos_run(lambda: PierSystem(IPES()), small_dblp_acm)
        assert a.duplicates == b.duplicates
        assert a.curve.points == b.curve.points
        assert a.comparisons_executed == b.comparisons_executed
        assert (
            a.details["metrics"]["counters"] == b.details["metrics"]["counters"]
        )

    def test_fault_free_run_unchanged_by_default_config(self, small_dblp_acm):
        plan = _plan(small_dblp_acm, n=8, rate=5.0)
        baseline = StreamingEngine(make_matcher("JS"), budget=15.0).run(
            PierSystem(IPES()), plan, small_dblp_acm.ground_truth
        )
        configured = StreamingEngine(
            make_matcher("JS"), budget=15.0, resilience=ResilienceConfig()
        ).run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        assert baseline.curve.points == configured.curve.points
        assert baseline.duplicates == configured.duplicates
        counters = baseline.details["metrics"]["counters"]
        assert counters["engine.retries"] == 0
        assert counters["engine.quarantined_pairs"] == 0
        assert counters["engine.shed_increments"] == 0
