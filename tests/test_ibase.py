"""Tests for the I-BASE incremental baseline."""

from __future__ import annotations

from repro.core.increments import Increment
from repro.incremental.ibase import IBaseSystem
from repro.streaming.system import PipelineStats

from tests.conftest import make_profile


def _stats() -> PipelineStats:
    return PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)


class TestIBase:
    def test_ingest_generates_fifo_work(self):
        system = IBaseSystem()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        assert system.backlog > 0
        result = system.emit(_stats())
        assert (0, 1) in result.batch

    def test_emit_chunked(self):
        system = IBaseSystem(chunk_size=2)
        profiles = tuple(make_profile(pid, "shared") for pid in range(6))
        system.ingest(Increment(0, profiles))
        result = system.emit(_stats())
        assert len(result.batch) == 2

    def test_no_duplicate_work(self):
        system = IBaseSystem()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        seen = set()
        while system.backlog:
            for pair in system.emit(_stats()).batch:
                assert pair not in seen
                seen.add(pair)

    def test_backpressure(self):
        system = IBaseSystem(high_watermark=3)
        profiles = tuple(make_profile(pid, "shared") for pid in range(8))
        system.ingest(Increment(0, profiles))
        assert system.backlog >= 3
        assert not system.ready_for_ingest()
        while system.backlog >= 3:
            system.emit(_stats())
        assert system.ready_for_ingest()

    def test_no_idle_work(self):
        """I-BASE does nothing while waiting — no globality."""
        system = IBaseSystem()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        while system.backlog:
            system.emit(_stats())
        assert system.on_idle(_stats()) is None

    def test_not_adaptive(self):
        """Work per increment is independent of rates (fixed chunk size)."""
        system = IBaseSystem(chunk_size=4)
        profiles = tuple(make_profile(pid, "shared") for pid in range(8))
        system.ingest(Increment(0, profiles))
        fast = system.emit(
            PipelineStats(now=0.0, input_rate=1000.0, mean_match_cost=1.0, backlog=0)
        )
        slow = system.emit(
            PipelineStats(now=0.0, input_rate=0.001, mean_match_cost=1e-9, backlog=0)
        )
        assert len(fast.batch) == len(slow.batch) == 4

    def test_clean_clean_cross_source_only(self):
        system = IBaseSystem(clean_clean=True)
        profiles = (
            make_profile(0, "tok", source=0),
            make_profile(1, "tok", source=0),
            make_profile(2, "tok", source=1),
        )
        system.ingest(Increment(0, profiles))
        pairs = []
        while system.backlog:
            pairs.extend(system.emit(_stats()).batch)
        assert set(pairs) <= {(0, 2), (1, 2)}

    def test_profile_lookup(self):
        system = IBaseSystem()
        profile = make_profile(5, "x1")
        system.ingest(Increment(0, (profile,)))
        assert system.profile(5) is profile

    def test_describe(self):
        system = IBaseSystem()
        assert system.describe()["name"] == "I-BASE"
