"""Tests for the discrete-event streaming engine."""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.incremental.ibase import IBaseSystem
from repro.matching.matcher import JaccardMatcher
from repro.pier.base import PierSystem
from repro.pier.ipes import IPES
from repro.streaming.engine import StreamingEngine
from repro.streaming.system import EmitResult, ERSystem, PipelineStats


def _engine(budget=100.0) -> StreamingEngine:
    return StreamingEngine(JaccardMatcher(0.4), budget=budget)


class TestEngineBasics:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            StreamingEngine(JaccardMatcher(), budget=0.0)

    def test_static_run_completes(self, toy_dirty_dataset):
        plan = make_stream_plan(split_into_increments(toy_dirty_dataset, 2), rate=None)
        result = _engine().run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        assert result.work_exhausted
        assert result.final_pc > 0.0
        assert result.increments_ingested == 2

    def test_budget_enforced(self, small_census):
        plan = make_stream_plan(split_into_increments(small_census, 10), rate=None)
        tight = StreamingEngine(JaccardMatcher(0.4), budget=0.001)
        result = tight.run(PierSystem(IPES()), plan, small_census.ground_truth)
        assert result.clock_end >= 0.001
        assert not result.work_exhausted

    def test_arrivals_respected(self, toy_dirty_dataset):
        """No comparison can execute before the profiles' arrival times."""
        increments = split_into_increments(toy_dirty_dataset, 6, seed=0)
        plan = make_stream_plan(increments, rate=1.0)  # arrivals at 0..5
        result = _engine().run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        arrival_of = {}
        for when, increment in plan:
            for profile in increment:
                arrival_of[profile.pid] = when
        # matches can only be found after both profiles arrived
        for point in result.curve.points:
            if point.matches:
                assert point.time >= 0.0
        assert result.stream_consumed_at >= plan.last_arrival

    def test_match_timestamps_monotone(self, toy_dirty_dataset):
        plan = make_stream_plan(split_into_increments(toy_dirty_dataset, 3), rate=2.0)
        result = _engine().run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        times = [point.time for point in result.curve.points]
        assert times == sorted(times)

    def test_duplicates_reported(self, toy_dirty_dataset):
        plan = make_stream_plan(split_into_increments(toy_dirty_dataset, 1), rate=None)
        result = _engine().run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        assert (0, 1) in result.duplicates

    def test_deterministic_across_runs(self, small_census):
        plan = make_stream_plan(split_into_increments(small_census, 8, seed=3), rate=4.0)
        run = lambda: _engine().run(
            PierSystem(IPES()), plan, small_census.ground_truth
        )
        a, b = run(), run()
        assert a.final_pc == b.final_pc
        assert a.comparisons_executed == b.comparisons_executed
        assert a.clock_end == b.clock_end

    def test_empty_plan(self, toy_dirty_dataset):
        plan = make_stream_plan([], rate=None)
        result = _engine().run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        assert result.comparisons_executed == 0
        assert result.work_exhausted


class TestBackPressure:
    def test_ibase_consumes_stream_late_under_load(self, small_census):
        """With a tiny watermark, I-BASE ingests the stream much later than
        the nominal last arrival."""
        increments = split_into_increments(small_census, 20, seed=1)
        plan = make_stream_plan(increments, rate=1000.0)  # all nearly at once
        system = IBaseSystem(high_watermark=5, chunk_size=1)
        result = _engine(budget=500.0).run(system, plan, small_census.ground_truth)
        assert result.stream_consumed_at is None or (
            result.stream_consumed_at > plan.last_arrival
        )

    def test_no_livelock_when_blocked_and_idle(self, toy_dirty_dataset):
        """A system that refuses ingestion but has no work must still make
        progress (the engine force-feeds one increment)."""

        class Stubborn(ERSystem):
            name = "stubborn"

            def __init__(self):
                self.ingested = 0

            def ingest(self, increment):
                self.ingested += 1
                return 0.001

            def emit(self, stats):
                return EmitResult(batch=(), cost=0.0)

            def ready_for_ingest(self):
                return False

            def profile(self, pid):
                raise AssertionError("no comparisons expected")

        plan = make_stream_plan(split_into_increments(toy_dirty_dataset, 3), rate=None)
        system = Stubborn()
        result = _engine(budget=1.0).run(system, plan, toy_dirty_dataset.ground_truth)
        assert system.ingested == 3
        assert result.work_exhausted


class TestConsumedMarker:
    def test_consumed_time_set_when_stream_drains(self, toy_dirty_dataset):
        plan = make_stream_plan(split_into_increments(toy_dirty_dataset, 4), rate=10.0)
        result = _engine().run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        assert result.stream_consumed_at is not None
        assert result.stream_consumed_at >= plan.last_arrival

    def test_consumed_none_when_budget_too_small(self, small_census):
        plan = make_stream_plan(split_into_increments(small_census, 50), rate=1.0)
        tiny = StreamingEngine(JaccardMatcher(0.4), budget=0.5)
        result = tiny.run(PierSystem(IPES()), plan, small_census.ground_truth)
        assert result.stream_consumed_at is None
