"""Tests for the PIER framework scaffolding (Algorithm 1 machinery)."""

from __future__ import annotations

import pytest

from repro.blocking.blocks import BlockCollection
from repro.pier.base import ComparisonGenerator, GetComparisons, PierSystem
from repro.pier.ipcs import IPCS
from repro.core.increments import Increment
from repro.priority.rates import AdaptiveK
from repro.streaming.system import PipelineStats

from tests.conftest import make_profile


def _stats(input_rate=None, mean_match_cost=1e-4) -> PipelineStats:
    return PipelineStats(
        now=0.0, input_rate=input_rate, mean_match_cost=mean_match_cost, backlog=0
    )


class TestComparisonGenerator:
    def test_generates_weighted_candidates(self):
        collection = BlockCollection(max_block_size=None)
        for pid, text in [(0, "alpha beta"), (1, "alpha beta"), (2, "alpha")]:
            collection.add_profile(make_profile(pid, text))
        generator = ComparisonGenerator(beta=0.01)  # keep all blocks
        kept, operations = generator.generate(
            collection, make_profile(1, "alpha beta"), lambda pid: True
        )
        partners = {w.comparison().other(1) for w in kept}
        assert 0 in partners  # strong candidate survives I-WNP
        assert operations >= len(kept)

    def test_ghosting_limits_blocks(self):
        collection = BlockCollection(max_block_size=None)
        # profile 0 sits in a tiny block ('rare') and a large one ('common')
        collection.add_profile(make_profile(0, "rare common"))
        collection.add_profile(make_profile(1, "rare common"))
        for pid in range(2, 12):
            collection.add_profile(make_profile(pid, "common"))
        generator = ComparisonGenerator(beta=1.0)  # only smallest-size blocks
        kept, _ = generator.generate(
            collection, make_profile(0, "rare common"), lambda pid: True
        )
        partners = {w.comparison().other(0) for w in kept}
        assert partners == {1}  # candidates from 'common' were ghosted away

    def test_clean_clean_partners_cross_source(self):
        collection = BlockCollection(clean_clean=True, max_block_size=None)
        collection.add_profile(make_profile(0, "shared", source=0))
        collection.add_profile(make_profile(1, "shared", source=0))
        collection.add_profile(make_profile(2, "shared", source=1))
        generator = ComparisonGenerator(beta=0.01)
        kept, _ = generator.generate(
            collection, make_profile(2, "shared", source=1), lambda pid: True
        )
        partners = {w.comparison().other(2) for w in kept}
        assert partners <= {0, 1}
        assert partners  # found the cross-source candidates


class TestGetComparisons:
    def _collection(self):
        collection = BlockCollection(max_block_size=None)
        collection.add_profile(make_profile(0, "small big"))
        collection.add_profile(make_profile(1, "small big"))
        collection.add_profile(make_profile(2, "big"))
        return collection

    def test_smallest_block_first(self):
        refill = GetComparisons()
        collection = self._collection()
        batch, _ = refill.next_batch(collection, lambda x, y: False)
        assert {w.pair for w in batch} == {(0, 1)}  # 'small' (size 2) first

    def test_progression_through_blocks(self):
        refill = GetComparisons()
        collection = self._collection()
        refill.next_batch(collection, lambda x, y: False)
        batch, _ = refill.next_batch(collection, lambda x, y: False)
        assert {w.pair for w in batch} == {(0, 1), (0, 2), (1, 2)}  # 'big'

    def test_exhaustion(self):
        refill = GetComparisons()
        collection = self._collection()
        refill.next_batch(collection, lambda x, y: False)
        refill.next_batch(collection, lambda x, y: False)
        assert refill.next_batch(collection, lambda x, y: False) is None
        assert refill.is_exhausted(collection)

    def test_executed_pairs_filtered(self):
        refill = GetComparisons()
        collection = self._collection()
        batch, operations = refill.next_batch(collection, lambda x, y: True)
        assert batch == []
        assert operations == 0

    def test_grown_blocks_revisited(self):
        refill = GetComparisons()
        collection = self._collection()
        while refill.next_batch(collection, lambda x, y: False) is not None:
            pass
        collection.add_profile(make_profile(3, "small"))
        assert not refill.is_exhausted(collection)
        batch, _ = refill.next_batch(collection, lambda x, y: False)
        new_pairs = {w.pair for w in batch}
        assert (0, 3) in new_pairs and (1, 3) in new_pairs

    def test_reset(self):
        refill = GetComparisons()
        collection = self._collection()
        refill.next_batch(collection, lambda x, y: False)
        refill.reset()
        batch, _ = refill.next_batch(collection, lambda x, y: False)
        assert {w.pair for w in batch} == {(0, 1)}


class TestPierSystemFindK:
    def _system(self) -> PierSystem:
        return PierSystem(IPCS(), adaptive_k=AdaptiveK(initial=64))

    def test_emit_respects_k(self):
        system = self._system()
        profiles = tuple(make_profile(pid, "shared extra%d" % (pid % 2)) for pid in range(30))
        system.ingest(Increment(0, profiles))
        system.adaptive_k = AdaptiveK(initial=4, minimum=4, maximum=4)
        result = system.emit(_stats())
        assert len(result.batch) <= 4

    def test_k_grows_with_cheap_matcher(self):
        system = self._system()
        before = system.adaptive_k.value
        system._find_k(_stats(input_rate=0.001, mean_match_cost=1e-6))
        assert system.adaptive_k.value > before

    def test_k_shrinks_with_expensive_matcher(self):
        system = self._system()
        before = system.adaptive_k.value
        system._find_k(_stats(input_rate=1000.0, mean_match_cost=1.0))
        assert system.adaptive_k.value < before

    def test_no_duplicate_emissions(self):
        system = self._system()
        profiles = tuple(make_profile(pid, "shared") for pid in range(10))
        system.ingest(Increment(0, profiles))
        emitted: set[tuple[int, int]] = set()
        for _ in range(100):
            result = system.emit(_stats())
            if not result.batch:
                idle = system.on_idle(_stats())
                if idle is None:
                    break
                continue
            for pair in result.batch:
                assert pair not in emitted
                emitted.add(pair)

    def test_ingest_charges_cost(self):
        system = self._system()
        cost = system.ingest(Increment(0, (make_profile(0, "alpha beta"),)))
        assert cost > 0

    def test_on_idle_exhausts_eventually(self):
        system = self._system()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        for _ in range(1000):
            result = system.emit(_stats())
            if result.batch:
                continue
            if system.on_idle(_stats()) is None:
                break
        else:
            pytest.fail("system never exhausted")

    def test_profile_lookup(self):
        system = self._system()
        profile = make_profile(3, "alpha")
        system.ingest(Increment(0, (profile,)))
        assert system.profile(3) is profile

    def test_describe(self):
        system = self._system()
        description = system.describe()
        assert description["strategy"] == "I-PCS"
