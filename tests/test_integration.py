"""End-to-end integration tests: every algorithm on every dataset kind.

These are coarse-grained sanity sweeps at tiny scale: each algorithm must
run to completion (or budget), find a reasonable share of matches, and
respect the structural invariants of a run.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    BATCH_SYSTEMS,
    ExperimentConfig,
    SYSTEM_NAMES,
    run_experiment,
)

ALGORITHMS = tuple(name for name in SYSTEM_NAMES if name != "PPS-LOCAL")


@pytest.mark.parametrize("dataset_name", ["dblp_acm", "census_2m"])
def test_all_algorithms_static(dataset_name, small_dblp_acm, small_census):
    dataset = {"dblp_acm": small_dblp_acm, "census_2m": small_census}[dataset_name]
    config = ExperimentConfig(
        dataset_name=dataset_name,
        systems=ALGORITHMS,
        matcher="JS",
        n_increments=8,
        rate=None,
        budget=120.0,
        dataset=dataset,
    )
    results = run_experiment(config)
    for name, result in results.items():
        assert result.comparisons_executed > 0, name
        assert result.final_pc > 0.3, (name, result.final_pc)
        assert result.curve.final_time <= 120.0 + 1.0
        # PC never decreases along the curve
        values = [point.matches for point in result.curve.points]
        assert values == sorted(values), name


def test_all_algorithms_dynamic(small_dblp_acm):
    config = ExperimentConfig(
        dataset_name="dblp_acm",
        systems=ALGORITHMS,
        matcher="JS",
        n_increments=20,
        rate=10.0,
        budget=60.0,
        dataset=small_dblp_acm,
    )
    results = run_experiment(config)
    for name, result in results.items():
        assert result.increments_ingested == 20, name
        # nothing found before the first arrival
        assert result.curve.pc_at_time(-1.0) == 0.0


def test_clean_clean_never_emits_intra_source(toy_clean_clean_dataset):
    config = ExperimentConfig(
        dataset_name="toy",
        systems=("I-PES", "I-PCS", "I-PBS", "I-BASE", "PBS", "BATCH"),
        matcher="JS",
        n_increments=3,
        rate=None,
        budget=60.0,
        dataset=toy_clean_clean_dataset,
    )
    results = run_experiment(config)
    for name, result in results.items():
        for pid_x, pid_y in result.duplicates:
            assert (
                toy_clean_clean_dataset[pid_x].source
                != toy_clean_clean_dataset[pid_y].source
            ), name


def test_ed_and_js_find_overlapping_duplicates(small_dblp_acm):
    base = ExperimentConfig(
        dataset_name="dblp_acm",
        systems=("I-PES",),
        n_increments=5,
        rate=None,
        budget=200.0,
        dataset=small_dblp_acm,
    )
    js = run_experiment(base.with_overrides(matcher="JS"))["I-PES"]
    ed = run_experiment(base.with_overrides(matcher="ED"))["I-PES"]
    # both matchers classify a healthy share of the emitted true matches
    assert len(js.duplicates) > 0
    assert len(ed.duplicates) > 0
    overlap = len(js.duplicates & ed.duplicates)
    assert overlap > 0


def test_batch_systems_constant(small_dblp_acm):
    """The BATCH_SYSTEMS registry matches systems that cannot stream."""
    assert {"PPS", "PBS", "BATCH", "LS-PSN", "GS-PSN"} == set(BATCH_SYSTEMS)
