"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

from repro.core.dataset import GroundTruth
from repro.evaluation.recorder import ProgressRecorder
from repro.evaluation.reporting import (
    format_table,
    pc_over_comparisons_table,
    pc_over_time_table,
    summary_table,
)
from repro.streaming.engine import RunResult


def _result(name="SYS", consumed=5.0) -> RunResult:
    recorder = ProgressRecorder(GroundTruth([(0, 1), (2, 3)]))
    recorder.record(0, 1, time=1.0)
    recorder.record(2, 3, time=8.0)
    recorder.mark(10.0)
    return RunResult(
        system_name=name,
        matcher_name="JS",
        curve=recorder.curve(),
        duplicates=frozenset({(0, 1)}),
        comparisons_executed=2,
        clock_end=10.0,
        budget=10.0,
        stream_consumed_at=consumed,
        work_exhausted=True,
        increments_ingested=3,
    )


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bee"], [["x", 1], ["long", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_empty_rows(self):
        table = format_table(["h"], [])
        assert "h" in table


class TestPCTables:
    def test_pc_over_time_values(self):
        table = pc_over_time_table({"SYS": _result()}, times=[0.5, 1.0, 9.0])
        assert "0.000" in table
        assert "0.500" in table
        assert "1.000" in table

    def test_consumed_marker(self):
        table = pc_over_time_table({"SYS": _result(consumed=5.0)}, times=[4.0, 6.0])
        lines = table.splitlines()
        assert "x" not in lines[2]  # t=4 before consumption
        assert "x" in lines[3]      # t=6 after consumption

    def test_pc_over_comparisons(self):
        table = pc_over_comparisons_table({"SYS": _result()}, comparison_counts=[0, 1, 2])
        assert "0.500" in table
        assert "1.000" in table


class TestSummaryTable:
    def test_contains_key_fields(self):
        table = summary_table({"SYS": _result()})
        assert "SYS" in table
        assert "1.000" in table
        assert "5.0s" in table

    def test_never_consumed(self):
        table = summary_table({"SYS": _result(consumed=None)})
        assert "never" in table
