"""Engine/kernel parity tests over the shared execution core.

Three guarantees introduced by the unified execution core are pinned here,
for all four incremental strategies on both engines:

* **kernel parity** — a run with the batched matcher kernel is bit-identical
  to the scalar pair-at-a-time path: same progress curve, duplicates,
  clocks, counters and gauges;
* **schema parity** — serial and pipelined runs export the *same* metric
  schema (counter/gauge/phase name sets) on healthy runs, because the core
  preseeds the union surface for both;
* **checkpoint parity** — the checkpoint a run takes at a given cadence has
  the same fingerprint whichever kernel produced it, so resumes can freely
  cross between scalar and batched execution.
"""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher, make_system
from repro.resilience import ResilienceConfig, SimulatedCrash
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

STRATEGIES = ["I-PCS", "I-PBS", "I-PES", "I-BASE"]
ENGINES = {"serial": StreamingEngine, "pipelined": PipelinedStreamingEngine}
BUDGET = 8.0


@pytest.fixture(scope="module")
def dataset(small_dblp_acm):
    return small_dblp_acm


@pytest.fixture(scope="module")
def plan(small_dblp_acm):
    increments = split_into_increments(small_dblp_acm, 8, seed=0)
    return make_stream_plan(increments, rate=5.0)


def _run(engine_cls, dataset, plan, strategy, batch_matching, matcher="ED", **kwargs):
    engine = engine_cls(
        make_matcher(matcher), budget=BUDGET, batch_matching=batch_matching, **kwargs
    )
    return engine.run(make_system(strategy, dataset), plan, dataset.ground_truth)


def _comparable(result):
    """Everything observable about a run except wall-clock timings."""
    metrics = dict(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    return {
        "curve": result.curve.points,
        "duplicates": result.duplicates,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "stream_consumed_at": result.stream_consumed_at,
        "work_exhausted": result.work_exhausted,
        "increments_ingested": result.increments_ingested,
        "match_events": result.match_events,
        "metrics": metrics,
    }


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_batched_kernel_bit_identical(dataset, plan, strategy, engine_name):
    engine_cls = ENGINES[engine_name]
    batched = _run(engine_cls, dataset, plan, strategy, batch_matching=True)
    scalar = _run(engine_cls, dataset, plan, strategy, batch_matching=False)
    assert _comparable(batched) == _comparable(scalar)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_metric_schema_parity_across_engines(dataset, plan, strategy):
    serial = _run(StreamingEngine, dataset, plan, strategy, batch_matching=True)
    pipelined = _run(PipelinedStreamingEngine, dataset, plan, strategy, batch_matching=True)
    serial_metrics = serial.details["metrics"]
    pipelined_metrics = pipelined.details["metrics"]
    assert set(serial_metrics["counters"]) == set(pipelined_metrics["counters"])
    assert set(serial_metrics["gauges"]) == set(pipelined_metrics["gauges"])
    assert set(serial_metrics["phases"]) == set(pipelined_metrics["phases"])


def _virtual_metrics_state(metrics_state):
    """Checkpoint metrics with host wall-clock fields removed.

    The phase dump is ``(virtual_s, wall_s, count)`` per phase; only the
    virtual components are deterministic across runs.
    """
    state = dict(metrics_state)
    state["phases"] = {
        name: (virtual_s, count)
        for name, (virtual_s, _wall_s, count) in state["phases"].items()
    }
    return state


def _checkpoint_fingerprint(checkpoint):
    """The deterministic, directly comparable portion of a checkpoint."""
    return (
        checkpoint.engine,
        checkpoint.budget,
        checkpoint.plan_fingerprint,
        checkpoint.clock,
        checkpoint.ingest_clock,
        checkpoint.next_arrival,
        checkpoint.consumed_at,
        checkpoint.rounds,
        checkpoint.ingested,
        checkpoint.shed,
        checkpoint.duplicates_dropped,
        checkpoint.seen_increments,
        checkpoint.duplicates,
        checkpoint.quarantined,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        _virtual_metrics_state(checkpoint.metrics_state),
    )


def _crash_checkpoint(engine_cls, dataset, plan, strategy, batch_matching):
    engine = engine_cls(
        make_matcher("ED"),
        budget=BUDGET,
        batch_matching=batch_matching,
        resilience=ResilienceConfig(checkpoint_every=1.0, crash_at=4.0),
    )
    with pytest.raises(SimulatedCrash) as exc:
        engine.run(make_system(strategy, dataset), plan, dataset.ground_truth)
    assert exc.value.checkpoint is not None
    return exc.value.checkpoint


@pytest.mark.parametrize("engine_name", list(ENGINES))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_checkpoint_fingerprint_parity(dataset, plan, strategy, engine_name):
    engine_cls = ENGINES[engine_name]
    batched = _crash_checkpoint(engine_cls, dataset, plan, strategy, batch_matching=True)
    scalar = _crash_checkpoint(engine_cls, dataset, plan, strategy, batch_matching=False)
    assert _checkpoint_fingerprint(batched) == _checkpoint_fingerprint(scalar)


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_resume_crosses_kernels(dataset, plan, engine_name):
    """A checkpoint taken on the scalar path resumes bit-identically on the
    batched path — the kernels share one execution semantics."""
    engine_cls = ENGINES[engine_name]
    checkpoint = _crash_checkpoint(engine_cls, dataset, plan, "I-PES", batch_matching=False)
    resumed = engine_cls(
        make_matcher("ED"), budget=BUDGET, batch_matching=True, checkpoint_every=1.0
    ).run(
        make_system("I-PES", dataset), plan, dataset.ground_truth, resume_from=checkpoint
    )
    uninterrupted = _run(engine_cls, dataset, plan, "I-PES", batch_matching=True)
    assert resumed.duplicates == uninterrupted.duplicates
    assert resumed.clock_end == uninterrupted.clock_end
    assert resumed.final_pc == uninterrupted.final_pc
    # The curve tails beyond the recovery point coincide.
    recovered_tail = [p for p in resumed.curve.points if p.time > checkpoint.clock]
    reference_tail = [p for p in uninterrupted.curve.points if p.time > checkpoint.clock]
    assert recovered_tail == reference_tail
