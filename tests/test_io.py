"""Tests for run-result serialization (JSON/CSV)."""

from __future__ import annotations

import io
import json

from repro import resolve_stream
from repro.evaluation.io import (
    curve_rows,
    run_result_to_dict,
    run_result_to_json,
    write_curve_csv,
)


def _result(toy_dirty_dataset):
    return resolve_stream(toy_dirty_dataset, n_increments=3, budget=20.0)


class TestRunResultToDict:
    def test_schema(self, toy_dirty_dataset):
        payload = run_result_to_dict(_result(toy_dirty_dataset))
        for key in (
            "system", "matcher", "budget", "clock_end", "comparisons_executed",
            "final_pc", "stream_consumed_at", "work_exhausted",
            "increments_ingested", "duplicates", "curve", "total_matches",
        ):
            assert key in payload

    def test_round_trips_through_json(self, toy_dirty_dataset):
        text = run_result_to_json(_result(toy_dirty_dataset))
        payload = json.loads(text)
        assert payload["total_matches"] == 4
        assert all(len(pair) == 2 for pair in payload["duplicates"])

    def test_curve_points_serialized(self, toy_dirty_dataset):
        payload = run_result_to_dict(_result(toy_dirty_dataset))
        assert payload["curve"][0] == {"time": 0.0, "comparisons": 0, "matches": 0}
        times = [point["time"] for point in payload["curve"]]
        assert times == sorted(times)


class TestCurveCSV:
    def test_rows_include_pc(self, toy_dirty_dataset):
        rows = curve_rows(_result(toy_dirty_dataset))
        assert rows[0] == (0.0, 0, 0, 0.0)
        assert all(0.0 <= pc <= 1.0 for _, _, _, pc in rows)

    def test_write_to_file_object(self, toy_dirty_dataset):
        buffer = io.StringIO()
        write_curve_csv(_result(toy_dirty_dataset), buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "time,comparisons,matches,pc"
        assert len(lines) > 1

    def test_write_to_path(self, toy_dirty_dataset, tmp_path):
        path = tmp_path / "curve.csv"
        write_curve_csv(_result(toy_dirty_dataset), str(path))
        assert path.read_text().startswith("time,")
