"""Tests for the bounded max-priority queue, incl. hypothesis model checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.priority.bounded_pq import BoundedPriorityQueue


class TestBasics:
    def test_dequeue_order_descending(self):
        queue = BoundedPriorityQueue()
        for item, key in [("a", 1.0), ("b", 3.0), ("c", 2.0)]:
            queue.enqueue(item, key)
        assert list(queue.drain()) == ["b", "c", "a"]

    def test_fifo_on_ties(self):
        queue = BoundedPriorityQueue()
        queue.enqueue("first", 1.0)
        queue.enqueue("second", 1.0)
        assert queue.dequeue() == "first"
        assert queue.dequeue() == "second"

    def test_len_and_bool(self):
        queue = BoundedPriorityQueue()
        assert not queue
        queue.enqueue("x", 1.0)
        assert queue
        assert len(queue) == 1

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedPriorityQueue().dequeue()

    def test_peek(self):
        queue = BoundedPriorityQueue()
        queue.enqueue("a", 1.0)
        queue.enqueue("b", 2.0)
        assert queue.peek() == "b"
        assert queue.peek_key() == 2.0
        assert len(queue) == 2  # peek does not remove

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedPriorityQueue().peek()
        with pytest.raises(IndexError):
            BoundedPriorityQueue().peek_key()

    def test_dequeue_with_key(self):
        queue = BoundedPriorityQueue()
        queue.enqueue("a", 4.2)
        assert queue.dequeue_with_key() == ("a", 4.2)

    def test_tuple_keys(self):
        queue = BoundedPriorityQueue()
        queue.enqueue("small-block", (-2, 1.0))
        queue.enqueue("large-block", (-10, 9.0))
        queue.enqueue("small-block-heavy", (-2, 5.0))
        # (-2, 5.0) > (-2, 1.0) > (-10, 9.0)
        assert list(queue.drain()) == ["small-block-heavy", "small-block", "large-block"]

    def test_clear(self):
        queue = BoundedPriorityQueue()
        queue.enqueue("a", 1.0)
        queue.clear()
        assert len(queue) == 0


class TestBounding:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedPriorityQueue(capacity=0)

    def test_eviction_of_minimum(self):
        queue = BoundedPriorityQueue(capacity=2)
        assert queue.enqueue("low", 1.0)
        assert queue.enqueue("high", 3.0)
        assert queue.enqueue("mid", 2.0)  # evicts "low"
        assert queue.evictions == 1
        assert sorted(queue.drain()) == ["high", "mid"]

    def test_rejection_of_underweight(self):
        queue = BoundedPriorityQueue(capacity=2)
        queue.enqueue("a", 2.0)
        queue.enqueue("b", 3.0)
        assert not queue.enqueue("c", 1.0)
        assert queue.rejections == 1
        assert len(queue) == 2

    def test_equal_key_rejected_when_full(self):
        queue = BoundedPriorityQueue(capacity=1)
        queue.enqueue("a", 1.0)
        assert not queue.enqueue("b", 1.0)

    def test_size_never_exceeds_capacity(self):
        queue = BoundedPriorityQueue(capacity=3)
        for i in range(100):
            queue.enqueue(i, float(i % 17))
            assert len(queue) <= 3


class TestHypothesisModel:
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), max_size=80))
    @settings(max_examples=80)
    def test_unbounded_matches_sorted_reference(self, keys):
        queue = BoundedPriorityQueue()
        for index, key in enumerate(keys):
            queue.enqueue(index, key)
        drained_keys = []
        while queue:
            _, key = queue.dequeue_with_key()
            drained_keys.append(key)
        assert drained_keys == sorted(keys, reverse=True)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80)
    def test_bounded_keeps_heaviest(self, keys, capacity):
        """After all insertions, the queue holds a maximal multiset of keys."""
        queue = BoundedPriorityQueue(capacity=capacity)
        for index, key in enumerate(keys):
            queue.enqueue(index, key)
        kept = sorted((queue.dequeue_with_key()[1] for _ in range(len(queue))), reverse=True)
        expected = sorted(keys, reverse=True)[: len(kept)]
        assert kept == expected
        assert len(kept) <= capacity

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 20)), max_size=80))
    @settings(max_examples=60)
    def test_interleaved_ops_vs_model(self, operations):
        """Interleaved enqueue/dequeue agrees with a sorted-list model."""
        queue = BoundedPriorityQueue()
        model: list[int] = []
        counter = 0
        for is_dequeue, key in operations:
            if is_dequeue and model:
                expected = max(model)
                model.remove(expected)
                _, got = queue.dequeue_with_key()
                assert got == expected
            else:
                queue.enqueue(counter, key)
                model.append(key)
                counter += 1
        assert len(queue) == len(model)
