"""Tests for rate estimation and the adaptive findK controller."""

from __future__ import annotations

import pytest

from repro.priority.rates import AdaptiveK, RateEstimator


class TestRateEstimator:
    def test_no_estimate_before_two_samples(self):
        estimator = RateEstimator()
        assert estimator.rate is None
        estimator.record(0.0)
        assert estimator.rate is None

    def test_steady_rate(self):
        estimator = RateEstimator()
        for i in range(10):
            estimator.record(i * 0.5)
        assert estimator.rate == pytest.approx(2.0, rel=0.01)

    def test_rate_with_amounts(self):
        estimator = RateEstimator()
        for i in range(10):
            estimator.record(float(i), amount=3.0)
        assert estimator.rate == pytest.approx(3.0, rel=0.01)

    def test_rate_at_decays_when_quiet(self):
        estimator = RateEstimator()
        for i in range(5):
            estimator.record(i * 0.1)
        busy_rate = estimator.rate_at(0.4)
        quiet_rate = estimator.rate_at(100.0)
        assert quiet_rate < busy_rate
        assert quiet_rate < 0.1

    def test_rate_at_before_samples(self):
        assert RateEstimator().rate_at(1.0) is None

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            RateEstimator().record(0.0, amount=-1.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(alpha=0.0)

    def test_reset(self):
        estimator = RateEstimator()
        estimator.record(0.0)
        estimator.record(1.0)
        estimator.reset()
        assert estimator.rate is None
        assert estimator.samples == 0

    def test_adapts_to_rate_change(self):
        estimator = RateEstimator(alpha=0.5)
        for i in range(10):
            estimator.record(i * 1.0)  # rate 1
        for i in range(10):
            estimator.record(10.0 + i * 0.1)  # rate 10
        assert estimator.rate > 5.0


class TestAdaptiveK:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveK(initial=2, minimum=4)
        with pytest.raises(ValueError):
            AdaptiveK(growth=0.9)
        with pytest.raises(ValueError):
            AdaptiveK(shrink=1.5)

    def test_grows_when_matcher_has_headroom(self):
        controller = AdaptiveK(initial=64)
        k = controller.update(input_rate=1.0, service_rate=100.0)
        assert k > 64

    def test_shrinks_when_input_outpaces_service(self):
        controller = AdaptiveK(initial=64)
        k = controller.update(input_rate=100.0, service_rate=1.0)
        assert k < 64

    def test_unchanged_without_estimates(self):
        controller = AdaptiveK(initial=64)
        assert controller.update(None, 10.0) == 64
        assert controller.update(10.0, None) == 64

    def test_tie_holds_k_steady(self):
        """input_rate == service_rate is a balanced stream: K must not move.

        Regression: ties used to take the shrink branch, ratcheting K down
        to the minimum on a perfectly balanced stream.
        """
        controller = AdaptiveK(initial=64)
        for _ in range(50):
            assert controller.update(input_rate=5.0, service_rate=5.0) == 64
        assert controller.value == 64

    def test_clamped_to_bounds(self):
        controller = AdaptiveK(initial=8, minimum=4, maximum=16)
        for _ in range(20):
            controller.update(input_rate=1.0, service_rate=100.0)
        assert controller.value == 16
        for _ in range(20):
            controller.update(input_rate=100.0, service_rate=1.0)
        assert controller.value == 4

    def test_convergence_behavior(self):
        """Alternating pressure keeps K inside bounds and finite."""
        controller = AdaptiveK(initial=64)
        for i in range(100):
            if i % 2:
                controller.update(10.0, 1.0)
            else:
                controller.update(1.0, 10.0)
            assert controller.minimum <= controller.value <= controller.maximum
