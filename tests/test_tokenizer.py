"""Tests for the schema-agnostic tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tokenizer import Tokenizer, default_tokenizer


class TestTokenizer:
    def test_lowercases(self):
        assert set(Tokenizer().tokenize("HeLLo WoRLD")) == {"hello", "world"}

    def test_splits_on_punctuation(self):
        assert set(Tokenizer().tokenize("a.b,c-d_e(f)g")) == set()  # all length-1
        assert set(Tokenizer().tokenize("ab.cd,ef")) == {"ab", "cd", "ef"}

    def test_min_length_filters(self):
        tokenizer = Tokenizer(min_length=4)
        assert set(tokenizer.tokenize("one four fivess")) == {"four", "fivess"}

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_stopwords_removed(self):
        assert "the" not in set(Tokenizer().tokenize("the matrix"))

    def test_custom_stopwords(self):
        tokenizer = Tokenizer(stopwords=frozenset({"matrix"}))
        assert set(tokenizer.tokenize("the matrix")) == {"the"}

    def test_numbers_kept(self):
        assert "1999" in set(Tokenizer().tokenize("Matrix 1999"))

    def test_max_tokens_cap(self):
        tokenizer = Tokenizer(max_tokens_per_value=2)
        assert len(list(tokenizer.tokenize("aa bb cc dd"))) == 2

    def test_tokenize_profile_unions(self):
        tokens = Tokenizer().tokenize_profile(["alpha beta", "beta gamma"])
        assert tokens == {"alpha", "beta", "gamma"}

    def test_empty_value(self):
        assert list(Tokenizer().tokenize("")) == []

    def test_default_tokenizer_is_singleton(self):
        assert default_tokenizer() is default_tokenizer()

    @given(st.text(max_size=200))
    def test_tokens_always_lowercase_alphanumeric(self, value):
        for token in Tokenizer().tokenize(value):
            assert token == token.lower()
            assert token.isalnum()
            assert len(token) >= 2

    @given(st.text(max_size=100))
    def test_tokenization_is_deterministic(self, value):
        assert list(Tokenizer().tokenize(value)) == list(Tokenizer().tokenize(value))
