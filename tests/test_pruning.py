"""Tests for the batch meta-blocking pruning algorithms (WEP/CEP/CNP)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.blocks import BlockCollection
from repro.core.profile import EntityProfile
from repro.metablocking.pruning import (
    cardinality_edge_pruning,
    cardinality_node_pruning,
    enumerate_weighted_comparisons,
    weighted_edge_pruning,
)

from tests.conftest import make_profile


def _collection() -> BlockCollection:
    collection = BlockCollection(max_block_size=None)
    collection.add_profile(make_profile(0, "alpha beta gamma"))
    collection.add_profile(make_profile(1, "alpha beta gamma"))  # CBS 3 with p0
    collection.add_profile(make_profile(2, "alpha beta"))        # CBS 2 with p0/p1
    collection.add_profile(make_profile(3, "alpha"))             # CBS 1 with all
    return collection


ALWAYS = lambda x, y: True


class TestEnumerate:
    def test_all_coblock_pairs_once(self):
        weighted = enumerate_weighted_comparisons(_collection(), ALWAYS)
        pairs = [w.pair for w in weighted]
        assert len(pairs) == len(set(pairs)) == 6

    def test_valid_pair_filter(self):
        weighted = enumerate_weighted_comparisons(
            _collection(), lambda x, y: (x, y) != (0, 1)
        )
        assert (0, 1) not in {w.pair for w in weighted}

    def test_weights_positive(self):
        for w in enumerate_weighted_comparisons(_collection(), ALWAYS):
            assert w.weight > 0


class TestWEP:
    def test_keeps_above_average(self):
        kept = weighted_edge_pruning(_collection(), ALWAYS)
        # weights: (0,1)=3, (0,2)=(1,2)=2, (0,3)=(1,3)=(2,3)=1 → avg = 10/6
        assert {w.pair for w in kept} == {(0, 1), (0, 2), (1, 2)}

    def test_empty_collection(self):
        assert weighted_edge_pruning(BlockCollection(), ALWAYS) == []

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=20))
    @settings(max_examples=40)
    def test_retained_weights_dominate_average(self, token_choices):
        collection = BlockCollection(max_block_size=None)
        for pid, token in enumerate(token_choices):
            collection.add_profile(EntityProfile(pid, {"v": f"tok{token} own{pid}"}))
        all_weighted = enumerate_weighted_comparisons(collection, ALWAYS)
        kept = weighted_edge_pruning(collection, ALWAYS)
        if all_weighted:
            average = sum(w.weight for w in all_weighted) / len(all_weighted)
            assert all(w.weight >= average for w in kept)


class TestCEP:
    def test_top_k(self):
        kept = cardinality_edge_pruning(_collection(), ALWAYS, k=2)
        assert len(kept) == 2
        assert kept[0].pair == (0, 1)

    def test_default_budget(self):
        kept = cardinality_edge_pruning(_collection(), ALWAYS)
        assert 1 <= len(kept) <= 6

    def test_k_validation(self):
        with pytest.raises(ValueError):
            cardinality_edge_pruning(_collection(), ALWAYS, k=0)

    def test_k_larger_than_edges(self):
        kept = cardinality_edge_pruning(_collection(), ALWAYS, k=100)
        assert len(kept) == 6


class TestCNP:
    def test_per_node_budget(self):
        kept = cardinality_node_pruning(_collection(), ALWAYS, k=1)
        pairs = {w.pair for w in kept}
        # each node's single best edge: (0,1) is best for 0 and 1; 2 keeps
        # one of its CBS-2 edges; 3 keeps one CBS-1 edge
        assert (0, 1) in pairs
        assert len(pairs) >= 3

    def test_no_duplicates(self):
        kept = cardinality_node_pruning(_collection(), ALWAYS, k=3)
        pairs = [w.pair for w in kept]
        assert len(pairs) == len(set(pairs))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            cardinality_node_pruning(_collection(), ALWAYS, k=0)

    def test_cnp_superset_of_best_edges(self):
        """Every profile's single heaviest edge survives CNP for any k>=1."""
        collection = _collection()
        kept_pairs = {w.pair for w in cardinality_node_pruning(collection, ALWAYS, k=1)}
        weighted = enumerate_weighted_comparisons(collection, ALWAYS)
        by_node: dict[int, tuple[float, tuple[int, int]]] = {}
        for w in weighted:
            for pid in w.pair:
                best = by_node.get(pid)
                if best is None or w.weight > best[0]:
                    by_node[pid] = (w.weight, w.pair)
        for _, (weight, pair) in by_node.items():
            # the node's best pair (or an equally weighted one) is retained
            assert any(
                p in kept_pairs
                for p in [pair]
            ) or any(
                w.weight >= weight and (pid in w.pair)
                for pid in pair
                for w in cardinality_node_pruning(collection, ALWAYS, k=1)
            )
