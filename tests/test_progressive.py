"""Tests for the batch progressive baselines PPS, PBS, and BATCH."""

from __future__ import annotations

import pytest

from repro.core.increments import Increment
from repro.progressive.batch import BatchERSystem
from repro.progressive.pbs import PBSSystem
from repro.progressive.pps import PPSSystem
from repro.streaming.system import PipelineStats

from tests.conftest import make_profile


def _stats(remaining=None) -> PipelineStats:
    return PipelineStats(
        now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0, remaining_budget=remaining
    )


def _drain(system, max_rounds=500):
    pairs = []
    empty_streak = 0
    for _ in range(max_rounds):
        result = system.emit(_stats())
        pairs.extend(result.batch)
        if result.batch:
            empty_streak = 0
            continue
        empty_streak += 1
        if empty_streak >= 2 and system.on_idle(_stats()) is None:
            break
    return pairs


PROFILES = (
    make_profile(0, "alpha beta gamma"),
    make_profile(1, "alpha beta gamma"),
    make_profile(2, "alpha delta"),
    make_profile(3, "epsilon zeta"),
    make_profile(4, "epsilon zeta eta"),
)


class TestPPS:
    def test_initialization_then_emission(self):
        system = PPSSystem()
        system.ingest(Increment(0, PROFILES))
        first = system.emit(_stats())
        assert first.is_empty       # initialization round
        assert first.cost > 0
        second = system.emit(_stats())
        assert second.batch          # emission starts

    def test_best_pairs_first(self):
        system = PPSSystem()
        system.ingest(Increment(0, PROFILES))
        system.emit(_stats())  # init
        pairs = _drain(system)
        # the heaviest edge (0,1) with CBS 3 must come first
        assert pairs[0] == (0, 1)

    def test_budget_burn_when_init_exceeds_remaining(self):
        system = PPSSystem()
        system.ingest(Increment(0, PROFILES))
        result = system.emit(_stats(remaining=1e-12))
        assert result.is_empty
        assert result.cost >= 1e-12
        assert system.initializations == 0  # actual build skipped

    def test_scope_last_resets_state(self):
        system = PPSSystem(scope="last")
        system.ingest(Increment(0, PROFILES[:2]))
        system.emit(_stats())
        system.ingest(Increment(1, PROFILES[2:]))
        system.emit(_stats())  # re-init over last increment only
        pairs = _drain(system)
        # inter-increment pair (0,1) can never appear after the reset
        assert all(pair not in [(0, 1)] for pair in pairs)

    def test_global_scope_reinitializes(self):
        system = PPSSystem(scope="all")
        system.ingest(Increment(0, PROFILES[:2]))
        system.emit(_stats())
        assert system.initializations == 1
        system.ingest(Increment(1, PROFILES[2:]))
        system.emit(_stats())
        assert system.initializations == 2

    def test_reinit_cost_accumulates_per_increment(self):
        """Two increments ingested back-to-back owe two re-initializations."""
        system = PPSSystem(scope="all")
        system.ingest(Increment(0, PROFILES[:2]))
        single = system._pending_init_cost
        system.ingest(Increment(1, PROFILES[2:]))
        assert system._pending_init_cost > single

    def test_top_k_limits_emission(self):
        wide = tuple(make_profile(pid, "shared") for pid in range(12))
        limited = PPSSystem(top_k=1)
        limited.ingest(Increment(0, wide))
        limited.emit(_stats())
        generous = PPSSystem(top_k=10)
        generous.ingest(Increment(0, wide))
        generous.emit(_stats())
        assert len(_drain(limited)) < len(_drain(generous))

    def test_invalid_scope(self):
        with pytest.raises(ValueError):
            PPSSystem(scope="bogus")


class TestPBS:
    def test_smallest_blocks_first(self):
        system = PBSSystem()
        profiles = (
            make_profile(0, "tiny common"),
            make_profile(1, "tiny common"),
            make_profile(2, "common"),
            make_profile(3, "common"),
        )
        system.ingest(Increment(0, profiles))
        system.emit(_stats())  # init (cheap for PBS)
        pairs = _drain(system)
        assert pairs[0] == (0, 1)

    def test_init_is_cheap_compared_to_pps(self):
        pps, pbs = PPSSystem(), PBSSystem()
        profiles = tuple(make_profile(pid, f"shared extra{pid % 3}") for pid in range(30))
        pps.ingest(Increment(0, profiles))
        pbs.ingest(Increment(0, profiles))
        pps_init = pps.emit(_stats()).cost
        pbs_init = pbs.emit(_stats()).cost
        assert pbs_init < pps_init

    def test_no_duplicate_pairs(self):
        system = PBSSystem()
        profiles = (make_profile(0, "alpha beta"), make_profile(1, "alpha beta"))
        system.ingest(Increment(0, profiles))
        system.emit(_stats())
        pairs = _drain(system)
        assert pairs.count((0, 1)) == 1

    def test_cbs_orders_within_block(self):
        system = PBSSystem()
        profiles = (
            make_profile(0, "blk alpha beta"),
            make_profile(1, "blk alpha beta"),   # strong pair within 'blk'
            make_profile(2, "blk"),
        )
        system.ingest(Increment(0, profiles))
        system.emit(_stats())
        pairs = _drain(system)
        assert pairs[0] == (0, 1)


class TestBatchER:
    def test_emits_all_block_pairs(self):
        system = BatchERSystem()
        profiles = (
            make_profile(0, "a1"),
            make_profile(1, "a1"),
            make_profile(2, "a1 b1"),
            make_profile(3, "b1"),
        )
        system.ingest(Increment(0, profiles))
        system.emit(_stats())
        pairs = set(_drain(system))
        assert pairs == {(0, 1), (0, 2), (1, 2), (2, 3)}

    def test_clean_clean_filtering(self):
        system = BatchERSystem(clean_clean=True)
        profiles = (
            make_profile(0, "tok", source=0),
            make_profile(1, "tok", source=0),
            make_profile(2, "tok", source=1),
        )
        system.ingest(Increment(0, profiles))
        system.emit(_stats())
        assert set(_drain(system)) == {(0, 2), (1, 2)}

    def test_empty_increment_noop(self):
        system = BatchERSystem()
        cost = system.ingest(Increment(0, ()))
        assert cost >= 0
        assert not system._dirty
