"""Tests for the MinHash-LSH blocking substrate.

Covers the hasher's determinism contract (seeded, hash-seed independent,
order independent), the :class:`BlockingSubstrate` protocol conformance of
all three substrates, the ``EngineOptions``/CLI threading of the blocking
knobs, end-to-end engine parity on the LSH substrates, and crash-resume
bit-identity of LSH state through engine checkpoints.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import EngineOptions
from repro.blocking.blocks import BlockCollection
from repro.blocking.lsh import LSHBlockCollection, LSHPrefilterCollection, MinHasher
from repro.blocking.substrate import (
    BLOCKING_SUBSTRATES,
    BlockingConfig,
    BlockingSubstrate,
    make_collection,
)
from repro.cli import build_parser
from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import _build_matcher, _build_system
from repro.pier.base import PierSystem
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES
from repro.resilience import ResilienceConfig, SimulatedCrash
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

from tests.conftest import make_profile


class TestMinHasher:
    def test_same_seed_same_signature(self):
        tokens = frozenset({"alpha", "beta", "gamma"})
        first = MinHasher(bands=8, rows=2, seed=7).signature(tokens)
        second = MinHasher(bands=8, rows=2, seed=7).signature(tokens)
        assert first == second
        assert len(first) == 16

    def test_different_seed_differs(self):
        tokens = frozenset({"alpha", "beta", "gamma"})
        assert MinHasher(8, 2, seed=0).signature(tokens) != MinHasher(
            8, 2, seed=1
        ).signature(tokens)

    def test_empty_tokens_empty_signature(self):
        assert MinHasher(4, 2).signature(()) == ()

    def test_signature_is_order_independent(self):
        hasher = MinHasher(6, 3, seed=3)
        tokens = ["zebra", "apple", "mango", "kiwi"]
        assert hasher.signature(tokens) == hasher.signature(list(reversed(tokens)))

    def test_bucket_keys_shape(self):
        hasher = MinHasher(bands=4, rows=2, seed=0)
        keys = hasher.bucket_keys(hasher.signature({"alpha", "beta"}))
        assert len(keys) == 4
        for band, key in enumerate(keys):
            prefix, _, slice_part = key.partition(":")
            assert prefix == f"b{band}"
            assert len(slice_part.split(".")) == 2

    def test_similar_sets_collide_dissimilar_do_not(self):
        hasher = MinHasher(bands=16, rows=2, seed=0)
        base = {f"tok{i}" for i in range(20)}
        near = set(base)
        near.remove("tok0")
        far = {f"other{i}" for i in range(20)}
        buckets = lambda tokens: set(hasher.bucket_keys(hasher.signature(tokens)))
        assert buckets(base) & buckets(near)  # Jaccard ~0.95 → co-bucketed
        assert not (buckets(base) & buckets(far))  # Jaccard 0 → disjoint

    def test_validation(self):
        with pytest.raises(ValueError):
            MinHasher(bands=0, rows=2)
        with pytest.raises(ValueError):
            MinHasher(bands=2, rows=0)


class TestSubstrateProtocol:
    def test_all_substrates_satisfy_protocol(self):
        for collection in (
            BlockCollection(),
            LSHBlockCollection(),
            LSHPrefilterCollection(),
        ):
            assert isinstance(collection, BlockingSubstrate)

    def test_make_collection_factory(self):
        assert type(make_collection(None)) is BlockCollection
        assert type(make_collection(BlockingConfig())) is BlockCollection
        lsh = make_collection(
            BlockingConfig(substrate="lsh", lsh_bands=4, lsh_rows=3, lsh_seed=9),
            clean_clean=True,
            max_block_size=50,
        )
        assert type(lsh) is LSHBlockCollection
        assert lsh.clean_clean is True
        assert lsh.max_block_size == 50
        assert (lsh.hasher.bands, lsh.hasher.rows, lsh.hasher.seed) == (4, 3, 9)
        prefilter = make_collection(BlockingConfig(substrate="lsh-prefilter"))
        assert type(prefilter) is LSHPrefilterCollection

    def test_token_substrate_defaults(self):
        collection = BlockCollection()
        assert collection.prunes_candidates is False
        assert collection.allows_pair(1, 2) is True
        assert collection.drain_metrics() == {}


class TestBlockingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingConfig(substrate="nope")
        with pytest.raises(ValueError):
            BlockingConfig(lsh_bands=0)
        with pytest.raises(ValueError):
            BlockingConfig(lsh_rows=0)

    def test_threshold(self):
        config = BlockingConfig(substrate="lsh", lsh_bands=16, lsh_rows=2)
        assert config.threshold == pytest.approx(0.25)


class TestLSHBlockCollection:
    def test_buckets_are_the_blocks(self):
        collection = LSHBlockCollection(bands=8, rows=2, seed=0)
        collection.add_profile(make_profile(1, "alpha beta gamma"))
        assert collection.blocks_of(1)
        assert all(key.startswith("b") for key in collection.blocks_of(1))
        assert collection.block_count_of(1) <= 8

    def test_near_duplicates_share_blocks(self):
        collection = LSHBlockCollection(bands=16, rows=2, seed=0)
        text = " ".join(f"tok{i}" for i in range(20))
        collection.add_profile(make_profile(1, text))
        collection.add_profile(make_profile(2, text + " extra"))
        collection.add_profile(make_profile(3, " ".join(f"far{i}" for i in range(20))))
        assert collection.common_blocks(1, 2) > 0
        assert collection.common_blocks(1, 3) == 0

    def test_signature_cache_and_telemetry(self):
        collection = LSHBlockCollection(bands=4, rows=2, seed=0)
        profile = make_profile(1, "alpha beta")
        collection.add_profile(profile)
        assert collection.signature_count() == 1
        cached = collection.signature_of(profile)
        assert cached is collection.signature_of(profile)  # no recompute
        pending = collection.drain_metrics()
        assert pending["blocking.lsh.signatures"] == 1
        assert pending["blocking.lsh.buckets"] >= 1
        assert collection.drain_metrics() == {}  # drained exactly once


class TestLSHPrefilterCollection:
    def test_blocks_stay_token_based(self):
        prefilter = LSHPrefilterCollection(bands=8, rows=2, seed=0)
        token = BlockCollection()
        for collection in (prefilter, token):
            collection.add_profile(make_profile(1, "alpha beta"))
            collection.add_profile(make_profile(2, "beta gamma"))
        assert prefilter.blocks_of(1) == token.blocks_of(1)
        assert prefilter.blocks_of(2) == token.blocks_of(2)
        assert prefilter.common_blocks(1, 2) == token.common_blocks(1, 2)

    def test_allows_pair_prunes_disjoint_signatures(self):
        collection = LSHPrefilterCollection(bands=16, rows=2, seed=0)
        text = " ".join(f"tok{i}" for i in range(20))
        collection.add_profile(make_profile(1, text))
        collection.add_profile(make_profile(2, text + " extra"))
        collection.add_profile(make_profile(3, " ".join(f"far{i}" for i in range(20))))
        collection.drain_metrics()
        assert collection.allows_pair(1, 2) is True
        assert collection.allows_pair(1, 3) is False
        assert collection.drain_metrics()["blocking.lsh.candidates_pruned"] == 1

    def test_allows_pair_permissive_without_signature(self):
        collection = LSHPrefilterCollection()
        collection.add_profile(make_profile(1, "alpha"))
        assert collection.allows_pair(1, 999) is True  # unknown pid: no evidence
        assert collection.allows_pair(998, 999) is True

    def test_prunes_candidates_flag(self):
        assert LSHPrefilterCollection.prunes_candidates is True
        assert LSHBlockCollection.prunes_candidates is False


class TestEngineOptionsBlocking:
    def test_defaults_are_token(self):
        options = EngineOptions()
        config = options.blocking_config()
        assert config == BlockingConfig()
        assert config.substrate == "token"

    def test_blocking_config_roundtrip(self):
        options = EngineOptions(
            blocking="lsh-prefilter", lsh_bands=8, lsh_rows=3, lsh_seed=42
        )
        assert options.blocking_config() == BlockingConfig(
            substrate="lsh-prefilter", lsh_bands=8, lsh_rows=3, lsh_seed=42
        )

    def test_validation_delegated(self):
        with pytest.raises(ValueError):
            EngineOptions(blocking="minhash")
        with pytest.raises(ValueError):
            EngineOptions(blocking="lsh", lsh_bands=0)
        with pytest.raises(ValueError):
            EngineOptions(blocking="lsh", lsh_rows=-1)


class TestCLIBlockingFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.blocking == "token"
        assert (args.lsh_bands, args.lsh_rows, args.lsh_seed) == (16, 2, 0)

    def test_parses_lsh_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "--blocking", "lsh-prefilter",
                "--lsh-bands", "8",
                "--lsh-rows", "3",
                "--lsh-seed", "7",
            ]
        )
        assert args.blocking == "lsh-prefilter"
        assert (args.lsh_bands, args.lsh_rows, args.lsh_seed) == (8, 3, 7)

    def test_rejects_unknown_substrate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--blocking", "simhash"])

    def test_choices_match_registry(self):
        action = next(
            a
            for a in build_parser()._subparsers._group_actions[0].choices["run"]._actions
            if "--blocking" in a.option_strings
        )
        assert tuple(action.choices) == BLOCKING_SUBSTRATES


# With the cheap JS matcher these streams exhaust their work at ~1.8s of
# virtual time, so the simulated crash must land well before that (and after
# the first checkpoint) for the resume path to be exercised.
BUDGET = 10.0
CHECKPOINT_EVERY = 0.3
CRASH_AT = 1.0


def _plan(dataset, n=10, rate=5.0):
    return make_stream_plan(split_into_increments(dataset, n, seed=0), rate=rate)


def _factory(substrate, dataset, system="I-PCS"):
    config = BlockingConfig(substrate=substrate)
    return lambda: _build_system(system, dataset, blocking=config)


class TestLSHEndToEnd:
    @pytest.mark.parametrize("substrate", ["lsh", "lsh-prefilter"])
    def test_lsh_cuts_candidates_and_still_matches(self, small_dblp_acm, substrate):
        plan = _plan(small_dblp_acm)
        results = {}
        for name in ("token", substrate):
            engine = StreamingEngine(_build_matcher("JS"), budget=BUDGET)
            results[name] = engine.run(
                _factory(name, small_dblp_acm)(), plan, small_dblp_acm.ground_truth
            )
        assert 0 < results[substrate].comparisons_executed
        assert (
            results[substrate].comparisons_executed
            < results["token"].comparisons_executed
        )
        assert len(results[substrate].duplicates) > 0
        counters = results[substrate].details["metrics"]["counters"]
        assert counters["blocking.lsh.signatures"] > 0
        assert counters["blocking.lsh.buckets"] > 0
        if substrate == "lsh-prefilter":
            assert counters["blocking.lsh.candidates_pruned"] > 0

    @pytest.mark.parametrize("substrate", ["lsh", "lsh-prefilter"])
    def test_serial_pipelined_parity(self, small_dblp_acm, substrate):
        plan = _plan(small_dblp_acm)
        factory = _factory(substrate, small_dblp_acm, system="I-PES")
        serial = StreamingEngine(_build_matcher("JS"), budget=BUDGET).run(
            factory(), plan, small_dblp_acm.ground_truth
        )
        pipelined = PipelinedStreamingEngine(_build_matcher("JS"), budget=BUDGET).run(
            factory(), plan, small_dblp_acm.ground_truth
        )
        assert pipelined.duplicates == serial.duplicates
        assert pipelined.comparisons_executed == serial.comparisons_executed

    def test_runs_deterministic_across_repeats(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        runs = [
            StreamingEngine(_build_matcher("JS"), budget=BUDGET).run(
                _factory("lsh", small_dblp_acm)(), plan, small_dblp_acm.ground_truth
            )
            for _ in range(2)
        ]
        assert runs[0].duplicates == runs[1].duplicates
        assert runs[0].curve.points == runs[1].curve.points
        assert (
            runs[0].details["metrics"]["counters"]
            == runs[1].details["metrics"]["counters"]
        )


class TestLSHCrashResume:
    """LSH state (signatures, buckets, pending telemetry) must ride through
    checkpoints so a resumed run is bit-identical to an uninterrupted one."""

    @pytest.mark.parametrize("substrate", ["lsh", "lsh-prefilter"])
    def test_resume_bit_identical(self, small_dblp_acm, substrate):
        plan = _plan(small_dblp_acm)
        factory = _factory(substrate, small_dblp_acm)
        uninterrupted = StreamingEngine(
            _build_matcher("JS"), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
        ).run(factory(), plan, small_dblp_acm.ground_truth)
        crashing = StreamingEngine(
            _build_matcher("JS"),
            budget=BUDGET,
            resilience=ResilienceConfig(
                checkpoint_every=CHECKPOINT_EVERY, crash_at=CRASH_AT
            ),
        )
        with pytest.raises(SimulatedCrash) as exc:
            crashing.run(factory(), plan, small_dblp_acm.ground_truth)
        checkpoint = exc.value.checkpoint
        assert checkpoint is not None
        resumed = StreamingEngine(
            _build_matcher("JS"), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
        ).run(factory(), plan, small_dblp_acm.ground_truth, resume_from=checkpoint)
        assert resumed.duplicates == uninterrupted.duplicates
        assert resumed.curve.points == uninterrupted.curve.points
        assert resumed.comparisons_executed == uninterrupted.comparisons_executed
        assert (
            resumed.details["metrics"]["counters"]
            == uninterrupted.details["metrics"]["counters"]
        )

    def test_checkpoint_carries_lsh_state(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        factory = _factory("lsh-prefilter", small_dblp_acm)
        crashing = StreamingEngine(
            _build_matcher("JS"),
            budget=BUDGET,
            resilience=ResilienceConfig(
                checkpoint_every=CHECKPOINT_EVERY, crash_at=CRASH_AT
            ),
        )
        with pytest.raises(SimulatedCrash) as exc:
            crashing.run(factory(), plan, small_dblp_acm.ground_truth)
        checkpoint = exc.value.checkpoint
        collection = checkpoint.system_state["blocker"].collection
        assert isinstance(collection, LSHPrefilterCollection)
        assert collection.signature_count() > 0
        assert collection.bucket_count() > 0


_HASHSEED_SCRIPT = """
from repro.blocking.lsh import LSHBlockCollection, LSHPrefilterCollection
from repro.datasets.registry import load_dataset

dataset = load_dataset("dblp_acm", scale=0.1)
lsh = LSHBlockCollection(clean_clean=True, bands=16, rows=2, seed=0)
prefilter = LSHPrefilterCollection(clean_clean=True, bands=16, rows=2, seed=0)
for profile in dataset.profiles:
    lsh.add_profile(profile)
    prefilter.add_profile(profile)
for profile in dataset.profiles[:40]:
    print(profile.pid, lsh.signature_of(profile))
    print(profile.pid, sorted(lsh.blocks_of(profile.pid)))
pids = [profile.pid for profile in dataset.profiles[:40]]
for x in pids:
    for y in pids:
        if x < y and not prefilter.allows_pair(x, y):
            print("pruned", x, y)
print(sorted(prefilter.drain_metrics().items()))
"""


class TestHashSeedStability:
    """Signatures, buckets, and prunes are independent of PYTHONHASHSEED."""

    @staticmethod
    def _stream_under_seed(seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout

    def test_lsh_identical_across_hash_seeds(self):
        out_a = self._stream_under_seed("0")
        out_b = self._stream_under_seed("31337")
        assert out_a == out_b
        assert len(out_a.splitlines()) > 80  # the probe emitted real work
