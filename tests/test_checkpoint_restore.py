"""Crash-resume determinism tests for engine checkpoint/restore.

The recovery guarantee under test: a run that crashes mid-flight and resumes
from its latest checkpoint finishes with the *same* result as a run that was
never interrupted — same duplicate set, identical progress curve beyond the
recovery point, no comparison double-counted, converged counters.
"""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher
from repro.incremental.ibase import IBaseSystem
from repro.pier.base import PierSystem
from repro.pier.ipbs import IPBS
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES
from repro.resilience import (
    FaultSpec,
    FaultyMatcher,
    ResilienceConfig,
    SimulatedCrash,
    apply_faults,
)
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

STRATEGY_FACTORIES = {
    "I-PCS": lambda: PierSystem(IPCS()),
    "I-PBS": lambda: PierSystem(IPBS()),
    "I-PES": lambda: PierSystem(IPES()),
    "I-BASE": IBaseSystem,
}

BUDGET = 10.0
CHECKPOINT_EVERY = 1.5
CRASH_AT = 5.0


def _plan(dataset, n=10, rate=5.0):
    return make_stream_plan(split_into_increments(dataset, n, seed=0), rate=rate)


def _crash_and_resume(factory, plan, truth, engine_cls=StreamingEngine, matcher="ED"):
    """Run to a simulated crash, then resume on fresh engine + system."""
    crashing = engine_cls(
        make_matcher(matcher), budget=BUDGET,
        resilience=ResilienceConfig(
            checkpoint_every=CHECKPOINT_EVERY, crash_at=CRASH_AT
        ),
    )
    with pytest.raises(SimulatedCrash) as exc:
        crashing.run(factory(), plan, truth)
    checkpoint = exc.value.checkpoint
    assert checkpoint is not None, "crash happened before the first checkpoint"
    assert checkpoint.clock <= exc.value.clock
    resumed_engine = engine_cls(
        make_matcher(matcher), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
    )
    return resumed_engine.run(factory(), plan, truth, resume_from=checkpoint), checkpoint


def _assert_runs_identical(uninterrupted, resumed):
    assert resumed.duplicates == uninterrupted.duplicates
    assert resumed.curve.points == uninterrupted.curve.points
    assert resumed.comparisons_executed == uninterrupted.comparisons_executed
    assert resumed.clock_end == uninterrupted.clock_end
    assert resumed.increments_ingested == uninterrupted.increments_ingested
    assert (
        resumed.details["metrics"]["counters"]
        == uninterrupted.details["metrics"]["counters"]
    )


class TestCrashResumeDeterminism:
    @pytest.mark.parametrize("name", list(STRATEGY_FACTORIES))
    def test_serial_engine(self, name, small_dblp_acm):
        factory = STRATEGY_FACTORIES[name]
        plan = _plan(small_dblp_acm)
        uninterrupted = StreamingEngine(
            make_matcher("ED"), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
        ).run(factory(), plan, small_dblp_acm.ground_truth)
        resumed, checkpoint = _crash_and_resume(
            factory, plan, small_dblp_acm.ground_truth
        )
        assert checkpoint.clock < BUDGET
        _assert_runs_identical(uninterrupted, resumed)

    @pytest.mark.parametrize("name", ["I-PES", "I-BASE"])
    def test_pipelined_engine(self, name, small_dblp_acm):
        factory = STRATEGY_FACTORIES[name]
        plan = _plan(small_dblp_acm)
        uninterrupted = PipelinedStreamingEngine(
            make_matcher("ED"), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
        ).run(factory(), plan, small_dblp_acm.ground_truth)
        resumed, checkpoint = _crash_and_resume(
            factory, plan, small_dblp_acm.ground_truth,
            engine_cls=PipelinedStreamingEngine,
        )
        assert checkpoint.ingest_clock is not None
        _assert_runs_identical(uninterrupted, resumed)

    def test_no_double_counted_comparisons(self, small_dblp_acm):
        """The resumed run's executed total equals the uninterrupted one and
        contains no re-executions of pre-crash pairs."""
        factory = STRATEGY_FACTORIES["I-PES"]
        plan = _plan(small_dblp_acm)
        uninterrupted = StreamingEngine(
            make_matcher("ED"), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
        ).run(factory(), plan, small_dblp_acm.ground_truth)
        resumed, checkpoint = _crash_and_resume(
            factory, plan, small_dblp_acm.ground_truth
        )
        assert resumed.comparisons_executed == uninterrupted.comparisons_executed
        pre_crash = checkpoint.recorder_state["comparisons_executed"]
        assert 0 < pre_crash < resumed.comparisons_executed
        assert (
            resumed.details["metrics"]["counters"]["engine.comparisons_executed"]
            == uninterrupted.comparisons_executed
        )

    def test_curve_identical_beyond_recovery_point(self, small_dblp_acm):
        factory = STRATEGY_FACTORIES["I-PCS"]
        plan = _plan(small_dblp_acm)
        uninterrupted = StreamingEngine(
            make_matcher("ED"), budget=BUDGET, checkpoint_every=CHECKPOINT_EVERY
        ).run(factory(), plan, small_dblp_acm.ground_truth)
        resumed, checkpoint = _crash_and_resume(
            factory, plan, small_dblp_acm.ground_truth
        )
        beyond = [p for p in resumed.curve.points if p.time >= checkpoint.clock]
        expected = [p for p in uninterrupted.curve.points if p.time >= checkpoint.clock]
        assert beyond == expected and beyond

    def test_crash_resume_under_chaos(self, small_dblp_acm):
        """Restoring the FaultyMatcher RNG replays the identical fault
        schedule, so even chaotic runs resume bit-identically."""
        plan = apply_faults(_plan(small_dblp_acm), FaultSpec.chaos(seed=7)).plan
        resilience = ResilienceConfig(checkpoint_every=CHECKPOINT_EVERY)

        def engine(crash_at=None, resil=resilience):
            from dataclasses import replace

            return StreamingEngine(
                FaultyMatcher(make_matcher("ED"), seed=7), budget=BUDGET,
                resilience=replace(resil, crash_at=crash_at),
            )

        uninterrupted = engine().run(
            PierSystem(IPES()), plan, small_dblp_acm.ground_truth
        )
        with pytest.raises(SimulatedCrash) as exc:
            engine(crash_at=CRASH_AT).run(
                PierSystem(IPES()), plan, small_dblp_acm.ground_truth
            )
        resumed = engine().run(
            PierSystem(IPES()), plan, small_dblp_acm.ground_truth,
            resume_from=exc.value.checkpoint,
        )
        _assert_runs_identical(uninterrupted, resumed)


class TestCheckpointPlumbing:
    def test_checkpoints_taken_counted(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        engine = StreamingEngine(
            make_matcher("ED"), budget=BUDGET, checkpoint_every=2.0
        )
        result = engine.run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        taken = result.details["metrics"]["counters"]["engine.checkpoints_taken"]
        assert taken >= 2
        assert result.details["resilience"]["checkpoints_taken"] == taken
        assert engine.last_checkpoint is not None
        assert engine.last_checkpoint.engine == "serial"

    def test_no_checkpoints_by_default(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        engine = StreamingEngine(make_matcher("JS"), budget=BUDGET)
        result = engine.run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        assert "engine.checkpoints_taken" not in result.details["metrics"]["counters"]
        assert engine.last_checkpoint is None

    def test_resume_rejects_wrong_engine_kind(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        engine = StreamingEngine(make_matcher("ED"), budget=BUDGET, checkpoint_every=1.0)
        engine.run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        checkpoint = engine.last_checkpoint
        other = PipelinedStreamingEngine(make_matcher("ED"), budget=BUDGET)
        with pytest.raises(ValueError, match="engine"):
            other.run(
                PierSystem(IPES()), plan, small_dblp_acm.ground_truth,
                resume_from=checkpoint,
            )

    def test_resume_rejects_wrong_budget(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        engine = StreamingEngine(make_matcher("ED"), budget=BUDGET, checkpoint_every=1.0)
        engine.run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        other = StreamingEngine(make_matcher("ED"), budget=BUDGET * 2)
        with pytest.raises(ValueError, match="budget"):
            other.run(
                PierSystem(IPES()), plan, small_dblp_acm.ground_truth,
                resume_from=engine.last_checkpoint,
            )

    def test_resume_rejects_different_plan(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        engine = StreamingEngine(make_matcher("ED"), budget=BUDGET, checkpoint_every=1.0)
        engine.run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        other_plan = _plan(small_dblp_acm, n=7)
        fresh = StreamingEngine(make_matcher("ED"), budget=BUDGET)
        with pytest.raises(ValueError, match="plan"):
            fresh.run(
                PierSystem(IPES()), other_plan, small_dblp_acm.ground_truth,
                resume_from=engine.last_checkpoint,
            )

    def test_crash_before_first_checkpoint_carries_none(self, small_dblp_acm):
        plan = _plan(small_dblp_acm)
        engine = StreamingEngine(
            make_matcher("ED"), budget=BUDGET,
            resilience=ResilienceConfig(checkpoint_every=100.0, crash_at=1.0),
        )
        with pytest.raises(SimulatedCrash) as exc:
            engine.run(PierSystem(IPES()), plan, small_dblp_acm.ground_truth)
        assert exc.value.checkpoint is None
        assert exc.value.clock >= 1.0
