"""Tests for the ERSystem contract and pipeline cost/stat containers."""

from __future__ import annotations

import pytest

from repro.core.increments import Increment
from repro.streaming.system import EmitResult, ERSystem, PipelineCosts, PipelineStats


class TestPipelineCosts:
    def test_defaults_are_positive(self):
        costs = PipelineCosts()
        for field_name in (
            "per_profile",
            "per_token",
            "per_weight",
            "per_enqueue",
            "per_edge_enumeration",
            "per_block_open",
            "per_round",
        ):
            assert getattr(costs, field_name) > 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PipelineCosts().per_profile = 1.0


class TestEmitResult:
    def test_is_empty(self):
        assert EmitResult(batch=(), cost=0.1).is_empty
        assert not EmitResult(batch=((1, 2),), cost=0.1).is_empty


class TestPipelineStats:
    def test_remaining_budget_defaults_none(self):
        stats = PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)
        assert stats.remaining_budget is None


class TestERSystemDefaults:
    def test_base_hooks(self):
        system = ERSystem()
        assert system.ready_for_ingest()
        stats = PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)
        assert system.on_idle(stats) is None
        assert system.describe() == {"name": "er-system"}

    def test_abstract_methods_raise(self):
        system = ERSystem()
        with pytest.raises(NotImplementedError):
            system.ingest(Increment(0, ()))
        with pytest.raises(NotImplementedError):
            system.emit(
                PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)
            )
        with pytest.raises(NotImplementedError):
            system.profile(0)
