"""Tests for block ghosting and block filtering."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blocking.blocks import Block
from repro.blocking.cleaning import block_filtering, block_ghosting


def _block(key: str, size: int) -> Block:
    block = Block(key)
    for pid in range(size):
        block.add(pid, 0)
    return block


class TestBlockGhosting:
    def test_keeps_blocks_up_to_threshold(self):
        blocks = [_block("a", 2), _block("b", 4), _block("c", 10)]
        kept = block_ghosting(blocks, beta=0.5)  # threshold = 2 / 0.5 = 4
        assert [b.key for b in kept] == ["a", "b"]

    def test_beta_one_keeps_only_smallest_size(self):
        blocks = [_block("a", 2), _block("b", 2), _block("c", 3)]
        kept = block_ghosting(blocks, beta=1.0)
        assert [b.key for b in kept] == ["a", "b"]

    def test_small_beta_keeps_everything(self):
        blocks = [_block("a", 2), _block("b", 200)]
        assert len(block_ghosting(blocks, beta=0.01)) == 2

    def test_empty_input(self):
        assert block_ghosting([], beta=0.5) == []

    def test_invalid_beta(self):
        for beta in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                block_ghosting([_block("a", 2)], beta=beta)

    def test_preserves_order(self):
        blocks = [_block("b", 3), _block("a", 2), _block("c", 3)]
        kept = block_ghosting(blocks, beta=0.5)
        assert [b.key for b in kept] == ["b", "a", "c"]

    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=12),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_smallest_block_always_survives(self, sizes, beta):
        blocks = [_block(f"k{i}", size) for i, size in enumerate(sizes)]
        kept = block_ghosting(blocks, beta=beta)
        assert kept
        assert min(len(b) for b in kept) == min(sizes)


class TestBlockFiltering:
    def test_keeps_ratio_of_smallest(self):
        blocks = [_block("a", 1), _block("b", 5), _block("c", 3), _block("d", 9)]
        kept = block_filtering(blocks, ratio=0.5)
        assert sorted(b.key for b in kept) == ["a", "c"]

    def test_keeps_at_least_one(self):
        assert len(block_filtering([_block("a", 9)], ratio=0.01)) == 1

    def test_ratio_one_keeps_all(self):
        blocks = [_block("a", 1), _block("b", 2)]
        assert len(block_filtering(blocks, ratio=1.0)) == 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            block_filtering([_block("a", 1)], ratio=0.0)

    def test_empty_input(self):
        assert block_filtering([], ratio=0.5) == []
