"""Tests for progress recording and PC curves."""

from __future__ import annotations

import pytest

from repro.core.dataset import GroundTruth
from repro.evaluation.recorder import ProgressRecorder


@pytest.fixture
def truth() -> GroundTruth:
    return GroundTruth([(0, 1), (2, 3), (4, 5), (6, 7)])


class TestProgressRecorder:
    def test_records_match_hits(self, truth):
        recorder = ProgressRecorder(truth)
        assert recorder.record(1, 0, time=1.0)     # hit
        assert not recorder.record(0, 2, time=2.0)  # miss
        assert recorder.matches_emitted == 1
        assert recorder.comparisons_executed == 2

    def test_duplicate_executions_counted_once(self, truth):
        recorder = ProgressRecorder(truth)
        assert recorder.record(0, 1, time=1.0)
        assert not recorder.record(0, 1, time=2.0)
        assert recorder.matches_emitted == 1
        assert recorder.duplicate_executions == 1
        assert recorder.comparisons_executed == 2

    def test_pair_completeness(self, truth):
        recorder = ProgressRecorder(truth)
        recorder.record(0, 1, 1.0)
        recorder.record(2, 3, 2.0)
        assert recorder.pair_completeness == 0.5

    def test_empty_truth(self):
        recorder = ProgressRecorder(GroundTruth())
        assert recorder.pair_completeness == 1.0

    def test_was_executed(self, truth):
        recorder = ProgressRecorder(truth)
        recorder.record(5, 4, 1.0)
        assert recorder.was_executed(4, 5)
        assert not recorder.was_executed(0, 1)

    def test_sample_every_validation(self, truth):
        with pytest.raises(ValueError):
            ProgressRecorder(truth, sample_every=0)


class TestProgressCurve:
    def _curve(self, truth):
        recorder = ProgressRecorder(truth)
        recorder.record(0, 1, time=10.0)
        recorder.record(2, 3, time=20.0)
        recorder.record(4, 5, time=30.0)
        recorder.mark(40.0)
        return recorder.curve()

    def test_pc_at_time_step_function(self, truth):
        curve = self._curve(truth)
        assert curve.pc_at_time(5.0) == 0.0
        assert curve.pc_at_time(10.0) == 0.25
        assert curve.pc_at_time(25.0) == 0.5
        assert curve.pc_at_time(100.0) == 0.75

    def test_pc_at_comparisons(self, truth):
        curve = self._curve(truth)
        assert curve.pc_at_comparisons(0) == 0.0
        assert curve.pc_at_comparisons(1) == 0.25
        assert curve.pc_at_comparisons(3) == 0.75

    def test_final_values(self, truth):
        curve = self._curve(truth)
        assert curve.final_pc == 0.75
        assert curve.final_time == 40.0
        assert curve.final_comparisons == 3

    def test_sample_times(self, truth):
        curve = self._curve(truth)
        assert curve.sample_times([5.0, 15.0, 35.0]) == [0.0, 0.25, 0.75]

    def test_area_under_curve_monotone_in_quality(self, truth):
        fast = ProgressRecorder(truth)
        fast.record(0, 1, 1.0)
        fast.record(2, 3, 2.0)
        fast.mark(100.0)
        slow = ProgressRecorder(truth)
        slow.record(0, 1, 90.0)
        slow.record(2, 3, 95.0)
        slow.mark(100.0)
        assert fast.curve().area_under_curve(100.0) > slow.curve().area_under_curve(100.0)

    def test_area_under_curve_validation(self, truth):
        with pytest.raises(ValueError):
            self._curve(truth).area_under_curve(0.0)

    def test_time_to_pc(self, truth):
        curve = self._curve(truth)
        assert curve.time_to_pc(0.25) == 10.0
        assert curve.time_to_pc(0.5) == 20.0
        assert curve.time_to_pc(0.75) == 30.0
        assert curve.time_to_pc(1.0) is None  # never reached
        assert curve.time_to_pc(0.0) == 0.0

    def test_comparisons_to_pc(self, truth):
        curve = self._curve(truth)
        assert curve.comparisons_to_pc(0.25) == 1
        assert curve.comparisons_to_pc(0.75) == 3
        assert curve.comparisons_to_pc(1.0) is None

    def test_target_validation(self, truth):
        curve = self._curve(truth)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            curve.time_to_pc(1.5)
        with _pytest.raises(ValueError):
            curve.comparisons_to_pc(-0.1)

    def test_empty_truth_curve(self):
        recorder = ProgressRecorder(GroundTruth())
        recorder.mark(1.0)
        curve = recorder.curve()
        assert curve.final_pc == 1.0
        assert curve.pc_at_time(0.5) == 1.0
