"""Tests for the I-PCS comparison-centric strategy."""

from __future__ import annotations

from repro.core.increments import Increment
from repro.pier.base import PierSystem
from repro.pier.ipcs import IPCS
from repro.streaming.system import PipelineStats

from tests.conftest import make_profile


def _stats() -> PipelineStats:
    return PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)


def _system(**kwargs) -> PierSystem:
    return PierSystem(IPCS(**kwargs))


class TestIPCS:
    def test_highest_weight_first(self):
        system = _system(beta=0.01)
        profiles = (
            make_profile(0, "alpha beta gamma"),
            make_profile(1, "alpha beta gamma"),   # CBS 3 with p0
            make_profile(2, "alpha delta epsilon"),  # CBS 1 with p0
        )
        system.ingest(Increment(0, profiles))
        first = system.strategy.dequeue()
        assert first == (0, 1)

    def test_len_tracks_queue(self):
        system = _system()
        assert len(system.strategy) == 0
        system.ingest(Increment(0, (make_profile(0, "x1 y1"), make_profile(1, "x1 y1"))))
        assert len(system.strategy) > 0

    def test_dequeue_empty_returns_none(self):
        assert IPCS().dequeue() is None

    def test_bounded_capacity_evicts_lightest(self):
        system = PierSystem(IPCS(capacity=2, beta=0.01))
        profiles = tuple(make_profile(pid, "shared tok%d" % pid) for pid in range(6))
        system.ingest(Increment(0, profiles))
        assert len(system.strategy.index) <= 2

    def test_refill_on_empty_increment(self):
        system = _system()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        while system.strategy.dequeue() is not None:
            pass
        # empty increment triggers GetComparisons refill (Alg. 2 l. 10-11)
        system.ingest(Increment(1, ()))
        assert system.strategy.dequeue() is not None

    def test_refill_skips_executed(self):
        system = _system()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        # execute everything through the system path so _executed is updated
        while True:
            result = system.emit(_stats())
            if not result.batch and system.on_idle(_stats()) is None:
                break
        count_before = len(system._executed)
        assert system.on_idle(_stats()) is None
        assert len(system._executed) == count_before

    def test_exhausted_semantics(self):
        system = _system()
        strategy: IPCS = system.strategy
        assert strategy.exhausted(system)  # nothing ingested at all
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        assert not strategy.exhausted(system)

    def test_weights_are_cbs(self):
        system = _system(beta=0.01)
        system.ingest(
            Increment(0, (make_profile(0, "alpha beta"), make_profile(1, "alpha beta")))
        )
        pair, key = system.strategy.index.dequeue_with_key()
        assert pair == (0, 1)
        assert key == 2.0
